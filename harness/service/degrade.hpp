// Graceful overload degradation for the dispatch harness (DESIGN.md §15).
//
// Three pieces, all driven by the single generator thread so none of them
// needs to be more than trivially atomic:
//
//   RetryPolicy — the generator-side knobs: how many times an arrival that
//   found the admission gate full may retry (R2D_RETRY_MAX), the base unit
//   of the jittered exponential backoff between retries (R2D_BACKOFF_NS),
//   and the per-request deadline measured from the *intended* arrival time
//   (R2D_DEADLINE_US). A request that exhausts its retries is shed; one
//   whose deadline passes first is timed out — a third disposition that
//   joins the conservation law (generated == admitted + shed + timed_out)
//   instead of blurring into shed. Retrying in the generator deliberately
//   makes later arrivals late rather than re-spacing the schedule: the
//   open-loop coordinated-omission discipline is preserved, and the
//   latency cost of retrying lands on the tasks that actually waited.
//
//   Backoff — capped exponential with xorshift64* jitter. Jitter matters
//   even with one generator: a deterministic backoff phase-locks the
//   retry probes against the workers' completion cadence, and the
//   measured shed rate becomes an artifact of that resonance.
//
//   DegradeController — the windowed shed-pressure hysteresis that widens
//   the admission cap under sustained overload. Every `window` arrivals
//   the generator reports its shed fraction; at or above kEnterFraction
//   the controller enters degraded mode, multiplying the effective cap by
//   `factor` (R2D_DEGRADE_FACTOR; 1 disables the controller entirely).
//   A wider cap is a wider run-queue bound — the service trades its
//   latency guarantee for completions, the same depth-for-throughput
//   exchange the 2D window itself makes, which is why degraded mode is
//   described as widening the *effective relaxation*. At or below
//   kExitFraction the cap snaps back. The two thresholds are far apart on
//   purpose (hysteresis): without the gap the controller would flap at
//   exactly the load where degradation changes the shed rate.
#pragma once

#include <cstdint>

#include "harness/service/shed.hpp"
#include "util/env.hpp"

namespace r2d::harness::service {

struct RetryPolicy {
  std::uint32_t max_retries = 0;   ///< R2D_RETRY_MAX; 0 = admit-or-shed
  std::uint64_t backoff_ns = 500;  ///< R2D_BACKOFF_NS; base backoff unit
  std::uint64_t deadline_us = 0;   ///< R2D_DEADLINE_US; 0 = no deadline

  static RetryPolicy from_env() {
    RetryPolicy p;
    p.max_retries =
        static_cast<std::uint32_t>(util::env_u64("R2D_RETRY_MAX", 0));
    p.backoff_ns = util::env_u64("R2D_BACKOFF_NS", 500);
    p.deadline_us = util::env_u64("R2D_DEADLINE_US", 0);
    return p;
  }
};

/// Capped exponential backoff with multiplicative xorshift64* jitter.
/// Deterministic for a fixed seed; jittered so retry probes cannot
/// phase-lock with worker completions.
class Backoff {
 public:
  Backoff(std::uint64_t base_ns, std::uint64_t seed)
      : base_ns_(base_ns == 0 ? 1 : base_ns),
        state_(seed | 1)  // xorshift state must be nonzero
  {}

  /// The next delay: base * 2^attempt, capped at 64 * base, scaled by a
  /// jitter factor uniform in [0.5, 1.5).
  std::uint64_t next_ns() {
    std::uint64_t d = base_ns_ << (attempt_ < 6 ? attempt_ : 6);
    ++attempt_;
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t draw = state_ * 0x2545F4914F6CDD1Dull;
    // jitter in [d/2, 3d/2): d/2 + (draw mod d)
    return d / 2 + (d == 0 ? 0 : draw % d);
  }

  void reset() { attempt_ = 0; }

 private:
  const std::uint64_t base_ns_;
  std::uint64_t state_;
  unsigned attempt_ = 0;
};

/// Windowed shed-pressure hysteresis over an Admission gate. Call
/// record() once per arrival from the generator thread (single-threaded
/// by construction); the controller widens/narrows the gate's effective
/// cap at window boundaries.
class DegradeController {
 public:
  static constexpr double kEnterFraction = 0.5;   ///< enter at >= 50% shed
  static constexpr double kExitFraction = 0.125;  ///< exit at <= 12.5%

  DegradeController(Admission& gate, std::uint64_t factor,
                    std::uint64_t window)
      : gate_(gate),
        factor_(factor < 1 ? 1 : factor),
        window_(window < 1 ? 1 : window) {}

  DegradeController(const DegradeController&) = delete;
  DegradeController& operator=(const DegradeController&) = delete;

  /// One arrival's disposition: `rejected` is true when the arrival was
  /// shed or timed out (i.e. not admitted).
  void record(bool rejected) {
    if (factor_ == 1) return;  // disabled: never touches the gate
    ++seen_;
    if (rejected) ++rejected_;
    if (seen_ < window_) return;
    const double fraction =
        static_cast<double>(rejected_) / static_cast<double>(seen_);
    seen_ = 0;
    rejected_ = 0;
    if (!degraded_ && fraction >= kEnterFraction) {
      degraded_ = true;
      ++entries_;
      gate_.set_effective_cap(gate_.cap() * factor_);
    } else if (degraded_ && fraction <= kExitFraction) {
      degraded_ = false;
      gate_.set_effective_cap(gate_.cap());
    }
  }

  /// Unconditional entry into degraded mode, outside the windowed
  /// hysteresis — the stall watchdog's lever (sched/watchdog.hpp): a
  /// container that stopped making progress gets its admission pressure
  /// widened immediately rather than at the next window boundary.
  /// Single-threaded with record() (the generator polls the stall flag).
  void force_enter() {
    if (factor_ == 1 || degraded_) return;
    degraded_ = true;
    ++entries_;
    seen_ = 0;
    rejected_ = 0;
    gate_.set_effective_cap(gate_.cap() * factor_);
  }

  bool degraded() const { return degraded_; }
  std::uint64_t entries() const { return entries_; }

 private:
  Admission& gate_;
  const std::uint64_t factor_;
  const std::uint64_t window_;
  std::uint64_t seen_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t entries_ = 0;
  bool degraded_ = false;
};

}  // namespace r2d::harness::service
