// Bounded admission with explicit shed accounting.
//
// An open-loop generator does not slow down when the server falls behind
// — that is the point — so something must give when arrivals outrun
// service capacity. This harness makes the safety valve explicit: a task
// is *admitted* only while fewer than `cap` admitted tasks are still in
// flight (admitted but not completed); past that it is *shed* — counted
// and dropped, never queued. Load shedding at admission is what a real
// dispatcher does under overload (better a fast error than an unbounded
// queue whose tail latency is a function of how long you have been
// overloaded), and it bounds the run-queue the container under test has
// to carry: at most `cap` items, whatever the offered load.
//
// Conservation is the whole contract, and it is checked, not assumed:
//   generated == admitted + shed + timed_out (every arrival counted once)
//   admitted  == completed + inflight        (at any instant)
//   admitted  == completed                   (after drain)
// tests/test_service.cpp hammers try_admit/complete from 4 threads and
// bench/service_dispatch.cpp refuses to emit a row that fails either
// equation. timed_out is the third disposition PR 9 added: a generator
// retrying admission under a per-request deadline (see degrade.hpp) calls
// count_timed_out() instead of folding the loss into shed.
//
// The cap has two faces since PR 9: `cap()` is the configured bound, and
// the gate actually admits against an *effective* cap that the degrade
// controller may widen under sustained shed pressure (and narrow back).
// try_admit keeps its original one-shot semantics — admit or count a
// shed — while try_acquire is the non-counting probe the retry loop
// needs: failure leaves every counter untouched so one arrival retried N
// times still accounts as exactly one disposition.
#pragma once

#include <atomic>
#include <cstdint>

namespace r2d::harness::service {

class Admission {
 public:
  explicit Admission(std::uint64_t cap) : cap_(cap) {}

  Admission(const Admission&) = delete;
  Admission& operator=(const Admission&) = delete;

  /// Non-counting admission probe. True: the caller owns one in-flight
  /// task and must eventually call complete(). False: the gate is at its
  /// effective cap — *no* counter moved, so the caller may retry and
  /// later settle the arrival's one disposition via count_shed() or
  /// count_timed_out().
  bool try_acquire() {
    const std::uint64_t cap = effective_cap_.load(std::memory_order_relaxed);
    std::uint64_t in = inflight_.load(std::memory_order_relaxed);
    while (in < cap) {
      if (inflight_.compare_exchange_weak(in, in + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        admitted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS failure reloaded `in`; loop re-checks the cap.
    }
    return false;
  }

  /// Admit-or-shed one arrival: the original one-shot gate.
  bool try_admit() {
    if (try_acquire()) return true;
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Settle an arrival that exhausted its retries as shed.
  void count_shed() { shed_.fetch_add(1, std::memory_order_relaxed); }

  /// Settle an arrival whose deadline passed while retrying as timed out.
  void count_timed_out() {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Roll back an admission whose enqueue failed (e.g. OOM pushing into
  /// the run queue): the task was never visible to a worker, so it leaves
  /// the admitted population entirely and the arrival settles as shed —
  /// conservation holds with no phantom in-flight task.
  void abandon() {
    admitted_.fetch_sub(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Retire one admitted task (worker side, after service).
  void complete() {
    completed_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }

  std::uint64_t cap() const { return cap_; }

  /// The cap the gate currently admits against — the configured cap
  /// unless the degrade controller widened it (harness/service/degrade.hpp).
  std::uint64_t effective_cap() const {
    return effective_cap_.load(std::memory_order_acquire);
  }
  void set_effective_cap(std::uint64_t cap) {
    effective_cap_.store(cap < 1 ? 1 : cap, std::memory_order_release);
  }

  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_acquire);
  }
  std::uint64_t shed() const { return shed_.load(std::memory_order_acquire); }
  std::uint64_t timed_out() const {
    return timed_out_.load(std::memory_order_acquire);
  }
  std::uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }

 private:
  const std::uint64_t cap_;
  std::atomic<std::uint64_t> effective_cap_{cap_};
  alignas(64) std::atomic<std::uint64_t> inflight_{0};
  alignas(64) std::atomic<std::uint64_t> admitted_{0};
  alignas(64) std::atomic<std::uint64_t> shed_{0};
  alignas(64) std::atomic<std::uint64_t> timed_out_{0};
  alignas(64) std::atomic<std::uint64_t> completed_{0};
};

}  // namespace r2d::harness::service
