// Bounded admission with explicit shed accounting.
//
// An open-loop generator does not slow down when the server falls behind
// — that is the point — so something must give when arrivals outrun
// service capacity. This harness makes the safety valve explicit: a task
// is *admitted* only while fewer than `cap` admitted tasks are still in
// flight (admitted but not completed); past that it is *shed* — counted
// and dropped, never queued. Load shedding at admission is what a real
// dispatcher does under overload (better a fast error than an unbounded
// queue whose tail latency is a function of how long you have been
// overloaded), and it bounds the run-queue the container under test has
// to carry: at most `cap` items, whatever the offered load.
//
// Conservation is the whole contract, and it is checked, not assumed:
//   generated == admitted + shed            (every arrival counted once)
//   admitted  == completed + inflight       (at any instant)
//   admitted  == completed                  (after drain)
// tests/test_service.cpp hammers try_admit/complete from 4 threads and
// bench/service_dispatch.cpp refuses to emit a row that fails either
// equation.
#pragma once

#include <atomic>
#include <cstdint>

namespace r2d::harness::service {

class Admission {
 public:
  explicit Admission(std::uint64_t cap) : cap_(cap) {}

  Admission(const Admission&) = delete;
  Admission& operator=(const Admission&) = delete;

  /// Admit-or-shed one arrival. True: the caller owns one in-flight task
  /// and must eventually call complete(). False: the arrival was shed
  /// (accounted here; the caller drops it).
  bool try_admit() {
    std::uint64_t in = inflight_.load(std::memory_order_relaxed);
    while (in < cap_) {
      if (inflight_.compare_exchange_weak(in, in + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        admitted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS failure reloaded `in`; loop re-checks the cap.
    }
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Retire one admitted task (worker side, after service).
  void complete() {
    completed_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }

  std::uint64_t cap() const { return cap_; }
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_acquire);
  }
  std::uint64_t shed() const { return shed_.load(std::memory_order_acquire); }
  std::uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }

 private:
  const std::uint64_t cap_;
  alignas(64) std::atomic<std::uint64_t> inflight_{0};
  alignas(64) std::atomic<std::uint64_t> admitted_{0};
  alignas(64) std::atomic<std::uint64_t> shed_{0};
  alignas(64) std::atomic<std::uint64_t> completed_{0};
};

}  // namespace r2d::harness::service
