// The task-dispatch server: any r2d:: container as the run-queue of an
// open-loop service, with coordinated-omission-safe response times.
//
// Topology: ONE generator thread walks an ArrivalProcess schedule
// (arrival.hpp), admits or sheds each arrival (shed.hpp), and pushes
// admitted tasks into the container; `workers` threads pop tasks, spin a
// fixed synthetic service time, and record the response. Worker threads
// may be long-lived (the default) or spawned per request
// (R2D_SPAWN_WORKERS=1): each dispatcher then runs every pop + service on
// a fresh short-lived thread, the thread-pool-per-request shape that
// churns reclaimer/allocator slot leases — the E15 churn experiment, with
// the container's slot high-water mark reported in the result. The
// generator is strictly open-loop: it sleeps/spins until each task's *intended*
// timestamp and then moves on regardless of what the server side is doing
// — if it ever falls behind wall-clock (a push stalled), it does not
// re-space the schedule; it pushes immediately and keeps the original
// intents, which is precisely the coordinated-omission discipline.
//
// Response time of a task = completion wall time − intended arrival time.
// That charges queueing delay, shed-pressure backoff, and every window
// sweep to the task that actually waited, where a closed-loop bench would
// silently excuse them. Quantiles (p50/p99/p999) come from the harness's
// log-linear Histogram, and each result carries the SLO violation count
// against ServiceConfig::slo_us.
//
// Unfairness (the rank-error bound made user-visible): tasks are stamped
// with their admission sequence number; when a worker serves task s while
// some task s' > s was already served, the difference max_served − s is
// the task's *displacement* — how many admissions overtook it, in
// admission order. A FIFO queue keeps displacement near the worker count;
// a relaxed container's displacement tracks its k bound; a LIFO stack
// under sustained load lets it grow without bound. The result reports the
// mean and max so BENCH_service rows can put a number next to Theorem 1.
//
// The container type only needs push/pop or enqueue/dequeue on Task
// (detected below), so TwoDBag, TwoDStack, TwoDQueue, and the strict
// baselines all drop in unmodified.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "harness/latency.hpp"
#include "harness/service/arrival.hpp"
#include "harness/service/degrade.hpp"
#include "harness/service/shed.hpp"
#include "harness/workload.hpp"
#include "sched/watchdog.hpp"

namespace r2d::harness::service {

/// One dispatched unit of work. Default-constructible so queue nodes can
/// hold it; trivially copyable so it moves through any container cheaply.
struct Task {
  std::uint64_t intended_ns = 0;  ///< intended arrival, ns from run origin
  std::uint64_t seq = 0;          ///< admission sequence number
};

struct ServiceConfig {
  ArrivalConfig arrival;
  unsigned workers = 2;
  std::uint64_t duration_ms = 100;  ///< length of the arrival *schedule*
  std::uint64_t shed_cap = 1024;    ///< admission bound (R2D_SHED_CAP)
  std::uint64_t slo_us = 1000;      ///< response-time SLO (R2D_SLO_US)
  std::uint64_t service_ns = 500;   ///< synthetic per-task service time
  /// Spawn a fresh thread per dispatched request instead of reusing the
  /// worker (R2D_SPAWN_WORKERS): the slot-lease churn workload. Reuse is
  /// a throughput choice, not a slot-cap necessity (DESIGN.md §13).
  bool spawn_per_request = false;
  /// Overload-degradation knobs (DESIGN.md §15; harness/service/degrade.hpp).
  /// The defaults — no retries, no deadline, factor 1 — reproduce the
  /// pre-PR-9 admit-or-shed behavior exactly.
  RetryPolicy retry;
  std::uint64_t degrade_factor = 1;    ///< R2D_DEGRADE_FACTOR; 1 = off
  std::uint64_t degrade_window = 256;  ///< R2D_DEGRADE_WINDOW, arrivals
  /// Stall watchdog deadline (R2D_WATCHDOG_MS; 0 = off): a background
  /// monitor samples completions, and a deadline with no progress while
  /// tasks are outstanding dumps obs forensics and forces the
  /// DegradeController into degraded mode (sched/watchdog.hpp).
  std::uint64_t watchdog_ms = 0;

  /// Lift the Workload arrival knobs into a service run shape.
  static ServiceConfig from_workload(const Workload& w) {
    ServiceConfig c;
    c.arrival = ArrivalConfig::from_env();
    c.arrival.kind = arrival_kind_from(w.arrival);
    c.arrival.rate = w.offered_load;
    c.workers = std::max(1u, w.threads);
    c.duration_ms = w.duration_ms;
    c.shed_cap = w.shed_cap;
    c.slo_us = w.slo_us;
    c.service_ns = util::env_u64("R2D_SERVICE_NS", c.service_ns);
    c.spawn_per_request = util::env_u64("R2D_SPAWN_WORKERS", 0) != 0;
    c.retry = RetryPolicy::from_env();
    c.degrade_factor = util::env_u64("R2D_DEGRADE_FACTOR", 1);
    c.degrade_window = util::env_u64("R2D_DEGRADE_WINDOW", 256);
    c.watchdog_ms = util::env_u64("R2D_WATCHDOG_MS", 0);
    return c;
  }
};

struct ServiceResult {
  std::uint64_t generated = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;  ///< deadline passed while retrying admission
  std::uint64_t retries = 0;    ///< admission retries across all arrivals
  std::uint64_t degraded_entries = 0;  ///< times the cap was widened
  bool degraded = false;               ///< any degraded period occurred
  std::uint64_t stalls = 0;            ///< watchdog no-progress verdicts
  std::uint64_t completed = 0;
  Histogram response;               ///< ns from intended arrival
  std::uint64_t slo_violations = 0;
  std::uint64_t displacement_sum = 0;
  std::uint64_t displacement_max = 0;
  std::uint64_t threads_spawned = 0;  ///< ephemeral workers (spawn mode)
  std::size_t slot_hwm = 0;  ///< container slot high-water mark, if leased
  double seconds = 0.0;             ///< wall time, generator start -> drain

  /// The conservation law the harness exists to check: every arrival got
  /// exactly one disposition (admitted, shed, or timed out), and every
  /// admitted task was completed (post-drain). Retries don't appear: one
  /// arrival retried N times is still one disposition.
  bool conserved() const {
    return generated == admitted + shed + timed_out &&
           admitted == completed && response.count() == completed;
  }

  double p50_us() const { return response.quantile(0.50) / 1e3; }
  double p99_us() const { return response.quantile(0.99) / 1e3; }
  double p999_us() const { return response.quantile(0.999) / 1e3; }
  double shed_rate() const {
    return generated == 0 ? 0.0
                          : static_cast<double>(shed) /
                                static_cast<double>(generated);
  }
  double slo_violation_rate() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(slo_violations) /
                                static_cast<double>(completed);
  }
  double mean_displacement() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(displacement_sum) /
                                static_cast<double>(completed);
  }
  double completed_rate() const {
    return seconds == 0.0 ? 0.0 : static_cast<double>(completed) / seconds;
  }
};

namespace detail {

/// Uniform container surface: push/pop (stack, bag, strict baselines) or
/// enqueue/dequeue (queue) — whichever the type has.
template <typename Q>
inline void dispatch_push(Q& queue, Task task) {
  if constexpr (requires { queue.push(task); }) {
    queue.push(task);
  } else {
    queue.enqueue(task);
  }
}

template <typename Q>
inline std::optional<Task> dispatch_pop(Q& queue) {
  if constexpr (requires { queue.pop(); }) {
    return queue.pop();
  } else {
    return queue.dequeue();
  }
}

/// Spin the synthetic service time (too short for sleep syscalls).
inline void spin_ns(std::uint64_t ns) {
  if (ns == 0) return;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// Wait out one backoff interval: spin for short delays, sleep once the
/// interval is long enough that burning a core would distort the run.
inline void backoff_wait(std::uint64_t ns) {
  if (ns > 100'000) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  } else {
    spin_ns(ns);
  }
}

}  // namespace detail

/// Run one open-loop service scenario against `queue`. Blocks until the
/// schedule is exhausted AND every admitted task has been served (drain),
/// so the returned counters can satisfy admitted == completed exactly.
template <typename Queue>
ServiceResult run_service(Queue& queue, const ServiceConfig& config) {
  using Clock = std::chrono::steady_clock;

  Admission admission(config.shed_cap);
  ArrivalProcess arrivals(config.arrival);
  std::atomic<bool> generator_done{false};
  std::atomic<std::uint64_t> max_served{0};
  const std::uint64_t horizon_ns = config.duration_ms * 1'000'000ull;
  const std::uint64_t slo_ns = config.slo_us * 1'000ull;

  struct alignas(64) WorkerStats {
    Histogram response;
    std::uint64_t slo_violations = 0;
    std::uint64_t displacement_sum = 0;
    std::uint64_t displacement_max = 0;
    std::uint64_t threads_spawned = 0;
  };
  std::vector<WorkerStats> stats(config.workers);
  std::uint64_t generated = 0;
  std::uint64_t retries_total = 0;
  std::uint64_t degraded_entries = 0;

  const auto origin = Clock::now();

  // Stall watchdog (sched/watchdog.hpp): progress = completions; idle
  // while nothing is outstanding (the gate's counters are atomics, safe
  // to sample from the monitor thread). On a stall it dumps forensics
  // to stderr and raises a flag the generator converts into forced
  // degradation at its next arrival.
  std::atomic<bool> stall_flag{false};
  std::unique_ptr<sched::Watchdog> watchdog;
  if (config.watchdog_ms != 0) {
    sched::Watchdog::Config wd;
    wd.deadline = std::chrono::milliseconds(config.watchdog_ms);
    wd.idle = [&admission] {
      return admission.admitted() == admission.completed();
    };
    wd.on_stall = [&stall_flag](const std::string&) {
      stall_flag.store(true, std::memory_order_release);
    };
    watchdog = std::make_unique<sched::Watchdog>(
        [&admission] { return admission.completed(); }, std::move(wd));
  }

  std::thread generator([&] {
    const RetryPolicy retry = config.retry;
    DegradeController degrade(admission, config.degrade_factor,
                              config.degrade_window);
    std::uint64_t seq = 0;
    while (true) {
      const std::uint64_t intended = arrivals.next_ns();
      if (intended >= horizon_ns) break;
      // Pace to the intent: sleep for the bulk of a long gap, spin the
      // rest. If we are already past the intent (the open-loop case of
      // interest), fall straight through — the schedule is never
      // re-spaced.
      const auto due = origin + std::chrono::nanoseconds(intended);
      auto now = Clock::now();
      if (due - now > std::chrono::microseconds(200)) {
        std::this_thread::sleep_for(due - now -
                                    std::chrono::microseconds(100));
      }
      while (Clock::now() < due) {
      }
      ++generated;
      // Admission with bounded retry under a per-request deadline
      // (degrade.hpp). Time spent backing off makes later arrivals late —
      // they are pushed immediately, never re-spaced — so the open-loop
      // coordinated-omission discipline survives retrying. The deadline
      // is measured from the *intended* arrival, charging the request the
      // time it actually spent waiting for the gate.
      bool acquired = admission.try_acquire();
      bool deadline_hit = false;
      if (!acquired && retry.max_retries > 0) {
        Backoff backoff(retry.backoff_ns,
                        0x9E3779B97F4A7C15ull ^ generated);
        const auto deadline =
            due + std::chrono::microseconds(retry.deadline_us);
        for (std::uint32_t r = 0; r < retry.max_retries; ++r) {
          if (retry.deadline_us != 0 && Clock::now() >= deadline) {
            deadline_hit = true;
            break;
          }
          detail::backoff_wait(backoff.next_ns());
          ++retries_total;
          if ((acquired = admission.try_acquire())) break;
        }
        if (!acquired && !deadline_hit && retry.deadline_us != 0 &&
            Clock::now() >= deadline) {
          deadline_hit = true;
        }
      }
      // A watchdog stall verdict forces degraded mode immediately: the
      // service keeps absorbing arrivals at the widened cap instead of
      // shedding everything behind a wedged container.
      if (stall_flag.exchange(false, std::memory_order_acq_rel)) {
        degrade.force_enter();
      }
      if (acquired) {
        try {
          detail::dispatch_push(queue, Task{intended, seq++});
        } catch (...) {
          // OOM (or slot exhaustion) pushing into the run queue: the task
          // was never visible to a worker, so roll the admission back and
          // settle the arrival as shed — conservation holds exactly.
          admission.abandon();
        }
      } else if (deadline_hit) {
        admission.count_timed_out();
      } else {
        admission.count_shed();
      }
      degrade.record(!acquired);
    }
    degraded_entries = degrade.entries();
    generator_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> workers;
  workers.reserve(config.workers);
  for (unsigned t = 0; t < config.workers; ++t) {
    workers.emplace_back([&, t] {
      WorkerStats& local = stats[t];
      // In spawn-per-request mode the dispatcher hands every pop AND its
      // service spin to a fresh short-lived thread — so the container's
      // per-thread slots (reclaimer + allocator) churn at request rate.
      // The dispatcher keeps the bookkeeping: stats are read only after
      // the join.
      auto mode_pop = [&]() -> std::optional<Task> {
        if (!config.spawn_per_request) return detail::dispatch_pop(queue);
        std::optional<Task> popped;
        std::thread([&] {
          popped = detail::dispatch_pop(queue);
          if (popped) detail::spin_ns(config.service_ns);
        }).join();
        ++local.threads_spawned;
        return popped;
      };
      while (true) {
        std::optional<Task> task = mode_pop();
        if (!task) {
          if (generator_done.load(std::memory_order_acquire)) {
            // No new pushes can arrive after generator_done; one more pop
            // closes the race between our empty probe and the flag store.
            task = mode_pop();
            if (!task) break;
          } else if (config.spawn_per_request) {
            // Sleeping (not yielding) bounds the empty-probe spawn rate.
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            continue;
          } else {
            std::this_thread::yield();
            continue;
          }
        }
        if (!config.spawn_per_request) detail::spin_ns(config.service_ns);
        const auto now = Clock::now();
        const std::uint64_t elapsed = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - origin)
                .count());
        // Pacing guarantees push time >= intended, so elapsed > intended;
        // the guard only shields against a pathological clock.
        const std::uint64_t response_ns =
            elapsed > task->intended_ns ? elapsed - task->intended_ns : 0;
        local.response.add(response_ns);
        if (response_ns > slo_ns) ++local.slo_violations;
        // Admission-order displacement: how many later admissions were
        // already served when this task finally ran.
        std::uint64_t seen = max_served.load(std::memory_order_relaxed);
        while (seen < task->seq &&
               !max_served.compare_exchange_weak(seen, task->seq,
                                                 std::memory_order_relaxed)) {
        }
        if (seen > task->seq) {
          const std::uint64_t displacement = seen - task->seq;
          local.displacement_sum += displacement;
          if (displacement > local.displacement_max) {
            local.displacement_max = displacement;
          }
        }
        admission.complete();
      }
    });
  }

  generator.join();
  for (std::thread& w : workers) w.join();

  ServiceResult result;
  if (watchdog) result.stalls = watchdog->stall_count();
  result.generated = generated;
  result.admitted = admission.admitted();
  result.shed = admission.shed();
  result.timed_out = admission.timed_out();
  result.retries = retries_total;
  result.degraded_entries = degraded_entries;
  result.degraded = degraded_entries > 0;
  result.completed = admission.completed();
  result.seconds =
      std::chrono::duration<double>(Clock::now() - origin).count();
  for (const WorkerStats& s : stats) {
    result.response.merge(s.response);
    result.slo_violations += s.slo_violations;
    result.displacement_sum += s.displacement_sum;
    if (s.displacement_max > result.displacement_max) {
      result.displacement_max = s.displacement_max;
    }
    result.threads_spawned += s.threads_spawned;
  }
  if constexpr (requires { queue.slot_hwm(); }) {
    result.slot_hwm = queue.slot_hwm();
  }
  return result;
}

}  // namespace r2d::harness::service
