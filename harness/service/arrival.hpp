// Seeded open-loop arrival processes for the service harness.
//
// Closed-loop benches (everything in bench/ before service_dispatch) let
// the structure set the pace: N threads issue the next operation the
// moment the previous one returns, so a slow structure quietly receives
// less load — the coordinated-omission trap. An *open-loop* generator
// instead fixes the arrival schedule up front, independent of how the
// server keeps up: every task has an intended arrival timestamp drawn
// from a stochastic process, and response time is measured from that
// intent (see server.hpp). This header owns the processes.
//
//   * kPoisson — exponential inter-arrival gaps at rate λ. The classical
//     open-traffic model, and also how "millions of virtual clients" are
//     simulated without a million threads: N clients that each think for
//     an exponential time with mean Z between requests superpose to a
//     Poisson stream of rate N/Z (rate_from_clients), so one generator
//     thread stands in for the whole population.
//   * kOnOff — a two-state Markov-modulated Poisson process: exponential
//     ON bursts (mean on_ms) emitting at the boosted rate λ·(on+off)/on,
//     alternating with silent OFF gaps (mean off_ms). Mean rate is still
//     λ, but arrivals clump — the bursty traffic that fills admission
//     queues and blows p999 long before the mean load saturates anything.
//
// Determinism contract: every draw comes from one splitmix64 stream owned
// by the process object, so a given (kind, rate, on_ms, off_ms, seed)
// tuple yields bit-identical schedules on every host and every run —
// tests/test_service.cpp pins this, and it is what makes BENCH_service
// rows comparable across commits.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "util/env.hpp"

namespace r2d::harness::service {

/// Deterministic seeded PRNG (splitmix64): 64-bit state, full period,
/// independent of libc and of core::hop_rand's thread-local stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform draw in (0, 1] — never 0, so log(uniform()) is finite.
  double uniform() {
    return (static_cast<double>(next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Exponential draw with the given mean (inverse-CDF method).
  double exponential(double mean) { return -mean * std::log(uniform()); }

 private:
  std::uint64_t state_;
};

enum class ArrivalKind : std::uint8_t { kPoisson, kOnOff };

inline const char* to_string(ArrivalKind kind) {
  return kind == ArrivalKind::kPoisson ? "poisson" : "onoff";
}

/// Parse an R2D_ARRIVAL value; anything not recognisably bursty means
/// Poisson (the safe default for an unattended bench run).
inline ArrivalKind arrival_kind_from(const std::string& name) {
  return (name == "onoff" || name == "on-off" || name == "bursty")
             ? ArrivalKind::kOnOff
             : ArrivalKind::kPoisson;
}

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate = 100000.0;  ///< mean arrivals per second (offered load)
  double on_ms = 1.0;      ///< kOnOff: mean burst duration
  double off_ms = 9.0;     ///< kOnOff: mean silence duration
  std::uint64_t seed = 42;

  static ArrivalConfig from_env() {
    ArrivalConfig c;
    c.kind = arrival_kind_from(util::env_str("R2D_ARRIVAL", "poisson"));
    c.rate = util::env_f64("R2D_OFFERED_LOAD", c.rate);
    c.on_ms = util::env_f64("R2D_ON_MS", c.on_ms);
    c.off_ms = util::env_f64("R2D_OFF_MS", c.off_ms);
    c.seed = util::env_u64("R2D_ARRIVAL_SEED", c.seed);
    return c;
  }

  /// The virtual-client view: `clients` users each thinking an
  /// exponential mean `think_ms` between requests superpose to a Poisson
  /// stream of this rate — how "a million users" becomes one λ.
  static double rate_from_clients(double clients, double think_ms) {
    return clients / (think_ms / 1000.0);
  }
};

/// One arrival schedule: next_ns() returns strictly increasing intended
/// arrival offsets (ns from the schedule origin). Single-consumer — the
/// generator thread owns it.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& config)
      : config_(config), rng_(config.seed) {
    if (config_.kind == ArrivalKind::kOnOff) {
      // Burst-rate boost keeps the mean at `rate` while arrivals only
      // occur during the ON fraction on/(on+off) of the timeline.
      const double on_fraction =
          config_.on_ms / (config_.on_ms + config_.off_ms);
      burst_gap_ns_ = 1e9 / (config_.rate / on_fraction);
      on_ends_ns_ = rng_.exponential(config_.on_ms * 1e6);
    }
  }

  /// Intended arrival offset of the next task, in ns. Monotone by
  /// construction (gaps are > 0, floored at 1 ns).
  std::uint64_t next_ns() {
    double gap;
    if (config_.kind == ArrivalKind::kPoisson) {
      gap = rng_.exponential(1e9 / config_.rate);
    } else {
      gap = rng_.exponential(burst_gap_ns_);
      // Consume whole OFF gaps until this arrival lands inside a burst.
      while (clock_ + gap > on_ends_ns_) {
        const double overshoot = clock_ + gap - on_ends_ns_;
        clock_ = on_ends_ns_ + rng_.exponential(config_.off_ms * 1e6);
        on_ends_ns_ = clock_ + rng_.exponential(config_.on_ms * 1e6);
        gap = overshoot;
      }
    }
    clock_ += gap;
    const auto ns = static_cast<std::uint64_t>(clock_);
    last_ns_ = ns > last_ns_ ? ns : last_ns_ + 1;
    return last_ns_;
  }

 private:
  ArrivalConfig config_;
  Rng rng_;
  double clock_ = 0.0;        ///< continuous schedule time (ns)
  double burst_gap_ns_ = 0.0; ///< kOnOff: mean gap inside a burst
  double on_ends_ns_ = 0.0;   ///< kOnOff: current burst's end time
  std::uint64_t last_ns_ = 0;
};

}  // namespace r2d::harness::service
