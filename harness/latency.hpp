// Per-operation latency measurement with a log-linear histogram.
//
// Buckets are power-of-two decades with 16 linear sub-buckets each
// (HdrHistogram-style, ~6% resolution), covering 1 ns to the full uint64
// range in 1 KiB of counters, so recording is two shifts and an increment
// — cheap enough to time every operation.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>

#include "harness/runner.hpp"
#include "harness/workload.hpp"

namespace r2d::harness {

class Histogram {
  static constexpr unsigned kSubBits = 4;  // 16 sub-buckets per decade
  static constexpr std::size_t kBuckets = 1024;

 public:
  void add(std::uint64_t ns) {
    ++counts_[bucket_of(ns)];
    ++total_;
    if (ns > max_) max_ = ns;
  }

  void merge(const Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }

  /// Lower bound of the bucket containing the q-quantile (q in [0, 1]).
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    const double target = q * static_cast<double>(total_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cumulative += static_cast<double>(counts_[i]);
      if (cumulative >= target) return static_cast<double>(bucket_floor(i));
    }
    return static_cast<double>(max_);
  }

 private:
  static std::size_t bucket_of(std::uint64_t ns) {
    if (ns < (1u << kSubBits)) return static_cast<std::size_t>(ns);
    const unsigned exp = 63 - static_cast<unsigned>(std::countl_zero(ns));
    const std::uint64_t sub = (ns >> (exp - kSubBits)) & ((1u << kSubBits) - 1);
    const std::size_t idx =
        ((exp - kSubBits + 1) << kSubBits) + static_cast<std::size_t>(sub);
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static std::uint64_t bucket_floor(std::size_t index) {
    if (index < (1u << kSubBits)) return index;
    const unsigned exp =
        static_cast<unsigned>(index >> kSubBits) + kSubBits - 1;
    const std::uint64_t sub = index & ((1u << kSubBits) - 1);
    return (std::uint64_t{1} << exp) | (sub << (exp - kSubBits));
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

struct LatencyResult {
  Histogram histogram;
  double p50() const { return histogram.quantile(0.50); }
  double p99() const { return histogram.quantile(0.99); }
  double p999() const { return histogram.quantile(0.999); }
};

/// Time every operation of the standard workload into one histogram
/// (pushes and pops pooled; empty pops count — an empty-stack probe is an
/// operation the caller waited for).
template <RelaxedStack Stack>
LatencyResult run_latency(Stack& stack, const Workload& w) {
  const unsigned threads = std::max(1u, w.threads);
  std::atomic<bool> stop{false};
  std::vector<Histogram> histograms(threads);
  std::vector<LabelSequence> labels;
  labels.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) labels.emplace_back(t);

  detail::drive(
      w, stop,
      [&](unsigned t) {
        const std::uint64_t share = detail::prefill_share(w, t);
        for (std::uint64_t i = 0; i < share; ++i) stack.push(labels[t]());
      },
      [&](unsigned t) {
        const auto begin = std::chrono::steady_clock::now();
        if (choose_push(w.push_ratio)) {
          stack.push(labels[t]());
        } else {
          stack.pop();
        }
        const auto end = std::chrono::steady_clock::now();
        histograms[t].add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()));
      });

  LatencyResult result;
  for (const Histogram& h : histograms) result.histogram.merge(h);
  return result;
}

}  // namespace r2d::harness
