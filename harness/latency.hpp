// Per-operation latency measurement with a log-linear histogram.
//
// Buckets are power-of-two decades with 16 linear sub-buckets each
// (HdrHistogram-style, ~6% resolution), covering 1 ns to the full uint64
// range in 1 KiB of counters, so recording is two shifts and an increment
// — cheap enough to time every operation.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>

#include "harness/runner.hpp"
#include "harness/workload.hpp"

namespace r2d::harness {

class Histogram {
  static constexpr unsigned kSubBits = 4;  // 16 sub-buckets per decade
  // Decades beyond 2^36 ns (~69 s) clamp into the top bucket and are
  // tallied as `saturated` — any sample that long is overload, not a
  // latency to resolve, and honesty about the clamp beats a wider table.
  static constexpr std::size_t kBuckets = 528;

 public:
  /// First ns value past the last un-clamped bucket: 2^36 for the table
  /// above (kBuckets must stay a multiple of 1 << kSubBits).
  static constexpr std::uint64_t kSaturateNs =
      std::uint64_t{1} << ((kBuckets >> kSubBits) + kSubBits - 1);

  void add(std::uint64_t ns) {
    ++counts_[bucket_of(ns)];
    ++total_;
    if (ns >= kSaturateNs) ++saturated_;
    if (ns > max_) max_ = ns;
  }

  void merge(const Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    saturated_ += other.saturated_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }

  /// Samples that clamped into the top bucket (beyond its own decade's
  /// width): quantiles at or above their mass report the bucket floor,
  /// not a real latency.
  std::uint64_t saturated() const { return saturated_; }

  /// Lower bound of the bucket containing the q-quantile (q in [0, 1]).
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    const double target = q * static_cast<double>(total_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cumulative += static_cast<double>(counts_[i]);
      if (cumulative >= target) return static_cast<double>(bucket_floor(i));
    }
    return static_cast<double>(max_);
  }

 private:
  static std::size_t bucket_of(std::uint64_t ns) {
    if (ns < (1u << kSubBits)) return static_cast<std::size_t>(ns);
    const unsigned exp = 63 - static_cast<unsigned>(std::countl_zero(ns));
    const std::uint64_t sub = (ns >> (exp - kSubBits)) & ((1u << kSubBits) - 1);
    const std::size_t idx =
        ((exp - kSubBits + 1) << kSubBits) + static_cast<std::size_t>(sub);
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static std::uint64_t bucket_floor(std::size_t index) {
    if (index < (1u << kSubBits)) return index;
    const unsigned exp =
        static_cast<unsigned>(index >> kSubBits) + kSubBits - 1;
    const std::uint64_t sub = index & ((1u << kSubBits) - 1);
    return (std::uint64_t{1} << exp) | (sub << (exp - kSubBits));
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t saturated_ = 0;
};

struct LatencyResult {
  Histogram histogram;
  double p50() const { return histogram.quantile(0.50); }
  double p99() const { return histogram.quantile(0.99); }
  double p999() const { return histogram.quantile(0.999); }
  std::uint64_t saturated() const { return histogram.saturated(); }
};

namespace detail {

/// Shared latency accounting: time each `op(labels)` call into a
/// per-thread histogram, merged at the end. The stack and deque runners
/// differ only in their prefill and per-op dispatch.
template <typename Prefill, typename Op>
LatencyResult measure_latency(const Workload& w, Prefill prefill, Op op) {
  const unsigned threads = std::max(1u, w.threads);
  std::atomic<bool> stop{false};
  std::vector<Histogram> histograms(threads);
  std::vector<LabelSequence> labels;
  labels.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) labels.emplace_back(t);

  drive(
      w, stop, [&](unsigned t) { prefill(t, labels[t]); },
      [&](unsigned t) {
        const auto begin = std::chrono::steady_clock::now();
        op(labels[t]);
        const auto end = std::chrono::steady_clock::now();
        histograms[t].add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()));
      });

  LatencyResult result;
  for (const Histogram& h : histograms) result.histogram.merge(h);
  return result;
}

}  // namespace detail

/// Time every operation of the standard workload into one histogram
/// (pushes and pops pooled; empty pops count — an empty-stack probe is an
/// operation the caller waited for).
template <RelaxedStack Stack>
LatencyResult run_latency(Stack& stack, const Workload& w) {
  return detail::measure_latency(
      w,
      [&](unsigned t, LabelSequence& labels) {
        const std::uint64_t share = detail::prefill_share(w, t);
        for (std::uint64_t i = 0; i < share; ++i) stack.push(labels());
      },
      [&](LabelSequence& labels) {
        if (choose_push(w.push_ratio)) {
          stack.push(labels());
        } else {
          stack.pop();
        }
      });
}

/// Deque variant of run_latency: same pooled histogram, with the end of
/// each operation drawn from front_ratio.
template <RelaxedDeque Deque>
LatencyResult run_latency_deque(Deque& deque, const Workload& w) {
  return detail::measure_latency(
      w,
      [&](unsigned t, LabelSequence& labels) {
        const std::uint64_t share = detail::prefill_share(w, t);
        for (std::uint64_t i = 0; i < share; ++i) deque.push_back(labels());
      },
      [&](LabelSequence& labels) {
        const bool front = bernoulli(w.front_ratio);
        if (choose_push(w.push_ratio)) {
          if (front) {
            deque.push_front(labels());
          } else {
            deque.push_back(labels());
          }
        } else if (front) {
          deque.pop_front();
        } else {
          deque.pop_back();
        }
      });
}

}  // namespace r2d::harness
