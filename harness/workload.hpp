// Workload: the shape of one measured run.
//
// Field defaults come from R2D_* environment knobs where one exists (see
// the README catalogue); benches override the rest per figure.
#pragma once

#include <cstdint>
#include <string>

#include "util/env.hpp"

namespace r2d::harness {

struct Workload {
  unsigned threads = 1;
  std::uint64_t duration_ms = 100;
  std::uint64_t prefill = 0;        ///< items pushed before the clock starts
  double push_ratio = 0.5;          ///< P(operation is a push)
  /// P(operation targets the front end) — deque runners only.
  double front_ratio = util::env_f64("R2D_FRONT_RATIO", 0.5);
  bool pin_threads = util::env_u64("R2D_PIN", 0) != 0;
  /// Per-thread event cap for the quality oracle (bounds its memory); the
  /// quality run ends early when any thread fills its log.
  std::uint64_t quality_events = util::env_u64("R2D_QUALITY_EVENTS", 1u << 17);

  // Open-loop service knobs (harness/service/): arrival-process shape,
  // offered load, response-time SLO, and admission cap. Consumed by
  // service::ServiceConfig::from_workload(); inert for the closed-loop
  // runners above.
  /// Arrival process: "poisson" or "onoff" (bursty Markov-modulated).
  std::string arrival = util::env_str("R2D_ARRIVAL", "poisson");
  /// Mean offered load in arrivals per second.
  double offered_load = util::env_f64("R2D_OFFERED_LOAD", 100000.0);
  /// Response-time SLO (microseconds, from *intended* arrival).
  std::uint64_t slo_us = util::env_u64("R2D_SLO_US", 1000);
  /// Admission cap: tasks in flight beyond this are shed, not queued.
  std::uint64_t shed_cap = util::env_u64("R2D_SHED_CAP", 1024);
};

}  // namespace r2d::harness
