// Workload: the shape of one measured run.
//
// Field defaults come from R2D_* environment knobs where one exists (see
// the README catalogue); benches override the rest per figure.
#pragma once

#include <cstdint>

#include "util/env.hpp"

namespace r2d::harness {

struct Workload {
  unsigned threads = 1;
  std::uint64_t duration_ms = 100;
  std::uint64_t prefill = 0;        ///< items pushed before the clock starts
  double push_ratio = 0.5;          ///< P(operation is a push)
  /// P(operation targets the front end) — deque runners only.
  double front_ratio = util::env_f64("R2D_FRONT_RATIO", 0.5);
  bool pin_threads = util::env_u64("R2D_PIN", 0) != 0;
  /// Per-thread event cap for the quality oracle (bounds its memory); the
  /// quality run ends early when any thread fills its log.
  std::uint64_t quality_events = util::env_u64("R2D_QUALITY_EVENTS", 1u << 17);
};

}  // namespace r2d::harness
