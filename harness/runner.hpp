// Measurement runners: run_throughput and run_quality.
//
// Both drive N workers over the concept-checked push/pop surface with the
// same phase structure: per-thread prefill, a start barrier, a timed
// measurement region, a stop flag. Throughput runs count operations;
// quality runs additionally build the ticket log harness/quality.hpp
// replays into rank errors.
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "core/substack.hpp"  // hop_rand
#include "harness/quality.hpp"
#include "harness/workload.hpp"
#include "util/affinity.hpp"

namespace r2d::harness {

/// The shape every measurable structure exposes (DESIGN.md §2): move-in
/// push, optional-out pop, a racy empty probe.
template <typename S>
concept RelaxedStack = requires(S s, typename S::value_type v) {
  typename S::value_type;
  s.push(std::move(v));
  { s.pop() } -> std::same_as<std::optional<typename S::value_type>>;
  { s.empty() } -> std::convertible_to<bool>;
};

/// The double-ended variant (TwoDDeque, on either column backend —
/// DESIGN.md §11): push/pop at either end, same racy empty probe.
/// Workload::front_ratio picks the end per operation.
template <typename D>
concept RelaxedDeque = requires(D d, typename D::value_type v) {
  typename D::value_type;
  d.push_front(std::move(v));
  d.push_back(std::move(v));
  { d.pop_front() } -> std::same_as<std::optional<typename D::value_type>>;
  { d.pop_back() } -> std::same_as<std::optional<typename D::value_type>>;
  { d.empty() } -> std::convertible_to<bool>;
};

/// Per-thread label generator: unique across threads (thread id in the
/// high bits), dense within one.
class LabelSequence {
 public:
  explicit LabelSequence(unsigned thread_id)
      : next_((static_cast<std::uint64_t>(thread_id) + 1) << 40) {}
  std::uint64_t operator()() { return next_++; }

 private:
  std::uint64_t next_;
};

/// Bernoulli(p) draw from the shared per-thread generator.
inline bool bernoulli(double p) {
  return static_cast<double>(core::hop_rand() >> 11) <
         p * 9007199254740992.0;  // 2^53
}

/// Bernoulli(push_ratio) draw from the shared per-thread generator.
inline bool choose_push(double push_ratio) { return bernoulli(push_ratio); }

struct ThroughputResult {
  double mops = 0.0;          ///< million operations per second, all threads
  double seconds = 0.0;
  std::uint64_t total_ops = 0;
  std::uint64_t empty_pops = 0;
};

struct QualityResult {
  double mean_error = 0.0;
  double max_error = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t unknown_labels = 0;
};

namespace detail {

/// Shared run skeleton: prefill -> barrier -> body(t) until stop -> join.
/// Returns the measured wall-clock interval: start gun to last join (ops
/// are counted until each worker observes stop, so the join tail belongs
/// in the denominator).
template <typename Prefill, typename Body>
std::pair<std::chrono::steady_clock::time_point,
          std::chrono::steady_clock::time_point>
drive(const Workload& w, std::atomic<bool>& stop, Prefill prefill,
      Body body) {
  const unsigned threads = std::max(1u, w.threads);
  std::barrier sync(static_cast<std::ptrdiff_t>(threads) + 1);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      if (w.pin_threads) util::pin_worker(t);
      prefill(t);
      sync.arrive_and_wait();  // prefill complete
      sync.arrive_and_wait();  // start gun
      while (!stop.load(std::memory_order_relaxed)) body(t);
    });
  }
  sync.arrive_and_wait();
  const auto start = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(w.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
  return {start, std::chrono::steady_clock::now()};
}

inline std::uint64_t prefill_share(const Workload& w, unsigned t) {
  const unsigned threads = std::max(1u, w.threads);
  return w.prefill / threads + (t < w.prefill % threads ? 1 : 0);
}

/// Shared throughput accounting over drive(): `prefill(t, labels)` seeds
/// the structure, `op(labels)` performs one measured operation and
/// returns false when it was a pop that found the structure empty. The
/// stack and deque runners differ only in these two callbacks, so the
/// counter/timing logic cannot drift between them.
template <typename Prefill, typename Op>
ThroughputResult measure_throughput(const Workload& w, Prefill prefill,
                                    Op op) {
  const unsigned threads = std::max(1u, w.threads);
  std::atomic<bool> stop{false};
  struct alignas(64) Counter {
    std::uint64_t ops = 0;
    std::uint64_t empty = 0;
  };
  std::vector<Counter> counters(threads);
  std::vector<LabelSequence> labels;
  labels.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) labels.emplace_back(t);

  const auto [t0, t1] = drive(
      w, stop, [&](unsigned t) { prefill(t, labels[t]); },
      [&](unsigned t) {
        if (!op(labels[t])) ++counters[t].empty;
        ++counters[t].ops;
      });

  ThroughputResult r;
  r.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  for (const Counter& c : counters) {
    r.total_ops += c.ops;
    r.empty_pops += c.empty;
  }
  r.mops = r.seconds > 0 ? static_cast<double>(r.total_ops) / 1e6 / r.seconds
                         : 0.0;
  return r;
}

/// Shared quality accounting: per-thread ticket logs with the standard
/// event budget (the run ends early when any thread fills its log, so
/// replay memory stays bounded), merged and replayed against `order`.
/// `prefill(t, labels, log)` and `op(labels, log)` perform the operations
/// and append their events through `log(label, is_push, front)`, which
/// stamps the shared ticket.
template <typename Prefill, typename Op>
QualityResult measure_quality(const Workload& w, quality::Order order,
                              Prefill prefill, Op op) {
  const unsigned threads = std::max(1u, w.threads);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ticket{0};
  std::vector<std::vector<quality::Event>> logs(threads);
  std::vector<std::uint64_t> budgets(threads);
  std::vector<LabelSequence> labels;
  labels.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    labels.emplace_back(t);
    budgets[t] = prefill_share(w, t) + w.quality_events;
  }
  const auto logger = [&](unsigned t) {
    return [&, t](std::uint64_t label, bool is_push, bool front = false) {
      logs[t].push_back(quality::Event{
          ticket.fetch_add(1, std::memory_order_relaxed), label, is_push,
          front});
    };
  };

  drive(
      w, stop,
      [&](unsigned t) {
        logs[t].reserve(budgets[t] + 1);
        prefill(t, labels[t], logger(t));
      },
      [&](unsigned t) {
        op(labels[t], logger(t));
        if (logs[t].size() >= budgets[t]) {
          stop.store(true, std::memory_order_relaxed);
        }
      });

  std::size_t total = 0;
  for (const auto& log : logs) total += log.size();
  std::vector<quality::Event> events;
  events.reserve(total);
  for (auto& log : logs) {
    events.insert(events.end(), log.begin(), log.end());
    log.clear();
    log.shrink_to_fit();
  }
  const quality::ReplayResult replayed =
      quality::replay(std::move(events), order);

  QualityResult q;
  q.mean_error = replayed.errors.mean();
  q.max_error = replayed.errors.max();
  q.samples = replayed.errors.count();
  q.unknown_labels = replayed.unknown_labels;
  return q;
}

}  // namespace detail

template <RelaxedStack Stack>
ThroughputResult run_throughput(Stack& stack, const Workload& w) {
  return detail::measure_throughput(
      w,
      [&](unsigned t, LabelSequence& labels) {
        const std::uint64_t share = detail::prefill_share(w, t);
        for (std::uint64_t i = 0; i < share; ++i) stack.push(labels());
      },
      [&](LabelSequence& labels) {
        if (choose_push(w.push_ratio)) {
          stack.push(labels());
          return true;
        }
        return stack.pop().has_value();
      });
}

/// Quality pass: same workload, plus the ticket log (see
/// detail::measure_quality for the budget rules).
template <RelaxedStack Stack>
QualityResult run_quality(Stack& stack, const Workload& w) {
  return detail::measure_quality(
      w, quality::Order::kLifo,
      [&](unsigned t, LabelSequence& labels, auto log) {
        const std::uint64_t share = detail::prefill_share(w, t);
        for (std::uint64_t i = 0; i < share; ++i) {
          const std::uint64_t label = labels();
          log(label, /*is_push=*/true);
          stack.push(label);
        }
      },
      [&](LabelSequence& labels, auto log) {
        if (choose_push(w.push_ratio)) {
          const std::uint64_t label = labels();
          log(label, /*is_push=*/true);
          stack.push(label);
        } else if (const auto value = stack.pop()) {
          log(static_cast<std::uint64_t>(*value), /*is_push=*/false);
        }
      });
}

/// Deque throughput: the standard workload with the end of each operation
/// drawn from front_ratio. Prefill uses push_back so the prefilled state is
/// one FIFO run.
template <RelaxedDeque Deque>
ThroughputResult run_throughput_deque(Deque& deque, const Workload& w) {
  return detail::measure_throughput(
      w,
      [&](unsigned t, LabelSequence& labels) {
        const std::uint64_t share = detail::prefill_share(w, t);
        for (std::uint64_t i = 0; i < share; ++i) deque.push_back(labels());
      },
      [&](LabelSequence& labels) {
        const bool front = bernoulli(w.front_ratio);
        if (choose_push(w.push_ratio)) {
          if (front) {
            deque.push_front(labels());
          } else {
            deque.push_back(labels());
          }
          return true;
        }
        return (front ? deque.pop_front() : deque.pop_back()).has_value();
      });
}

/// Deque quality pass: the ticket log records which end each operation
/// used, and the replay (quality::Order::kDeque) scores each pop by its
/// distance from that end.
template <RelaxedDeque Deque>
QualityResult run_quality_deque(Deque& deque, const Workload& w) {
  return detail::measure_quality(
      w, quality::Order::kDeque,
      [&](unsigned t, LabelSequence& labels, auto log) {
        const std::uint64_t share = detail::prefill_share(w, t);
        for (std::uint64_t i = 0; i < share; ++i) {
          const std::uint64_t label = labels();
          log(label, /*is_push=*/true, /*front=*/false);
          deque.push_back(label);
        }
      },
      [&](LabelSequence& labels, auto log) {
        const bool front = bernoulli(w.front_ratio);
        if (choose_push(w.push_ratio)) {
          const std::uint64_t label = labels();
          log(label, /*is_push=*/true, front);
          if (front) {
            deque.push_front(label);
          } else {
            deque.push_back(label);
          }
        } else if (const auto value =
                       front ? deque.pop_front() : deque.pop_back()) {
          log(static_cast<std::uint64_t>(*value), /*is_push=*/false, front);
        }
      });
}

}  // namespace r2d::harness
