// The rank-error quality oracle.
//
// Methodology: every operation takes a ticket from a shared counter — a
// push immediately BEFORE it executes, a pop immediately AFTER it returns
// — so a popped label's push ticket always precedes its pop ticket in real
// time. Replaying the ticket-ordered log against an ideal structure then
// yields each pop's rank error: for LIFO, the number of still-live items
// pushed more recently than the popped one (0 for a strict stack); for
// FIFO, the number of still-live items enqueued earlier; for a deque, the
// popped item's distance from whichever end the pop used (each event's
// `front` flag records the end). The replay uses a Fenwick tree over push
// order, so a multi-million-event log replays in O(n log n).
//
// The ticket interleaving approximates the linearization, which is the
// standard methodology for measuring relaxed-structure quality; the
// guarantee above means a pop can never replay before its push.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace r2d::quality {

struct Event {
  std::uint64_t ticket;
  std::uint64_t label;
  bool is_push;
  /// Which end the operation used; only meaningful under Order::kDeque
  /// (LIFO/FIFO replays ignore it).
  bool front = false;
};

class ErrorStats {
 public:
  void add(double error) {
    sum_ += error;
    max_ = std::max(max_, error);
    ++count_;
  }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double max() const { return max_; }
  std::uint64_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

namespace detail {

class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}
  void add(std::size_t i, int delta) {  // 1-based
    for (; i < tree_.size(); i += i & (~i + 1)) tree_[i] += delta;
  }
  std::int64_t prefix(std::size_t i) const {  // sum of [1..i]
    std::int64_t s = 0;
    for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace detail

enum class Order { kLifo, kFifo, kDeque };

struct ReplayResult {
  ErrorStats errors;
  std::uint64_t unknown_labels = 0;
};

namespace detail {

/// Deque replay: items live on a line, front pushes extending it leftward
/// and back pushes rightward; a pop's rank error is the number of
/// still-live items strictly between the popped item and the end the pop
/// used (0 for every pop of a strict deque replayed single-threaded).
/// Positions are preassigned by counting front pushes, so one Fenwick tree
/// over positions answers both ends' distances.
inline ReplayResult replay_deque(const std::vector<Event>& events,
                                 bool truncated) {
  std::size_t pushes = 0;
  std::size_t front_pushes = 0;
  for (const Event& e : events) {
    if (e.is_push) {
      ++pushes;
      front_pushes += e.front ? 1 : 0;
    }
  }

  ReplayResult result;
  Fenwick live(pushes);
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(pushes);
  std::size_t next_front = front_pushes;      // assigned descending: 1-based
  std::size_t next_back = front_pushes + 1;   // assigned ascending
  std::int64_t alive = 0;
  for (const Event& e : events) {
    if (e.is_push) {
      const std::size_t idx = e.front ? next_front-- : next_back++;
      index_of[e.label] = idx;
      live.add(idx, 1);
      ++alive;
      continue;
    }
    const auto it = index_of.find(e.label);
    if (it == index_of.end()) {
      if (!truncated) ++result.unknown_labels;
      continue;
    }
    const std::size_t idx = it->second;
    const std::int64_t below = live.prefix(idx);  // includes the item
    const double error = e.front
                             ? static_cast<double>(below - 1)
                             : static_cast<double>(alive - below);
    result.errors.add(error);
    live.add(idx, -1);
    --alive;
    index_of.erase(it);
  }
  return result;
}

}  // namespace detail

/// Replay a ticket-ordered event log. `truncated` suppresses unknown-label
/// accounting (a truncated log legitimately misses pushes).
inline ReplayResult replay(std::vector<Event> events, Order order,
                           bool truncated = false) {
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.ticket < b.ticket; });
  if (order == Order::kDeque) return detail::replay_deque(events, truncated);
  std::size_t pushes = 0;
  for (const Event& e : events) pushes += e.is_push ? 1 : 0;

  ReplayResult result;
  detail::Fenwick live(pushes);
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  index_of.reserve(pushes);
  std::size_t next_index = 0;
  std::int64_t alive = 0;
  for (const Event& e : events) {
    if (e.is_push) {
      const std::size_t idx = ++next_index;  // 1-based, dense push order
      index_of[e.label] = idx;
      live.add(idx, 1);
      ++alive;
      continue;
    }
    const auto it = index_of.find(e.label);
    if (it == index_of.end()) {
      if (!truncated) ++result.unknown_labels;
      continue;
    }
    const std::size_t idx = it->second;
    const std::int64_t below = live.prefix(idx);  // includes the item
    const double error = order == Order::kLifo
                             ? static_cast<double>(alive - below)
                             : static_cast<double>(below - 1);
    result.errors.add(error);
    live.add(idx, -1);
    --alive;
    index_of.erase(it);
  }
  return result;
}

/// Wrap a queue so concurrent enqueue/dequeue build a ticket log, replayed
/// lazily against FIFO order by errors()/unknown_labels(). The log append
/// is mutex-serialized (exact ticket order); the queue operations
/// themselves run outside the lock. Logging stops at the event cap —
/// quality numbers then cover the logged prefix.
template <typename Queue>
class InstrumentedQueue {
 public:
  explicit InstrumentedQueue(Queue& queue, std::uint64_t max_events = 1u << 21)
      : queue_(queue), max_events_(max_events) {
    events_.reserve(std::min<std::uint64_t>(max_events, 1u << 20));
  }

  void enqueue(std::uint64_t label) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (events_.size() < max_events_) {
        events_.push_back(Event{next_ticket_++, label, true});
      } else {
        truncated_ = true;
      }
    }
    queue_.enqueue(label);
  }

  std::optional<std::uint64_t> dequeue() {
    auto value = queue_.dequeue();
    if (value) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (events_.size() < max_events_) {
        events_.push_back(Event{next_ticket_++, *value, false});
      } else {
        truncated_ = true;
      }
    }
    return value;
  }

  const ErrorStats& errors() {
    ensure_replayed();
    return result_.errors;
  }

  std::uint64_t unknown_labels() {
    ensure_replayed();
    return result_.unknown_labels;
  }

 private:
  void ensure_replayed() {
    if (replayed_) return;
    result_ = replay(std::move(events_), Order::kFifo, truncated_);
    events_.clear();
    replayed_ = true;
  }

  Queue& queue_;
  const std::uint64_t max_events_;
  std::mutex mutex_;
  std::vector<Event> events_;
  std::uint64_t next_ticket_ = 0;
  bool truncated_ = false;
  bool replayed_ = false;
  ReplayResult result_;
};

}  // namespace r2d::quality
