// EliminationStack: Treiber with an elimination back-off array
// (Hendler, Shavit, Yerushalmi 2004, simplified).
//
// After `cas_attempts` failed CASes on the central stack, an operation
// publishes a request in a random collision slot (or claims an opposite
// request already there). A push/pop pair that meets in a slot exchanges
// the value and never touches the central stack — which is why the scheme
// only helps symmetric workloads (the E8 ablation).
//
// Collision records live in a process-lifetime static pool (claimed per
// thread, never freed): a delayed partner may CAS a record's word long
// after the owner gave up, so records can never be stack-allocated. A
// sequence number packed into the state word makes stale claims fail.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/substack.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/slot_registry.hpp"
#include "sched/hook.hpp"

namespace r2d::stacks {

struct EliminationParams {
  std::size_t collision_slots = 16;  ///< width of the collision array
  std::uint64_t spin_budget = 256;   ///< waits for a partner, in spins
  unsigned cas_attempts = 2;         ///< central CAS failures before backoff
};

template <typename T, typename Reclaimer = reclaim::EpochReclaimer,
          template <typename> class Alloc = reclaim::HeapAlloc>
class EliminationStack {
  using Node = core::StackNode<T>;

  enum : std::uint64_t {
    kWaiting = 0,
    kClaimed = 1,
    kCancelled = 2,
    kDoneTaken = 3,   ///< a pop consumed this push request's value
    kDoneFilled = 4,  ///< a push filled this pop request's value
    kStateMask = 7,
    kTypeBit = 8,     ///< set for push requests
  };

  struct alignas(64) Record {
    std::atomic<std::uint64_t> owner{0};  // for detail::claim_slot
    std::atomic<std::uint64_t> word{kCancelled};
    /// Which stack instance the current request belongs to: records are
    /// shared per-thread across instances, and a straggler holding a
    /// stale slot pointer from stack A must not claim a request this
    /// thread later published for stack B.
    std::atomic<std::uint64_t> stack_id{0};
    T value{};
  };

  static constexpr std::size_t kMaxRecords = 256;

  static std::uint64_t pack(std::uint64_t seq, bool is_push,
                            std::uint64_t state) {
    return (seq << 4) | (is_push ? kTypeBit : 0) | state;
  }

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;
  using allocator_type = Alloc<Node>;

  explicit EliminationStack(EliminationParams params = {})
      : params_(params),
        slots_(new std::atomic<Record*>[std::max<std::size_t>(
            1, params.collision_slots)]) {
    if (params_.collision_slots == 0) params_.collision_slots = 1;
    for (std::size_t i = 0; i < params_.collision_slots; ++i) {
      slots_[i].store(nullptr, std::memory_order_relaxed);
    }
  }

  EliminationStack(const EliminationStack&) = delete;
  EliminationStack& operator=(const EliminationStack&) = delete;
  ~EliminationStack() { core::drain_column(column_, alloc_); }

  void push(T value) {
    // Packed-head pushes never dereference the old head, so neither the
    // central-stack attempts nor the collision path (whose records live in
    // a process-lifetime pool) need the reclaimer.
    Node* node = alloc_.acquire(nullptr, std::move(value));
    while (true) {
      std::uint64_t word = column_.head.load(std::memory_order_acquire);
      for (unsigned attempt = 0;; ++attempt) {
        // Forced miss consumes a central attempt, like a lost CAS.
        if (R2D_HOOK_POINT(kStackCas)) [[unlikely]] {
          if (attempt + 1 >= params_.cas_attempts) break;
          word = column_.head.load(std::memory_order_acquire);
          continue;
        }
        node->next = core::head_node<T>(word);
        if (column_.head.compare_exchange_strong(
                word,
                core::pack_head(node, core::packed_count_after_push(word)),
                std::memory_order_release, std::memory_order_acquire)) {
          return;
        }
        if (attempt + 1 >= params_.cas_attempts) break;
      }
      if (try_eliminate_push(node->value)) {
        alloc_.release(node);  // never shared
        return;
      }
    }
  }

  std::optional<T> pop() {
    while (true) {
      {
        // Pin only around the central-stack attempts; spinning in the
        // collision array must not stall epoch advancement.
        auto guard = reclaimer_.pin();
        std::uint64_t word =
            guard.protect_word(column_.head, core::head_node<T>);
        for (unsigned attempt = 0;; ++attempt) {
          if (R2D_HOOK_POINT(kStackCas)) [[unlikely]] {
            if (attempt + 1 >= params_.cas_attempts) break;
            word = guard.protect_word(column_.head, core::head_node<T>);
            continue;
          }
          Node* head = core::head_node<T>(word);
          if (head == nullptr) return std::nullopt;
          Node* next = head->next;
          if (column_.head.compare_exchange_strong(
                  word,
                  core::pack_head(next,
                                  core::packed_count_after_pop(word, next)),
                  std::memory_order_acq_rel, std::memory_order_relaxed)) {
            T value = std::move(head->value);
            guard.retire(head, alloc_);
            return value;
          }
          if (attempt + 1 >= params_.cas_attempts) break;
          // Re-cover the new head before dereferencing it.
          word = guard.protect_word(column_.head, core::head_node<T>);
        }
      }
      T value{};
      if (try_eliminate_pop(value)) return value;
    }
  }

  bool empty() const {
    return column_.head.load(std::memory_order_acquire) == 0;
  }

  std::uint64_t approx_size() const {
    return core::head_count(column_.head.load(std::memory_order_acquire));
  }

 private:
  // ---- collision array ----

  /// Try to exchange with an opposite operation. `is_push` requests offer
  /// `value`; pops receive into it. Returns true when eliminated.
  bool eliminate(bool is_push, T& value) {
    // Forced miss models an empty/contended collision layer: fall back
    // to the central stack, which is always correct.
    if (R2D_HOOK_POINT(kElimExchange)) [[unlikely]] return false;
    std::atomic<Record*>& slot =
        slots_[core::hop_rand() % params_.collision_slots];
    Record* occupant = slot.load(std::memory_order_acquire);
    if (occupant != nullptr) {
      return claim_as_partner(slot, occupant, is_push, value);
    }
    return publish_and_wait(slot, is_push, value);
  }

  bool try_eliminate_push(T& value) { return eliminate(true, value); }
  bool try_eliminate_pop(T& value) { return eliminate(false, value); }

  /// Act as the partner of a waiting opposite request.
  bool claim_as_partner(std::atomic<Record*>& slot, Record* record,
                        bool is_push, T& value) {
    std::uint64_t word = record->word.load(std::memory_order_acquire);
    if ((word & kStateMask) != kWaiting) return false;
    const bool record_is_push = (word & kTypeBit) != 0;
    if (record_is_push == is_push) return false;  // same direction
    // Written before the word's release store, so the acquire load above
    // makes this read current for the observed request; a republish for
    // another stack changes the word and fails the CAS below.
    if (record->stack_id.load(std::memory_order_relaxed) != id_) return false;
    const std::uint64_t claimed = (word & ~kStateMask) | kClaimed;
    if (!record->word.compare_exchange_strong(word, claimed,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
      return false;
    }
    // Clear the slot before completing so the owner's record is never
    // touched after it observes the done state.
    Record* expected = record;
    slot.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_acq_rel,
                                 std::memory_order_relaxed);
    if (record_is_push) {
      value = record->value;  // we are the pop
      record->word.store((word & ~kStateMask) | kDoneTaken,
                         std::memory_order_release);
    } else {
      record->value = value;  // we are the push
      record->word.store((word & ~kStateMask) | kDoneFilled,
                         std::memory_order_release);
    }
    return true;
  }

  /// Publish our own request and wait spin_budget for a partner.
  bool publish_and_wait(std::atomic<Record*>& slot, bool is_push, T& value) {
    Record* record = local_record();
    const std::uint64_t seq =
        (record->word.load(std::memory_order_relaxed) >> 4) + 1;
    if (is_push) record->value = value;
    record->stack_id.store(id_, std::memory_order_relaxed);
    record->word.store(pack(seq, is_push, kWaiting),
                       std::memory_order_release);
    Record* expected = nullptr;
    if (!slot.compare_exchange_strong(expected, record,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      // Someone beat us to the slot. A straggler holding this record from
      // an earlier publication may still claim the fresh WAITING word, so
      // cancelling must CAS (and honor a won exchange) on this path too.
      if (cancel_or_complete(record, seq, is_push, value)) return true;
      return expected != nullptr &&
             claim_as_partner(slot, expected, is_push, value);
    }
    for (std::uint64_t spin = 0; spin < params_.spin_budget; ++spin) {
      // Under the DST scheduler a spinning waiter must yield or no
      // partner can ever arrive; a forced miss reads as a timeout (the
      // cancel path below is always correct).
      if (R2D_HOOK_POINT(kElimExchange)) [[unlikely]] break;
      const std::uint64_t word = record->word.load(std::memory_order_acquire);
      if ((word & kStateMask) == kDoneTaken ||
          (word & kStateMask) == kDoneFilled) {
        if (!is_push) value = record->value;
        return true;
      }
    }
    // Timed out: cancel, unless a partner claimed us mid-cancel.
    if (cancel_or_complete(record, seq, is_push, value)) return true;
    Record* cleared = record;
    slot.compare_exchange_strong(cleared, nullptr,
                                 std::memory_order_acq_rel,
                                 std::memory_order_relaxed);
    return false;
  }

  /// Withdraw a published WAITING request. Returns false when the cancel
  /// won (caller owns the record again); true when a partner claimed it
  /// first, in which case this waits out the exchange and delivers it.
  bool cancel_or_complete(Record* record, std::uint64_t seq, bool is_push,
                          T& value) {
    std::uint64_t word = pack(seq, is_push, kWaiting);
    if (record->word.compare_exchange_strong(word, pack(seq, is_push,
                                                        kCancelled),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      return false;
    }
    // A partner is (or was) mid-exchange: wait for it to finish. The
    // preemption point keeps this (two-instruction) wait from starving
    // the partner under the cooperative scheduler.
    while (true) {
      sched::preempt_point();
      word = record->word.load(std::memory_order_acquire);
      const std::uint64_t state = word & kStateMask;
      if (state == kDoneTaken || state == kDoneFilled) {
        if (!is_push) value = record->value;
        return true;
      }
    }
  }

  /// Per-thread collision record from a process-lifetime pool (see file
  /// comment for why these must never be freed). The lease releases the
  /// record's ownership on thread exit so the pool survives processes that
  /// spawn thousands of short-lived threads; the sequence number makes any
  /// straggling partner's CAS on a re-claimed record fail.
  Record* local_record() {
    static Record* pool = new Record[kMaxRecords];  // intentionally leaked
    static std::atomic<std::size_t> hwm{0};
    struct Lease {
      Record* record;
      ~Lease() { record->owner.store(0, std::memory_order_release); }
    };
    thread_local Lease lease{
        reclaim::detail::claim_slot(pool, kMaxRecords, hwm)};
    return lease.record;
  }

  EliminationParams params_;
  const std::uint64_t id_ = reclaim::detail::next_instance_id();
  core::StackColumn<T> column_;
  std::unique_ptr<std::atomic<Record*>[]> slots_;
  // alloc_ before reclaimer_: deferred retires drain into it (DESIGN.md §10).
  [[no_unique_address]] Alloc<Node> alloc_;
  Reclaimer reclaimer_;
};

}  // namespace r2d::stacks
