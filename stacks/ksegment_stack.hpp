// KSegmentStack: the k-stack (Henzinger et al. 2013, simplified) — a
// Treiber stack of segments, each holding up to k items in CAS-able cells.
// Any of the top segment's k items may be popped, giving k-relaxed LIFO.
//
// Segment removal uses the k-stack's deleted-mark protocol: a popper that
// finds the top segment empty marks it deleted, re-scans (a pusher that
// saw the mark retracts its item; one that didn't is visible to the
// re-scan by seq_cst ordering), and only then unlinks. Failure anywhere
// rolls the mark back.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/substack.hpp"  // hop_rand
#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "sched/hook.hpp"

namespace r2d::stacks {

template <typename T, typename Reclaimer = reclaim::EpochReclaimer,
          template <typename> class Alloc = reclaim::HeapAlloc>
class KSegmentStack {
  struct Item {
    T value;
  };

  struct Segment {
    explicit Segment(std::size_t k, Segment* below)
        : k(k), next(below), cells(new std::atomic<Item*>[k]) {
      for (std::size_t i = 0; i < k; ++i) {
        cells[i].store(nullptr, std::memory_order_relaxed);
      }
    }
    // Items left in the cells belong to the stack's item allocator; the
    // stack's destructor drains them before releasing the segment (a
    // segment retired mid-run is certified empty first).
    const std::size_t k;
    Segment* const next;  ///< toward the bottom; immutable after linking
    std::atomic<bool> deleted{false};
    std::unique_ptr<std::atomic<Item*>[]> cells;
  };

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;
  using allocator_type = Alloc<Item>;

  explicit KSegmentStack(std::size_t k) : k_(std::max<std::size_t>(1, k)) {
    top_.store(seg_alloc_.acquire(k_, nullptr), std::memory_order_relaxed);
  }

  KSegmentStack(const KSegmentStack&) = delete;
  KSegmentStack& operator=(const KSegmentStack&) = delete;

  ~KSegmentStack() {
    Segment* segment = top_.load(std::memory_order_relaxed);
    while (segment != nullptr) {
      Segment* next = segment->next;
      for (std::size_t i = 0; i < segment->k; ++i) {
        if (Item* item = segment->cells[i].load(std::memory_order_relaxed)) {
          item_alloc_.release(item);
        }
      }
      seg_alloc_.release(segment);
      segment = next;
    }
  }

  void push(T value) {
    auto guard = reclaimer_.pin();
    Item* item = item_alloc_.acquire(std::move(value));
    while (true) {
      Segment* top = guard.protect(top_);
      if (try_insert(top, item)) return;
      // Top segment full: stack a fresh segment on it.
      Segment* grown = seg_alloc_.acquire(k_, top);
      Segment* expected = top;
      if (!top_.compare_exchange_strong(expected, grown,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        seg_alloc_.release(grown);
      }
    }
  }

  std::optional<T> pop() {
    auto guard = reclaimer_.pin();
    while (true) {
      Segment* top = guard.protect(top_);
      if (Item* item = try_remove(top)) {
        T value = std::move(item->value);
        guard.retire(item, item_alloc_);
        return value;
      }
      // Top observed empty. Bottom segment: report empty instead of
      // unlinking the last segment.
      if (top->next == nullptr) {
        if (scan_empty(top)) return std::nullopt;
        continue;
      }
      // Exclusive marker: only the thread whose CAS set the mark may
      // unlink or roll back, so an unlinked segment can never be
      // un-marked (which would let a racing pusher strand an item in it).
      bool unmarked = false;
      if (!top->deleted.compare_exchange_strong(unmarked, true,
                                                std::memory_order_seq_cst,
                                                std::memory_order_relaxed)) {
        continue;  // another popper owns the removal; retry from top_
      }
      if (!scan_empty(top)) {
        top->deleted.store(false, std::memory_order_seq_cst);
        continue;
      }
      Segment* expected = top;
      if (top_.compare_exchange_strong(expected, top->next,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        // Mark stays set: stragglers keep retracting.
        guard.retire(top, seg_alloc_);
      } else {
        // A pusher stacked a new segment above us (only the marker may
        // unlink, so top_ changing means growth): the segment stays
        // reachable — revive it.
        top->deleted.store(false, std::memory_order_seq_cst);
      }
    }
  }

  /// Racy probe. Only the protected top segment may be inspected (lower
  /// segments can be unlinked and freed mid-walk under hazard-pointer
  /// reclamation), so while an empty top still covers other segments this
  /// conservatively reports non-empty.
  bool empty() {
    auto guard = reclaimer_.pin();
    Segment* top = guard.protect(top_);
    if (!scan_empty(top)) return false;
    return top->next == nullptr;
  }

  /// Racy lower-bound approximation: counts the top segment only (see
  /// empty() for why the chain cannot be traversed).
  std::uint64_t approx_size() {
    auto guard = reclaimer_.pin();
    Segment* top = guard.protect(top_);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      if (top->cells[i].load(std::memory_order_acquire) != nullptr) ++total;
    }
    return total;
  }

 private:
  /// Insert into any free cell of `segment`; retracts (and reports
  /// failure) when the segment was concurrently marked deleted.
  bool try_insert(Segment* segment, Item* item) {
    const std::size_t start =
        static_cast<std::size_t>(core::hop_rand()) % k_;
    for (std::size_t probe = 0; probe < k_; ++probe) {
      // Forced miss skips the cell, as if another thread won its CAS;
      // scan_empty stays unhooked so emptiness is never falsely certified.
      if (R2D_HOOK_POINT(kSegmentCell)) [[unlikely]] continue;
      auto& cell = segment->cells[(start + probe) % k_];
      Item* expected = nullptr;
      if (cell.load(std::memory_order_acquire) != nullptr) continue;
      if (cell.compare_exchange_strong(expected, item,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        if (!segment->deleted.load(std::memory_order_seq_cst)) return true;
        // The segment is being unlinked: take the item back if no popper
        // beat us to it (in which case the push still counts).
        Item* mine = item;
        return !cell.compare_exchange_strong(mine, nullptr,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed);
      }
    }
    return false;
  }

  Item* try_remove(Segment* segment) {
    const std::size_t start =
        static_cast<std::size_t>(core::hop_rand()) % k_;
    for (std::size_t probe = 0; probe < k_; ++probe) {
      if (R2D_HOOK_POINT(kSegmentCell)) [[unlikely]] continue;
      auto& cell = segment->cells[(start + probe) % k_];
      Item* item = cell.load(std::memory_order_acquire);
      if (item == nullptr) continue;
      if (cell.compare_exchange_strong(item, nullptr,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        return item;
      }
    }
    return nullptr;
  }

  bool scan_empty(Segment* segment) const {
    for (std::size_t i = 0; i < k_; ++i) {
      if (segment->cells[i].load(std::memory_order_seq_cst) != nullptr) {
        return false;
      }
    }
    return true;
  }

  const std::size_t k_;
  // Allocators before reclaimer_: its destructor drains deferred retires
  // (items and segments) into them (DESIGN.md §10).
  [[no_unique_address]] Alloc<Item> item_alloc_;
  [[no_unique_address]] Alloc<Segment> seg_alloc_;
  std::atomic<Segment*> top_{nullptr};
  Reclaimer reclaimer_;
};

}  // namespace r2d::stacks
