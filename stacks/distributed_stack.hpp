// Distributed (unbounded-relaxation) stack designs: a width-array of
// Treiber columns with three placement policies.
//
//   RandomStack    — uniform random column per operation
//   RandomC2Stack  — power-of-two-choices on the column counts
//   KRobinStack    — per-thread round-robin over the columns
//
// None of these maintain a window, so their rank error is unbounded in
// theory (bounded in practice by balance); they are the paper's
// load-balancing comparison points for Figure 2. All placement decisions
// read packed head words (count + pointer in one atomic), so pushes and
// count probes never pin the reclaimer — only pops do.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/substack.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "sched/hook.hpp"

namespace r2d::stacks {

namespace detail {

/// Shared column-array machinery: storage, node allocation, single-column
/// push/pop attempts, and the pop fallback scan that distinguishes "my
/// column is empty" from "the stack is empty".
template <typename T, typename Reclaimer, template <typename> class Alloc>
class ColumnArrayStack {
  protected:
  using Node = core::StackNode<T>;
  using Column = core::StackColumn<T>;
  using Guard = decltype(std::declval<Reclaimer&>().pin());

  explicit ColumnArrayStack(std::size_t width)
      : width_(std::max<std::size_t>(1, width)),
        columns_(new Column[width_]) {}

  ~ColumnArrayStack() {
    for (std::size_t i = 0; i < width_; ++i) {
      core::drain_column(columns_[i], alloc_);
    }
  }

  Node* make_node(T&& value) {
    return alloc_.acquire(nullptr, std::move(value));
  }

  /// One CAS attempt; on success the node is linked. No dereference, no
  /// guard.
  bool try_push_at(std::size_t index, Node* node) {
    Column& column = columns_[index];
    std::uint64_t word = column.head.load(std::memory_order_acquire);
    node->next = core::head_node<T>(word);
    return column.head.compare_exchange_strong(
        word, core::pack_head(node, core::packed_count_after_push(word)),
        std::memory_order_release, std::memory_order_relaxed);
  }

  /// One CAS attempt; nullopt when the column was empty or contended
  /// (`was_empty` tells which).
  std::optional<T> try_pop_at(Guard& guard, std::size_t index,
                              bool& was_empty) {
    Column& column = columns_[index];
    const std::uint64_t word =
        guard.protect_word(column.head, core::head_node<T>);
    Node* head = core::head_node<T>(word);
    was_empty = head == nullptr;
    if (head == nullptr) return std::nullopt;
    Node* next = head->next;
    std::uint64_t expected = word;
    if (column.head.compare_exchange_strong(
            expected,
            core::pack_head(next, core::packed_count_after_pop(word, next)),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      T value = std::move(head->value);
      guard.retire(head, alloc_);
      return value;
    }
    return std::nullopt;
  }

  std::uint64_t count_at(std::size_t index) const {
    return core::head_count(columns_[index].head.load(std::memory_order_acquire));
  }

  /// Sweep every column once; returns nullopt only after observing all of
  /// them empty in one contention-free pass.
  std::optional<T> pop_scan(Guard& guard) {
    while (true) {
      std::size_t empties = 0;
      for (std::size_t i = 0; i < width_; ++i) {
        bool was_empty = false;
        if (auto v = try_pop_at(guard, i, was_empty)) return v;
        if (was_empty) ++empties;
      }
      if (empties == width_) return std::nullopt;
    }
  }

 public:
  bool empty() const {
    for (std::size_t i = 0; i < width_; ++i) {
      if (columns_[i].head.load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
    return true;
  }

  /// Racy sum of the column counts — a pure packed-word scan.
  std::uint64_t approx_size() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < width_; ++i) total += count_at(i);
    return total;
  }

 protected:
  std::size_t width_;
  std::unique_ptr<Column[]> columns_;
  // alloc_ before reclaimer_: deferred retires drain into it (DESIGN.md §10).
  [[no_unique_address]] Alloc<Node> alloc_;
  Reclaimer reclaimer_;
};

}  // namespace detail

template <typename T, typename Reclaimer = reclaim::EpochReclaimer,
          template <typename> class Alloc = reclaim::HeapAlloc>
class RandomStack : public detail::ColumnArrayStack<T, Reclaimer, Alloc> {
  using Base = detail::ColumnArrayStack<T, Reclaimer, Alloc>;
  using Node = typename Base::Node;

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;

  explicit RandomStack(std::size_t width) : Base(width) {}

  void push(T value) {
    Node* node = this->make_node(std::move(value));
    while (true) {
      // Forced miss re-picks, as if the chosen column's CAS was lost;
      // pop_scan stays unhooked so its certification is never skewed.
      if (R2D_HOOK_POINT(kColumnPick)) [[unlikely]] continue;
      if (this->try_push_at(this->random_index(), node)) return;
    }
  }

  std::optional<T> pop() {
    auto guard = this->reclaimer_.pin();
    // A few random probes, then the certified scan.
    for (std::size_t probe = 0; probe < this->width_; ++probe) {
      if (R2D_HOOK_POINT(kColumnPick)) [[unlikely]] continue;
      bool was_empty = false;
      if (auto v = this->try_pop_at(guard, this->random_index(), was_empty)) {
        return v;
      }
    }
    return this->pop_scan(guard);
  }

 private:
  std::size_t random_index() const {
    return static_cast<std::size_t>(core::hop_rand()) % this->width_;
  }
};

template <typename T, typename Reclaimer = reclaim::EpochReclaimer,
          template <typename> class Alloc = reclaim::HeapAlloc>
class RandomC2Stack : public detail::ColumnArrayStack<T, Reclaimer, Alloc> {
  using Base = detail::ColumnArrayStack<T, Reclaimer, Alloc>;
  using Node = typename Base::Node;

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;

  explicit RandomC2Stack(std::size_t width) : Base(width) {}

  void push(T value) {
    Node* node = this->make_node(std::move(value));
    while (true) {
      if (R2D_HOOK_POINT(kColumnPick)) [[unlikely]] continue;
      const auto [a, b] = sample_two();
      // Push to the shorter column: keeps the columns balanced, which is
      // what bounds the observed rank error. Both counts come from one
      // packed-word load each — the c2 choice is guard-free.
      const std::size_t target =
          this->count_at(a) <= this->count_at(b) ? a : b;
      if (this->try_push_at(target, node)) return;
    }
  }

  std::optional<T> pop() {
    auto guard = this->reclaimer_.pin();
    for (std::size_t probe = 0; probe < this->width_; ++probe) {
      if (R2D_HOOK_POINT(kColumnPick)) [[unlikely]] continue;
      const auto [a, b] = sample_two();
      // Pop from the taller column: its top is the more recent push.
      const std::size_t target =
          this->count_at(a) >= this->count_at(b) ? a : b;
      bool was_empty = false;
      if (auto v = this->try_pop_at(guard, target, was_empty)) return v;
    }
    return this->pop_scan(guard);
  }

 private:
  std::pair<std::size_t, std::size_t> sample_two() const {
    const std::uint64_t r = core::hop_rand();
    return {static_cast<std::size_t>(r >> 32) % this->width_,
            static_cast<std::size_t>(r & 0xffffffffu) % this->width_};
  }
};

template <typename T, typename Reclaimer = reclaim::EpochReclaimer,
          template <typename> class Alloc = reclaim::HeapAlloc>
class KRobinStack : public detail::ColumnArrayStack<T, Reclaimer, Alloc> {
  using Base = detail::ColumnArrayStack<T, Reclaimer, Alloc>;
  using Node = typename Base::Node;

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;

  explicit KRobinStack(std::size_t width) : Base(width) {}

  void push(T value) {
    Node* node = this->make_node(std::move(value));
    std::size_t index = next_index();
    while (true) {
      if (R2D_HOOK_POINT(kColumnPick)) [[unlikely]] {
        index = next_index();
        continue;
      }
      if (this->try_push_at(index, node)) return;
      index = next_index();
    }
  }

  std::optional<T> pop() {
    auto guard = this->reclaimer_.pin();
    for (std::size_t probe = 0; probe < this->width_; ++probe) {
      if (R2D_HOOK_POINT(kColumnPick)) [[unlikely]] continue;
      bool was_empty = false;
      if (auto v = this->try_pop_at(guard, next_index(), was_empty)) {
        return v;
      }
    }
    return this->pop_scan(guard);
  }

 private:
  /// Per-thread rotation: consecutive operations by one thread visit
  /// consecutive columns, the paper's "round robin" placement.
  std::size_t next_index() {
    thread_local std::uint64_t cursor = core::hop_rand();
    return static_cast<std::size_t>(cursor++) % this->width_;
  }
};

}  // namespace r2d::stacks
