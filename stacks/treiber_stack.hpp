// TreiberStack: the strict lock-free baseline (Treiber 1986).
//
// A single packed-head column (core/substack.hpp) behind the pluggable
// reclamation policy. This is the stack every figure compares against and
// the sub-structure the distributed designs shard. Pushes link onto the
// packed head without dereferencing it, so they never touch the reclaimer;
// only pops (which read head->next) pin.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/substack.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "sched/hook.hpp"

namespace r2d::stacks {

template <typename T, typename Reclaimer = reclaim::EpochReclaimer,
          template <typename> class Alloc = reclaim::HeapAlloc>
class TreiberStack {
  using Node = core::StackNode<T>;

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;
  using allocator_type = Alloc<Node>;

  TreiberStack() = default;
  TreiberStack(const TreiberStack&) = delete;
  TreiberStack& operator=(const TreiberStack&) = delete;
  ~TreiberStack() { core::drain_column(column_, alloc_); }

  void push(T value) {
    Node* node = alloc_.acquire(nullptr, std::move(value));
    std::uint64_t word = column_.head.load(std::memory_order_acquire);
    while (true) {
      // Hook per CAS attempt: a preemption (or forced retry) here lands
      // between reading the head and publishing against it.
      if (R2D_HOOK_POINT(kStackCas)) [[unlikely]] {
        word = column_.head.load(std::memory_order_acquire);
        continue;
      }
      node->next = core::head_node<T>(word);
      if (column_.head.compare_exchange_weak(
              word, core::pack_head(node, core::packed_count_after_push(word)),
              std::memory_order_release, std::memory_order_acquire)) {
        return;
      }
    }
  }

  std::optional<T> pop() {
    // Word-only empty probe before paying for a pin.
    if (column_.head.load(std::memory_order_acquire) == 0) {
      return std::nullopt;
    }
    auto guard = reclaimer_.pin();
    std::uint64_t word = guard.protect_word(column_.head, core::head_node<T>);
    while (true) {
      // Forced miss reads as a lost CAS: re-cover the head and retry.
      if (R2D_HOOK_POINT(kStackCas)) [[unlikely]] {
        word = guard.protect_word(column_.head, core::head_node<T>);
        continue;
      }
      Node* head = core::head_node<T>(word);
      if (head == nullptr) return std::nullopt;
      Node* next = head->next;
      if (column_.head.compare_exchange_weak(
              word,
              core::pack_head(next, core::packed_count_after_pop(word, next)),
              std::memory_order_acq_rel, std::memory_order_relaxed)) {
        T value = std::move(head->value);
        guard.retire(head, alloc_);
        return value;
      }
      // Re-cover the new head before dereferencing it (hazard policies
      // must republish).
      word = guard.protect_word(column_.head, core::head_node<T>);
    }
  }

  bool empty() const {
    return column_.head.load(std::memory_order_acquire) == 0;
  }

  std::uint64_t approx_size() const {
    return core::head_count(column_.head.load(std::memory_order_acquire));
  }

 private:
  core::StackColumn<T> column_;
  // alloc_ before reclaimer_: deferred retires drain into it (DESIGN.md §10).
  [[no_unique_address]] Alloc<Node> alloc_;
  Reclaimer reclaimer_;
};

}  // namespace r2d::stacks
