// TreiberStack: the strict lock-free baseline (Treiber 1986).
//
// A single count-carrying column (core/substack.hpp) behind the pluggable
// reclamation policy. This is the stack every figure compares against and
// the sub-structure the distributed designs shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/substack.hpp"
#include "reclaim/epoch.hpp"

namespace r2d::stacks {

template <typename T, typename Reclaimer = reclaim::EpochReclaimer>
class TreiberStack {
  using Node = core::StackNode<T>;

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;

  TreiberStack() = default;
  TreiberStack(const TreiberStack&) = delete;
  TreiberStack& operator=(const TreiberStack&) = delete;
  ~TreiberStack() { core::drain_column(column_); }

  void push(T value) {
    auto guard = reclaimer_.pin();
    Node* node = new Node{nullptr, 0, std::move(value)};
    while (true) {
      Node* head = guard.protect(column_.head);
      node->next = head;
      node->count = core::column_count(head) + 1;
      if (column_.head.compare_exchange_weak(head, node,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
        return;
      }
    }
  }

  std::optional<T> pop() {
    auto guard = reclaimer_.pin();
    while (true) {
      Node* head = guard.protect(column_.head);
      if (head == nullptr) return std::nullopt;
      Node* next = head->next;
      if (column_.head.compare_exchange_weak(head, next,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
        T value = std::move(head->value);
        guard.retire(head);
        return value;
      }
    }
  }

  bool empty() const {
    return column_.head.load(std::memory_order_acquire) == nullptr;
  }

  std::uint64_t approx_size() {
    auto guard = reclaimer_.pin();
    return core::column_count(guard.protect(column_.head));
  }

 private:
  core::StackColumn<T> column_;
  Reclaimer reclaimer_;
};

}  // namespace r2d::stacks
