// Non-throwing operation status (DESIGN.md §15).
//
// Every container's `try_push` family reports resource failure as a
// value instead of an exception: `kNoMemory` for allocation failure
// (bad_alloc from HeapAlloc or an exhausted, non-growable pool) and
// `kNoSlots` for reclaimer/allocator slot-lease exhaustion
// (SlotsExhausted past R2D_MAX_SLOTS). Both map onto the same strong
// guarantee the throwing form documents: the container is unchanged and
// no node is leaked.
#pragma once

#include <cstdint>

namespace r2d::core {

enum class OpStatus : std::uint8_t {
  kOk = 0,      ///< the element was inserted
  kNoMemory,    ///< allocation failed; container unchanged
  kNoSlots,     ///< slot lease exhausted (SlotsExhausted); unchanged
};

constexpr const char* to_string(OpStatus s) {
  switch (s) {
    case OpStatus::kOk: return "ok";
    case OpStatus::kNoMemory: return "no-memory";
    case OpStatus::kNoSlots: return "no-slots";
  }
  return "?";
}

}  // namespace r2d::core
