// The packed per-column end-flow word every deque column backend publishes
// and every window probe reads.
//
// A column's occupancy says nothing about how out-of-order its front or
// back item is, so the deque's two windows range over per-column signed
// *end-flows* instead: the front flow f = front-pushes - front-pops and
// the back flow b = back-pushes - back-pops (DESIGN.md §9). Both flows are
// biased 32-bit counters packed into one 64-bit atomic —
// [f + bias : 32][b + bias : 32] — so eligibility probes, certification
// scans, empty() and approx_size() read a single word per column with no
// dereference, no lock, and no reclaimer guard, whichever backend owns the
// column's structure. The 31-bit signed range caps per-column lifetime
// end-flow drift at ~2.1e9 operations; occupancy is the exact sum f + b,
// so count == 0 <=> empty needs no saturation protocol.
//
// Who writes the word is backend policy: the locked backend stores it
// under the column lock (the column's linearization point), the DWCAS
// backend publishes it with one release fetch_add immediately after the
// successful head CAS (the deltas commute, so no CAS loop is needed; see
// DESIGN.md §11 for why the probe stays sound with that small lag).
#pragma once

#include <cstdint>

namespace r2d::core {

/// Center of the biased 32-bit flow representation: a stored field of
/// kFlowBias means "net zero". Windows live on the same biased scale, so
/// every eligibility comparison is plain unsigned arithmetic.
inline constexpr std::uint64_t kFlowBias = std::uint64_t{1} << 31;

/// Both flows at net zero — the empty column's word.
inline constexpr std::uint64_t kFlowInit = (kFlowBias << 32) | kFlowBias;

inline constexpr std::uint64_t front_flow(std::uint64_t word) {
  return word >> 32;
}
inline constexpr std::uint64_t back_flow(std::uint64_t word) {
  return word & 0xffffffffu;
}

/// Exact occupancy: the biases cancel in f + b.
inline constexpr std::uint64_t flow_occupancy(std::uint64_t word) {
  return front_flow(word) + back_flow(word) - 2 * kFlowBias;
}

/// The end-flow a given end's window ranges over, on the biased scale.
template <bool kFront>
inline constexpr std::uint64_t end_flow(std::uint64_t word) {
  return kFront ? front_flow(word) : back_flow(word);
}

/// The packed-word delta that moves one end's flow by +1 (negate or
/// subtract for -1). Two's-complement wrap keeps the adjacent field intact
/// until a flow exceeds its 31-bit range, the documented drift cap.
template <bool kFront>
inline constexpr std::uint64_t flow_step() {
  return kFront ? (std::uint64_t{1} << 32) : std::uint64_t{1};
}

}  // namespace r2d::core
