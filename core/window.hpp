// The shared window-sweep engine: one implementation of the 2D framework's
// probe/hop/certify/shift loop, instantiated by every windowed container in
// this repo (TwoDStack pushes and pops, TwoDQueue puts and gets, TwoDDeque
// operations at either end).
//
// The paper's containers all share the same control structure: probe a
// column for eligibility under the current window, hop between columns per
// HopMode after an ineligible probe or a lost CAS, and only move the window
// — monotonically, by `shift` — after a *certified failed sweep*, i.e.
// proof that every column was ineligible under an unchanged window value.
// TwoDStack and TwoDQueue used to hand-roll this loop separately, and the
// certification bugs PR 1 fixed crept in exactly through that duplication;
// this header is the single copy.
//
// What stays with the container (the three callbacks of drive_window_sweep):
//   * how a column is probed and operated on (`attempt`),
//   * how eligibility is re-checked read-only (`eligible`, used by the
//     random-only verify scan),
//   * what a certified failed sweep means (`certified`: shift the window to
//     a new value, redirect to a column the scan found eligible, or stop —
//     e.g. a pop that certified the whole structure empty).
// What the engine owns: the sweep-state machine (hop policy, contention
// restarts, streak counting), the certification thresholds, the random-only
// verify scan, window refresh on concurrent shifts, and the monotonic
// window-shift CAS itself.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "core/params.hpp"
#include "core/substack.hpp"  // hop_rand
#include "sched/hook.hpp"
#include "obs/metrics.hpp"

namespace r2d::core {

/// Result of one column probe inside a sweep.
enum class Probe : std::uint8_t {
  kSuccess,     ///< the operation completed on this column
  kIneligible,  ///< column outside the window (or empty) — advance the sweep
  kContended    ///< lost a race on an eligible column — restart certification
};

/// A container's verdict after a certified failed sweep (every column
/// proven ineligible under window value `max`).
struct Certified {
  enum class Kind : std::uint8_t {
    kShift,    ///< propose `target` as the new window value (monotonic rule)
    kRestart,  ///< the certification scan found column `index` eligible
    kStop      ///< terminal state observed (e.g. pop of an empty structure)
  };

  Kind kind;
  std::uint64_t target = 0;  ///< kShift: proposed window value
  std::size_t index = 0;     ///< kRestart: column to re-probe

  static constexpr Certified shift_to(std::uint64_t target) {
    return Certified{Kind::kShift, target, 0};
  }
  static constexpr Certified restart_at(std::size_t index) {
    return Certified{Kind::kRestart, 0, index};
  }
  static constexpr Certified stop() { return Certified{Kind::kStop, 0, 0}; }
};

/// Per-operation sweep state: which column to probe next, and how much of a
/// failed sweep has been certified so far.
///
/// Hop policy per HopMode (DESIGN.md §9): kHybrid does `width` random hops,
/// then switches to a round-robin streak; kRoundRobinOnly streaks from the
/// start; kRandomOnly hops randomly forever. A streak that covers `width`
/// consecutive ineligible probes under an unchanged window certifies the
/// failed sweep by itself; random probes can revisit columns, so in
/// kRandomOnly `width` failed probes only make certification *due* — the
/// engine then pays a read-only verify scan. A lost CAS (contention) means
/// the observed column *was* eligible, so it restarts certification from
/// scratch.
class SweepState {
 public:
  SweepState(const TwoDParams& params, std::size_t start)
      : p_(params),
        index_(start % params.width),
        round_robin_(params.hop_mode == HopMode::kRoundRobinOnly) {}

  std::size_t index() const { return index_; }

  void reset() {
    random_probes_ = 0;
    streak_ = 0;
    round_robin_ = p_.hop_mode == HopMode::kRoundRobinOnly;
  }

  /// Certification restarts at `index` (a scan found it eligible).
  void restart_at(std::size_t index) {
    reset();
    index_ = index % p_.width;
  }

  void on_ineligible() {
    if (round_robin_) {
      obs::count<obs::Counter::kHopsStreak>();
      ++streak_;
      index_ = (index_ + 1) % p_.width;
      return;
    }
    obs::count<obs::Counter::kHopsRandom>();
    ++random_probes_;
    index_ = static_cast<std::size_t>(hop_rand()) % p_.width;
    if (p_.hop_mode == HopMode::kHybrid && random_probes_ >= p_.width) {
      round_robin_ = true;
      streak_ = 0;
    }
  }

  void on_contended() {
    // Contention: hop away (randomly, unless round-robin-only) and start
    // the certification over — the observed column was eligible.
    obs::count<obs::Counter::kHopsContended>();
    streak_ = 0;
    random_probes_ = 0;
    if (p_.hop_mode == HopMode::kRoundRobinOnly) {
      index_ = (index_ + 1) % p_.width;
    } else {
      round_robin_ = false;
      index_ = static_cast<std::size_t>(hop_rand()) % p_.width;
    }
  }

  /// True once this sweep has (for streak modes) proven, or (for
  /// kRandomOnly) made due, a full failed sweep.
  bool certification_due() const {
    if (p_.hop_mode == HopMode::kRandomOnly) {
      return random_probes_ >= p_.width;
    }
    return round_robin_ && streak_ >= p_.width;
  }

 private:
  const TwoDParams& p_;
  std::size_t index_;
  unsigned random_probes_ = 0;
  unsigned streak_ = 0;
  bool round_robin_;
};

/// Drive one operation's sweep to completion.
///
/// `window` is the operation's window counter (e.g. the stack's
/// `window_max_`, the queue's `put_max_` or `get_max_`); `start` the column
/// to sweep from (typically the thread's preferred column, whose fast-path
/// probe already failed with `seed`); `max` the window value that fast path
/// observed.
///
/// Callback contract:
///   Probe attempt(std::size_t index, std::uint64_t max)
///     One probe of `index` under window `max`: check eligibility exactly
///     and try the operation's CAS. On kSuccess the operation's result must
///     have been captured by the callback (the engine returns true).
///   bool eligible(std::size_t index, std::uint64_t max)
///     Read-only eligibility check used by the kRandomOnly verify scan; may
///     err toward true (attempt re-checks exactly) but must never report a
///     genuinely eligible column as ineligible.
///   Certified certified(std::uint64_t max)
///     Called after a certified failed sweep; decides shift / redirect /
///     stop. A kShift target must be monotonic in the window's direction of
///     travel and is installed with a single CAS — losing that race is
///     benign (some other thread moved the same window; the sweep restarts
///     under the new value).
///
/// Returns true when `attempt` reported kSuccess, false when `certified`
/// stopped the sweep. The engine re-reads `window` before every probe so a
/// concurrent shift resets the sweep (certification is only valid under an
/// unchanged window value).
///
/// `cause` tags this operation's window shifts in the obs trace ring
/// (obs::ShiftCause::kUnknown when the caller doesn't care); everything
/// else about the instrumentation is the engine's own (DESIGN.md §14):
/// probes, hops by reason, verify scans/redirects, certification
/// consults/failures, and shift attempts split into wins and losses.
template <typename Attempt, typename Eligible, typename CertifiedFn>
bool drive_window_sweep(const TwoDParams& p,
                        std::atomic<std::uint64_t>& window, std::size_t start,
                        std::uint64_t max, Probe seed, Attempt&& attempt,
                        Eligible&& eligible, CertifiedFn&& certified,
                        obs::ShiftCause cause = obs::ShiftCause::kUnknown) {
  obs::count<obs::Counter::kSweeps>();
  SweepState sweep(p, start);
  if (seed == Probe::kContended) {
    sweep.on_contended();
  } else {
    sweep.on_ineligible();
  }
  while (true) {
    // Injected stall: a forced yield between the window re-read and the
    // probe — the worst spot for preemption, where a concurrent shift
    // invalidates the certification this sweep is building.
    if (R2D_HOOK_POINT(kSweepStall)) [[unlikely]] {
      std::this_thread::yield();
    }
    {
      const std::uint64_t cur = window.load(std::memory_order_acquire);
      if (cur != max) {
        max = cur;
        sweep.reset();
      }
    }
    obs::count<obs::Counter::kProbes>();
    switch (attempt(sweep.index(), max)) {
      case Probe::kSuccess:
        obs::count<obs::Counter::kSweepSuccess>();
        return true;
      case Probe::kContended:
        sweep.on_contended();
        continue;
      case Probe::kIneligible:
        break;
    }
    sweep.on_ineligible();
    if (!sweep.certification_due()) continue;
    if (p.hop_mode == HopMode::kRandomOnly) {
      // Random probes can revisit columns, so the sweep alone proves
      // nothing: verify with a read-only scan before consulting the
      // container, and resume at any eligible column it finds.
      obs::count<obs::Counter::kVerifyScans>();
      bool redirected = false;
      for (std::size_t i = 0; i < p.width; ++i) {
        if (eligible(i, max)) {
          sweep.restart_at(i);
          redirected = true;
          break;
        }
      }
      if (redirected) {
        obs::count<obs::Counter::kVerifyRedirects>();
        continue;
      }
    }
    obs::count<obs::Counter::kCertAttempts>();
    const Certified c = certified(max);
    switch (c.kind) {
      case Certified::Kind::kStop:
        obs::count<obs::Counter::kSweepStop>();
        return false;
      case Certified::Kind::kRestart:
        obs::count<obs::Counter::kCertFails>();
        sweep.restart_at(c.index);
        continue;
      case Certified::Kind::kShift: {
        std::uint64_t expected = max;
        obs::count<obs::Counter::kShiftAttempts>();
        // Injected shift loss: behaves exactly like losing the CAS to a
        // racing shifter, without executing it — the window is re-read
        // and the sweep restarts; monotonicity is untouched.
        const bool won = !R2D_HOOK_POINT(kShiftCas) &&
                         window.compare_exchange_strong(
                             expected, c.target, std::memory_order_acq_rel,
                             std::memory_order_relaxed);
        if (won) {
          obs::count<obs::Counter::kShiftWins>();
        } else {
          obs::count<obs::Counter::kShiftLosses>();
        }
        obs::record_shift(max, c.target, won, cause);
        max = window.load(std::memory_order_acquire);
        sweep.reset();
        continue;
      }
    }
  }
}

}  // namespace r2d::core
