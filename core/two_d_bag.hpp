// TwoDBag: the 2D window framework instantiated for an unordered bag
// (pool) — the ROADMAP's "deque minus end ordering", and the natural
// scheduling core for the open-loop service harness (harness/service/).
//
// A bag promises multiset semantics only: every put is eventually taken
// exactly once, takes never fail while items exist, and *no* rank-error
// bound is claimed — there is no order to be out of. What the window buys
// instead is balance: a width-array of packed-head Treiber columns under
// one window over per-column flow counts (for a single-ended column the
// flow coordinate puts − takes IS the occupancy, so the packed head count
// from core/substack.hpp is the flow word — the stacks' one-load
// dereference-free probes carry over unchanged). A put is eligible on a
// column whose count is below the window, a take on a column inside the
// band (count > max − depth), so neither side can herd onto one column
// while siblings sit idle or drained — the property a scheduler run-queue
// actually needs from relaxation.
//
// Dropping the order claim unlocks one certification rule the stack
// cannot use: a take whose certified failed sweep found only columns far
// below the band *snaps* the window down to just above the fullest
// column (hi + depth − 1) in one shift, instead of stepping by `shift`
// per certified sweep. The stack must meter window travel — Theorem 1
// prices rank error per shift — but the bag has no such bound to
// preserve, so a take after a deep drain pays one certification scan, not
// (max − hi)/shift of them. Puts keep the paper's monotonic +shift rule
// (that is what spreads them). Emptiness is certified exactly as the
// stack's: count == 0 <=> empty survives the packed-count saturation
// protocol, so a take that certifies every column at zero returns
// nullopt. All of it drives core/window.hpp — one more predicate pair on
// the shared engine, the family argument's third data point.
//
// put/take are also aliased as push/pop so the bag satisfies the
// harness::RelaxedStack concept and drops into every existing runner and
// into harness/service/ unchanged. Reclamation and node storage follow
// the library-wide policy pipeline (DESIGN.md §10).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/op_status.hpp"
#include "core/params.hpp"
#include "core/substack.hpp"
#include "core/window.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/slot_registry.hpp"  // next_instance_id

namespace r2d {

template <typename T, typename Reclaimer = reclaim::EpochReclaimer,
          template <typename> class Alloc = reclaim::HeapAlloc>
class TwoDBag {
  using Node = core::StackNode<T>;
  using Column = core::StackColumn<T>;

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;
  using allocator_type = Alloc<Node>;

  explicit TwoDBag(core::TwoDParams params)
      : params_(validated(std::move(params))),
        columns_(std::make_unique<Column[]>(params_.width)) {
    window_max_.store(params_.depth, std::memory_order_relaxed);
  }

  TwoDBag(const TwoDBag&) = delete;
  TwoDBag& operator=(const TwoDBag&) = delete;

  ~TwoDBag() {
    for (std::size_t i = 0; i < params_.width; ++i) {
      core::drain_column(columns_[i], alloc_);
    }
  }

  const core::TwoDParams& params() const { return params_; }

  /// Strong exception guarantee (DESIGN.md §15): same contract as the
  /// stack's push — the node is acquired before any shared state is
  /// touched, and a resource failure after the acquire releases the
  /// still-unlinked node before rethrowing.
  void put(T value) {
    Node* node = alloc_.acquire(nullptr, std::move(value));
    try {
      // Fast path: one probe of the thread's preferred column — identical
      // to the stack's push fast path (same coordinate, same predicate).
      const std::uint64_t max = window_max_.load(std::memory_order_acquire);
      const std::size_t index = preferred_index();
      Column& column = columns_[index];
      std::uint64_t word = column.head.load(std::memory_order_acquire);
      if (core::head_count(word) < max) [[likely]] {
        node->next = core::head_node<T>(word);
        if (column.head.compare_exchange_strong(
                word,
                core::pack_head(node, core::packed_count_after_push(word)),
                std::memory_order_release, std::memory_order_relaxed))
            [[likely]] {
          obs::count<obs::Counter::kFastHits>();
          return;
        }
        put_slow(node, max, index, core::Probe::kContended);
        return;
      }
      put_slow(node, max, index, core::Probe::kIneligible);
    } catch (...) {
      alloc_.release(node);  // never linked: direct release is safe
      throw;
    }
  }

  /// Non-throwing put: resource failure comes back as a status instead of
  /// an exception, same strong guarantee.
  core::OpStatus try_put(T value) {
    try {
      put(std::move(value));
      return core::OpStatus::kOk;
    } catch (const std::bad_alloc&) {
      return core::OpStatus::kNoMemory;
    } catch (const reclaim::SlotsExhausted&) {
      return core::OpStatus::kNoSlots;
    }
  }

  std::optional<T> take() {
    const std::uint64_t max = window_max_.load(std::memory_order_acquire);
    // Invariant: window_max_ never drops below depth (init, +shift puts,
    // and the snap-down all keep it >= depth), so no underflow guard.
    const std::uint64_t low = max - params_.depth;
    const std::size_t index = preferred_index();
    const std::uint64_t word =
        columns_[index].head.load(std::memory_order_acquire);
    if (word != 0 && core::head_count(word) > low) [[likely]] {
      if (auto value = try_take_at(index, low)) [[likely]] {
        obs::count<obs::Counter::kFastHits>();
        return value;
      }
      return take_slow(max, index, core::Probe::kContended);
    }
    return take_slow(max, index, core::Probe::kIneligible);
  }

  // RelaxedStack surface: the bag behind the stack names, so every
  // harness runner and the service dispatcher drive it unmodified.
  void push(T value) { put(std::move(value)); }
  core::OpStatus try_push(T value) { return try_put(std::move(value)); }
  std::optional<T> pop() { return take(); }

  /// True when every column's head was empty at the moment it was read.
  bool empty() const {
    for (std::size_t i = 0; i < params_.width; ++i) {
      if (columns_[i].head.load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
    return true;
  }

  /// Racy sum of the column counts — a pure packed-word scan.
  std::uint64_t approx_size() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < params_.width; ++i) {
      total +=
          core::head_count(columns_[i].head.load(std::memory_order_acquire));
    }
    return total;
  }

  /// Debug/test accessor for the window word (racy read).
  std::uint64_t window() const {
    return window_max_.load(std::memory_order_acquire);
  }

  /// Highest per-thread slot index leased across the reclaimer and the
  /// allocator — the churn harness's bounded-lease gauge (DESIGN.md §13).
  /// Zero for slotless policies (Leaky/Heap).
  std::size_t slot_hwm() const {
    std::size_t hwm = 0;
    if constexpr (requires { reclaimer_.slot_hwm(); }) {
      hwm = reclaimer_.slot_hwm();
    }
    if constexpr (requires { alloc_.slot_hwm(); }) {
      const std::size_t a = alloc_.slot_hwm();
      if (a > hwm) hwm = a;
    }
    return hwm;
  }

 private:
  static core::TwoDParams validated(core::TwoDParams params) {
    params.validate();
    return params;
  }

  /// One guarded take CAS on `index` with band bottom `low` — the stack's
  /// try_pop_at, verbatim semantics: the only place the bag dereferences
  /// a shared node, hence the only place it pins the reclaimer.
  std::optional<T> try_take_at(std::size_t index, std::uint64_t low) {
    Column& column = columns_[index];
    auto guard = reclaimer_.pin();
    std::uint64_t word = guard.protect_word(column.head, core::head_node<T>);
    Node* head = core::head_node<T>(word);
    if (head == nullptr || core::head_count(word) <= low) return std::nullopt;
    Node* next = head->next;
    if (column.head.compare_exchange_strong(
            word,
            core::pack_head(next, core::packed_count_after_pop(word, next)),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      T value = std::move(head->value);
      guard.retire(head, alloc_);
      return value;
    }
    return std::nullopt;
  }

  __attribute__((noinline, cold)) void put_slow(Node* node, std::uint64_t max,
                                                std::size_t start,
                                                core::Probe seed) {
    core::drive_window_sweep(
        params_, window_max_, start, max, seed,
        /*attempt=*/
        [&](std::size_t i, std::uint64_t m) {
          Column& column = columns_[i];
          std::uint64_t word = column.head.load(std::memory_order_acquire);
          if (core::head_count(word) >= m) return core::Probe::kIneligible;
          node->next = core::head_node<T>(word);
          if (column.head.compare_exchange_strong(
                  word,
                  core::pack_head(node, core::packed_count_after_push(word)),
                  std::memory_order_release, std::memory_order_relaxed)) {
            preferred_index() = i;
            return core::Probe::kSuccess;
          }
          return core::Probe::kContended;
        },
        /*eligible=*/
        [&](std::size_t i, std::uint64_t m) {
          return core::head_count(
                     columns_[i].head.load(std::memory_order_acquire)) < m;
        },
        /*certified=*/
        [&](std::uint64_t m) {
          return core::Certified::shift_to(m + params_.shift);
        },
        obs::ShiftCause::kBagPut);
  }

  __attribute__((noinline, cold)) std::optional<T> take_slow(
      std::uint64_t max, std::size_t start, core::Probe seed) {
    std::optional<T> out;
    core::drive_window_sweep(
        params_, window_max_, start, max, seed,
        /*attempt=*/
        [&](std::size_t i, std::uint64_t m) {
          const std::uint64_t low = m - params_.depth;  // max >= depth
          const std::uint64_t word =
              columns_[i].head.load(std::memory_order_acquire);
          if (word == 0 || core::head_count(word) <= low) {
            return core::Probe::kIneligible;
          }
          if ((out = try_take_at(i, low))) {
            preferred_index() = i;
            return core::Probe::kSuccess;
          }
          return core::Probe::kContended;
        },
        /*eligible=*/
        [&](std::size_t i, std::uint64_t m) {
          return core::head_count(
                     columns_[i].head.load(std::memory_order_acquire)) >
                 m - params_.depth;
        },
        /*certified=*/
        [&](std::uint64_t m) { return certify_take(m); },
        obs::ShiftCause::kBagTake);
    return out;
  }

  /// Take-side certification, the bag's one departure from the stack:
  /// one packed-word scan deciding between "missed an in-band column"
  /// (go there), "all empty" (report empty — count == 0 <=> empty, §8
  /// saturation protocol), and "non-empty columns all below the band",
  /// where the window SNAPS down to hi + depth − 1 — just above the
  /// fullest column, so the very next sweep finds it eligible. Monotone
  /// and floored by construction: hi <= m − depth gives a target <= m − 1,
  /// and hi >= 1 gives a target >= depth. The stack cannot do this (its
  /// Theorem-1 bound meters rank error per window shift); the bag has no
  /// order to protect, so a take after a deep drain pays one scan instead
  /// of (m − hi)/shift certified sweeps.
  core::Certified certify_take(std::uint64_t max) {
    std::uint64_t hi = 0;
    for (std::size_t i = 0; i < params_.width; ++i) {
      const std::uint64_t count = core::head_count(
          columns_[i].head.load(std::memory_order_acquire));
      if (count > max - params_.depth) return core::Certified::restart_at(i);
      hi = std::max(hi, count);
    }
    if (hi == 0) return core::Certified::stop();
    return core::Certified::shift_to(hi + params_.depth - 1);
  }

  /// Per-(thread, instance) preferred column, keyed like the stack's
  /// (core::InstanceLocal).
  std::size_t& preferred_index() {
    thread_local core::InstanceLocal<std::size_t> preferred;
    std::size_t& index = preferred.get(id_);
    if (index >= params_.width) [[unlikely]] index = 0;
    return index;
  }

  alignas(64) core::TwoDParams params_;
  std::unique_ptr<Column[]> columns_;
  std::atomic<std::uint64_t> window_max_{0};
  const std::uint64_t id_ = reclaim::detail::next_instance_id();
  // Destruction-order contract (DESIGN.md §10): the reclaimer's destructor
  // drains deferred retires into alloc_, so alloc_ must be declared first.
  [[no_unique_address]] Alloc<Node> alloc_;
  Reclaimer reclaimer_;
};

}  // namespace r2d
