// Double-width (16-byte) compare-and-swap: the primitive the lock-free
// deque column backend (core/deque_column_dwcas.hpp) builds its two-word
// {front, back} head on.
//
// Capability: the compiler advertises an inline-expandable 16-byte __sync
// CAS via __GCC_HAVE_SYNC_COMPARE_AND_SWAP_16 — on x86-64 that is
// cmpxchg16b (requires -mcx16, which the root CMakeLists adds after a
// compile check), on AArch64 the LSE casp pair when __ARM_FEATURE_ATOMICS
// is available or the ldxp/stxp LL-SC pair otherwise. Using the builtin
// directly (rather than std::atomic<16-byte struct>) keeps the operation
// inline with no libatomic call and no chance of a hidden global lock.
// Hosts where the builtin is unavailable compile with R2D_HAS_DWCAS == 0
// and the dwcas column backend degrades to the locked one (documented
// fallback; benches and tests report which arm actually ran).
//
// Loads deliberately stay two plain std::atomic<uint64_t> acquire loads: a
// 16-byte atomic *load* would itself need the CAS instruction (an RMW on
// possibly-read-only cache lines). Torn pairs are tolerated rather than
// retried — see dwcas_snapshot below for why every consumer is safe with
// that (and how per-word tags upgrade "re-read equal" to "constant in
// between" when a caller does need simultaneity).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#if defined(__GCC_HAVE_SYNC_COMPARE_AND_SWAP_16)
#define R2D_HAS_DWCAS 1
#else
#define R2D_HAS_DWCAS 0
#endif

// TSan models the synchronization of a 16-byte atomic at the pair's base
// address only, so an 8-byte acquire load of the *second* word never
// observes the release edge of a 16-byte CAS — pointers unpacked from that
// word look unsynchronized and every dereference reports a false race
// (the hardware orders the loads fine: the CAS is a full barrier). TSan
// builds therefore snapshot through the same 16-byte primitive (a zero
// compare-exchange, i.e. an RMW load at the base address) so the edge
// lands where TSan looks.
#if defined(__SANITIZE_THREAD__)
#define R2D_DWCAS_TSAN_SNAPSHOT 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define R2D_DWCAS_TSAN_SNAPSHOT 1
#endif
#endif
#ifndef R2D_DWCAS_TSAN_SNAPSHOT
#define R2D_DWCAS_TSAN_SNAPSHOT 0
#endif

namespace r2d::core {

/// True when this build has a real 16-byte CAS (see header comment).
inline constexpr bool kHasDwcas = R2D_HAS_DWCAS != 0;

/// A 16-byte value: two adjacent words, compared and swapped as one unit.
struct WordPair {
  std::uint64_t w0 = 0;
  std::uint64_t w1 = 0;

  friend bool operator==(const WordPair&, const WordPair&) = default;
};

/// Two adjacent atomic words occupying one naturally-aligned 16-byte unit,
/// so the pair is addressable both as individual atomics (probe loads) and
/// as one DWCAS target.
struct alignas(16) DwcasWords {
  std::atomic<std::uint64_t> w0{0};
  std::atomic<std::uint64_t> w1{0};
};

static_assert(sizeof(DwcasWords) == 16 && sizeof(WordPair) == 16);

/// Two acquire loads, deliberately *not* validated as simultaneous (that
/// third load would cost on every probe): callers either feed the pair
/// straight into the 16-byte CAS — a torn pair simply fails the compare —
/// or re-load and compare for equality. Pair equality across two raw
/// re-reads does imply the words co-held their values: each word's tag
/// makes "read equal twice" mean "constant in between", and the two
/// constant intervals overlap (w0's spans its first to second read, w1's
/// likewise, and the program order of the four loads nests them).
inline WordPair dwcas_snapshot(const DwcasWords& target) {
#if R2D_HAS_DWCAS && R2D_DWCAS_TSAN_SNAPSHOT
  // See the TSan note above: a zero compare-exchange is an atomic 16-byte
  // load whose acquire edge TSan records at the address it checks.
  const unsigned __int128 cur = __sync_val_compare_and_swap(
      reinterpret_cast<unsigned __int128*>(const_cast<DwcasWords*>(&target)),
      0, 0);
  WordPair w;
  std::memcpy(&w, &cur, sizeof(w));
  return w;
#else
  return WordPair{target.w0.load(std::memory_order_acquire),
                  target.w1.load(std::memory_order_acquire)};
#endif
}

#if R2D_HAS_DWCAS
/// One 16-byte CAS. __sync builtins are full barriers, so a successful
/// swap publishes with (at least) release semantics and a failed one
/// still orders like an acquire load.
inline bool dwcas(DwcasWords& target, const WordPair& expected,
                  const WordPair& desired) {
  unsigned __int128 e, d;
  std::memcpy(&e, &expected, sizeof(e));
  std::memcpy(&d, &desired, sizeof(d));
  return __sync_bool_compare_and_swap(
      reinterpret_cast<unsigned __int128*>(&target), e, d);
}
#endif

}  // namespace r2d::core
