// TwoDParams: the (width, depth, shift) shape of a 2D window structure.
//
// The paper's Theorem 1 bounds the rank error of a 2D stack by
//
//     k = (2*shift + depth) * (width - 1)
//
// so one relaxation budget k can be spent horizontally (more sub-stacks)
// or vertically (deeper windows). for_k() implements the mapping DESIGN.md
// §4 documents: grow width first (throughput-optimal) until the empirical
// ceiling width = 4P, then grow depth with shift = depth/2.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/substack.hpp"  // kPackedCountMax: the column-count ceiling

namespace r2d::core {

/// Deepest window a shape may request: every count inside a full window
/// must be exactly representable below the packed head word's saturation
/// ceiling (see core/substack.hpp).
inline constexpr std::uint64_t kMaxWindowDepth = kPackedCountMax - 1;

/// How a thread moves between sub-stacks after an ineligible probe or a
/// failed CAS inside the current window.
enum class HopMode : std::uint8_t {
  kHybrid,         ///< paper: random hops first, then a round-robin sweep
  kRandomOnly,     ///< random hops only; sweep certification is a re-scan
  kRoundRobinOnly  ///< consecutive sub-stacks only
};

inline const char* to_string(HopMode m) {
  switch (m) {
    case HopMode::kHybrid: return "hybrid";
    case HopMode::kRandomOnly: return "random-only";
    case HopMode::kRoundRobinOnly: return "round-robin-only";
  }
  return "?";
}

struct TwoDParams {
  std::size_t width = 1;     ///< number of sub-stacks (columns)
  std::uint64_t depth = 1;   ///< window height (rows)
  std::uint64_t shift = 1;   ///< window jump on a failed sweep, 1..depth
  HopMode hop_mode = HopMode::kHybrid;

  /// The width ceiling the paper found throughput-optimal: 4 sub-stacks
  /// per thread.
  static std::size_t max_width_for(unsigned threads) {
    return std::size_t{4} * std::max(1u, threads);
  }

  /// Rank-error bound of this shape (Theorem 1). Zero iff width == 1
  /// (strict LIFO).
  std::uint64_t k_bound() const {
    if (width <= 1) return 0;
    return (2 * shift + depth) * (static_cast<std::uint64_t>(width) - 1);
  }

  /// Map a requested relaxation bound k onto a shape whose k_bound() never
  /// exceeds k (monotonic k-relaxation): horizontal growth first, with the
  /// minimal window (depth = shift = 1, so k_bound = 3*(width-1)), then
  /// vertical growth at width = 4P with shift = depth/2.
  static TwoDParams for_k(std::uint64_t k, unsigned threads) {
    TwoDParams p;
    if (k == 0) return p;  // width 1: strict
    const std::size_t max_width = max_width_for(threads);
    const std::size_t horizontal_width =
        static_cast<std::size_t>(k / 3 + 1);
    if (horizontal_width <= max_width) {
      p.width = horizontal_width;
      p.depth = 1;
      p.shift = 1;
      return p;
    }
    p.width = max_width;
    const std::uint64_t span = static_cast<std::uint64_t>(max_width) - 1;
    // With shift = depth/2 (floored), k_bound <= 2*depth*span <= k. The
    // depth is clamped to the packed-count ceiling, so an outsized k maps
    // to the deepest valid window rather than an invalid shape.
    p.depth = std::min(kMaxWindowDepth,
                       std::max<std::uint64_t>(1, k / (2 * span)));
    p.shift = std::max<std::uint64_t>(1, p.depth / 2);
    return p;
  }

  /// Throws std::invalid_argument when the shape violates the paper's
  /// constraints (width >= 1, depth >= 1, 1 <= shift <= depth) or the
  /// packed-head ceiling (depth <= kMaxWindowDepth, so no window can hold
  /// more items than the 16-bit packed column count can represent).
  void validate() const {
    if (width < 1) throw std::invalid_argument("TwoDParams: width must be >= 1");
    if (depth < 1) throw std::invalid_argument("TwoDParams: depth must be >= 1");
    if (depth > kMaxWindowDepth) {
      throw std::invalid_argument(
          "TwoDParams: depth must be <= " + std::to_string(kMaxWindowDepth) +
          " (the packed column-count ceiling), got depth=" +
          std::to_string(depth));
    }
    if (shift < 1 || shift > depth) {
      throw std::invalid_argument(
          "TwoDParams: shift must be in [1, depth], got shift=" +
          std::to_string(shift) + " depth=" + std::to_string(depth));
    }
  }
};

}  // namespace r2d::core
