// Count-carrying Treiber sub-stacks: the columns every distributed stack
// in this repo is built from.
//
// Each node records the column's item count at the time it was pushed, so
// the count of a column is a single dependent load off its head pointer and
// is always exactly consistent with the head (the pair changes atomically
// with the head CAS). The 2D window rules and the c2 load-balancing choice
// both read these counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

namespace r2d::core {

template <typename T>
struct StackNode {
  StackNode* next;
  std::uint64_t count;  ///< items in the column including this node
  T value;
};

template <typename T>
struct alignas(64) StackColumn {
  std::atomic<StackNode<T>*> head{nullptr};
};

template <typename T>
inline std::uint64_t column_count(const StackNode<T>* head) {
  return head == nullptr ? 0 : head->count;
}

/// Single-threaded teardown helper for container destructors.
template <typename T>
inline void drain_column(StackColumn<T>& column) {
  StackNode<T>* node = column.head.load(std::memory_order_relaxed);
  column.head.store(nullptr, std::memory_order_relaxed);
  while (node != nullptr) {
    StackNode<T>* next = node->next;
    delete node;
    node = next;
  }
}

/// Thread-local PRNG for hop decisions (xorshift64*; cheap, no libc state).
inline std::uint64_t hop_rand() {
  thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      reinterpret_cast<std::uint64_t>(&state);
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dull;
}

}  // namespace r2d::core
