// Packed-head Treiber sub-stacks: the columns every distributed stack in
// this repo is built from.
//
// A column's head is one 64-bit word packing the 48-bit node pointer with
// a 16-bit saturating item count (the same canonical-address assumption
// reclaim::Pool static_asserts). Pointer and count change together in one
// CAS, so eligibility checks (count < max, count > low) read a single
// atomic word with *no dereference* — pushes and window probes need no SMR
// guard at all; only a pop, which must read head->next, pins its
// reclaimer. See DESIGN.md §8 for the layout and saturation protocol.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>

#include "sched/dst.hpp"

namespace r2d::core {

static_assert(sizeof(void*) == 8,
              "packed column heads put a 16-bit count above 48-bit pointers");

/// Low bits of the head word holding the node pointer (x86-64 / AArch64
/// canonical user addresses fit in 48 bits).
inline constexpr unsigned kPackedPtrBits = 48;
inline constexpr std::uint64_t kPackedPtrMask =
    (std::uint64_t{1} << kPackedPtrBits) - 1;

/// Saturation ceiling of the packed per-column count. A stored count of
/// kPackedCountMax means "at least this many" and is sticky until the
/// column drains empty (see packed_count_after_pop), preserving the
/// count == 0 <=> empty invariant the pop certification relies on.
inline constexpr std::uint64_t kPackedCountMax =
    (std::uint64_t{1} << (64 - kPackedPtrBits)) - 1;

template <typename T>
struct StackNode {
  StackNode* next;
  T value;
};

/// Head word -> node pointer. 0 packs to nullptr, so an empty column is
/// word == 0.
template <typename T>
inline StackNode<T>* head_node(std::uint64_t word) {
  return reinterpret_cast<StackNode<T>*>(word & kPackedPtrMask);
}

/// Head word -> column count.
inline std::uint64_t head_count(std::uint64_t word) {
  return word >> kPackedPtrBits;
}

/// (node pointer, count) -> head word. The canonical-address assumption is
/// asserted in debug builds: an allocator handing out addresses above 2^48
/// (e.g. arm64 52-bit VA) would be silently truncated otherwise.
template <typename T>
inline std::uint64_t pack_head(StackNode<T>* node, std::uint64_t count) {
  assert((reinterpret_cast<std::uint64_t>(node) & ~kPackedPtrMask) == 0 &&
         "node pointer exceeds the 48-bit packed-head range");
  return (reinterpret_cast<std::uint64_t>(node) & kPackedPtrMask) |
         (count << kPackedPtrBits);
}

/// Count to store when pushing on top of head word `word`: exact below the
/// ceiling, saturating at it.
inline std::uint64_t packed_count_after_push(std::uint64_t word) {
  const std::uint64_t count = head_count(word);
  return count >= kPackedCountMax ? kPackedCountMax : count + 1;
}

/// Count to store when popping head word `word`, whose successor is
/// `next`. Below the ceiling counts are exact and decrement; a saturated
/// count stays saturated (the true occupancy beyond it is unknown) until
/// the column empties, which resets it to zero.
template <typename T>
inline std::uint64_t packed_count_after_pop(std::uint64_t word,
                                            const StackNode<T>* next) {
  if (next == nullptr) return 0;
  const std::uint64_t count = head_count(word);
  return count >= kPackedCountMax ? kPackedCountMax : count - 1;
}

template <typename T>
struct alignas(64) StackColumn {
  /// Packed head word (see pack_head); 0 = empty column.
  std::atomic<std::uint64_t> head{0};
};

/// Single-threaded teardown helper for container destructors: every node
/// goes back to the allocator policy that produced it.
template <typename T, typename Alloc>
inline void drain_column(StackColumn<T>& column, Alloc& alloc) {
  StackNode<T>* node =
      head_node<T>(column.head.load(std::memory_order_relaxed));
  column.head.store(0, std::memory_order_relaxed);
  while (node != nullptr) {
    StackNode<T>* next = node->next;
    alloc.release(node);
    node = next;
  }
}

/// Thread-local (instance id -> value) map for per-thread container state
/// such as the preferred column index. Keyed by a process-unique instance
/// id the way reclaim::detail::SlotCache keys reclaimer slots: a bare
/// thread_local would be shared by every instance of the same
/// instantiation, letting two containers pollute each other's state (and a
/// destroyed container's entry alias a new one). Small ring with LRU-ish
/// eviction; the returned reference stays valid until this thread's next
/// lookup for a different instance.
template <typename V, unsigned kWays = 8>
class InstanceLocal {
 public:
  V& get(std::uint64_t instance_id) {
    // Last-hit fast path: repeat access to the same instance — the per-op
    // common case — is one compare, no scan.
    if (last_ != nullptr && last_->id == instance_id) return last_->value;
    return lookup(instance_id);
  }

 private:
  struct Entry {
    std::uint64_t id = 0;
    V value{};
  };

  V& lookup(std::uint64_t instance_id) {
    for (Entry& e : entries_) {
      if (e.id == instance_id) {
        last_ = &e;
        return e.value;
      }
    }
    Entry& e = entries_[next_];
    next_ = (next_ + 1) % kWays;
    e = Entry{instance_id, V{}};
    last_ = &e;
    return e.value;
  }

  Entry entries_[kWays];
  Entry* last_ = nullptr;
  unsigned next_ = 0;
};

/// Thread-local PRNG for hop decisions (xorshift64*; cheap, no libc state).
inline std::uint64_t hop_rand() {
  // Address entropy (ASLR) decorrelates threads for free in production;
  // under a seeded DST run the scheduler substitutes a deterministic
  // per-ordinal seed so hop sequences replay (sched/dst.hpp). The init
  // runs at each fresh thread's first call, i.e. while attached.
  thread_local std::uint64_t state = sched::hop_seed(
      0x9e3779b97f4a7c15ull ^
      reinterpret_cast<std::uint64_t>(&state));
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dull;
}

}  // namespace r2d::core
