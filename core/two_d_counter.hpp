// TwoDCounter: the 2D window framework instantiated for a shared counter —
// the ROADMAP's "a 2D instance is a predicate pair, not another 300-line
// copy" claim, demonstrated on the smallest possible container: no nodes,
// no reclaimer, no allocator, just width cache-line-isolated delta words
// under one window.
//
// Like a LongAdder, the counter spreads inc/dec CASes across `width`
// striped cells so no single word is the contention point. Unlike a
// LongAdder, the window bounds how far the stripes may drift apart: an inc
// is eligible only on a cell whose delta is below the window, a dec only on
// a cell inside the band (delta > max − depth), and the window moves — via
// the engine's certified-failed-sweep rule — only after a sweep proves
// every cell ineligible. At any window value m, therefore, committed cell
// deltas live in [m − depth − shift, m + shift] (one in-flight shift of
// slack on each side), so any subset of cells estimates the total with
// per-cell error ≤ depth + 2·shift — the counter's analogue of the paper's
// Theorem 1, with "rank error" become "read error". A dec on a cell at the
// band bottom certifies and shifts the window down rather than pushing the
// cell further below its siblings, which is what lets the bound survive
// dec-heavy phases (a plain striped counter can strand all the weight in
// one cell; this one cannot).
//
// Decrements below zero are legal — it is a counter, not a semaphore; the
// cells carry a 2^63 bias so the window coordinate stays unsigned while
// read() reports the signed net. read() sums the cells one relaxed load
// each: exact at quiescence, and under concurrency off by at most the
// in-flight ops plus the drift bound above.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/params.hpp"
#include "core/window.hpp"
#include "reclaim/slot_registry.hpp"  // next_instance_id

namespace r2d {

class TwoDCounter {
  /// Cell bias: deltas are stored as bias + net so the window arithmetic
  /// stays in unsigned space even when the counter goes negative.
  static constexpr std::uint64_t kBias = std::uint64_t{1} << 63;

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> delta{kBias};
  };

 public:
  explicit TwoDCounter(core::TwoDParams params)
      : params_(validated(std::move(params))),
        cells_(std::make_unique<Cell[]>(params_.width)) {
    window_max_.store(kBias + params_.depth, std::memory_order_relaxed);
  }

  TwoDCounter(const TwoDCounter&) = delete;
  TwoDCounter& operator=(const TwoDCounter&) = delete;

  const core::TwoDParams& params() const { return params_; }

  void inc() {
    const std::uint64_t max = window_max_.load(std::memory_order_acquire);
    const std::size_t index = preferred_index();
    if (try_step_at(index, /*lo=*/0, max) == core::Probe::kSuccess)
        [[likely]] {
      obs::count<obs::Counter::kFastHits>();
      return;
    }
    step_slow</*kInc=*/true>(max, index);
  }

  void dec() {
    const std::uint64_t max = window_max_.load(std::memory_order_acquire);
    const std::size_t index = preferred_index();
    if (try_step_at(index, max - params_.depth, max - params_.depth) ==
        core::Probe::kSuccess) [[likely]] {
      obs::count<obs::Counter::kFastHits>();
      return;
    }
    step_slow</*kInc=*/false>(max, index);
  }

  /// Signed net value: one relaxed load per cell. Exact when no operation
  /// is in flight; otherwise off by at most the in-flight ops plus the
  /// windowed drift bound in the header comment.
  std::int64_t read() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < params_.width; ++i) {
      total += cells_[i].delta.load(std::memory_order_relaxed);
    }
    // Each cell contributes bias + net_i; subtract width biases (mod 2^64
    // wraparound is exactly two's-complement signed arithmetic).
    return static_cast<std::int64_t>(total - params_.width * kBias);
  }

  /// Signed per-cell delta, for tests asserting the drift bound.
  std::int64_t cell(std::size_t index) const {
    return static_cast<std::int64_t>(
        cells_[index].delta.load(std::memory_order_relaxed) - kBias);
  }

  /// Debug/test accessor: window top in signed (unbiased) coordinates.
  std::int64_t window() const {
    return static_cast<std::int64_t>(
        window_max_.load(std::memory_order_acquire) - kBias);
  }

 private:
  static core::TwoDParams validated(core::TwoDParams params) {
    params.validate();
    return params;
  }

  /// One CAS step on cell `index`: eligible while lo < delta+1 <= hi... —
  /// concretely, an inc (lo == 0) requires delta < hi, a dec (lo == hi ==
  /// max − depth) requires delta > lo. Passing both bounds through one
  /// helper keeps the two predicates textually adjacent.
  core::Probe try_step_at(std::size_t index, std::uint64_t lo,
                          std::uint64_t hi) {
    const bool is_inc = lo == 0;
    std::uint64_t d = cells_[index].delta.load(std::memory_order_acquire);
    if (is_inc ? d >= hi : d <= lo) return core::Probe::kIneligible;
    const std::uint64_t next = is_inc ? d + 1 : d - 1;
    if (cells_[index].delta.compare_exchange_strong(
            d, next, std::memory_order_acq_rel, std::memory_order_relaxed)) {
      return core::Probe::kSuccess;
    }
    return core::Probe::kContended;
  }

  template <bool kInc>
  __attribute__((noinline, cold)) void step_slow(std::uint64_t max,
                                                 std::size_t start) {
    core::drive_window_sweep(
        params_, window_max_, start, max, core::Probe::kIneligible,
        /*attempt=*/
        [&](std::size_t i, std::uint64_t m) {
          const core::Probe probe =
              kInc ? try_step_at(i, 0, m)
                   : try_step_at(i, m - params_.depth, m - params_.depth);
          if (probe == core::Probe::kSuccess) preferred_index() = i;
          return probe;
        },
        /*eligible=*/
        [&](std::size_t i, std::uint64_t m) {
          const std::uint64_t d =
              cells_[i].delta.load(std::memory_order_acquire);
          return kInc ? d < m : d > m - params_.depth;
        },
        /*certified=*/
        [&](std::uint64_t m) {
          // Monotone per direction, like the stack: a certified inc sweep
          // (every cell at the window top) raises the window by shift; a
          // certified dec sweep (every cell at or below the band bottom)
          // lowers it. Neither stops: a counter's inc/dec are total.
          return core::Certified::shift_to(kInc ? m + params_.shift
                                                : m - params_.shift);
        },
        kInc ? obs::ShiftCause::kCounterInc : obs::ShiftCause::kCounterDec);
  }

  /// Per-(thread, instance) preferred cell, keyed like the containers'.
  std::size_t& preferred_index() {
    thread_local core::InstanceLocal<std::size_t> preferred;
    std::size_t& index = preferred.get(id_);
    if (index >= params_.width) [[unlikely]] index = 0;
    return index;
  }

  alignas(64) core::TwoDParams params_;
  std::unique_ptr<Cell[]> cells_;
  std::atomic<std::uint64_t> window_max_{0};
  const std::uint64_t id_ = reclaim::detail::next_instance_id();
};

}  // namespace r2d
