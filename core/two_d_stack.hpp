// TwoDStack: the paper's 2D-stack — a width-array of Treiber sub-stacks
// under a global k-relaxation window.
//
// The window is one shared word, window_max_. A push is eligible on a
// column whose count is below window_max_; a pop is eligible on a column
// whose count is above window_max_ - depth. Threads hop between columns
// (HopMode) and only move the window after certifying a full failed sweep
// — the monotonic window-shift rule: push shifts the window up by
// `shift`, pop shifts it down, never past depth. Theorem 1 then bounds the
// rank error by k = (2*shift + depth) * (width - 1) (see core/params.hpp).
// The probe/hop/certify/shift loop itself is the shared engine in
// core/window.hpp; this file only supplies the stack's two eligibility
// predicates and CAS attempts.
//
// Column heads pack the node pointer with the column count in one word
// (core/substack.hpp), so every eligibility check is a single atomic load
// with no dereference: pushes and window probes run entirely outside the
// reclaimer, and only a pop that found an eligible column pins it to read
// head->next.
//
// Memory reclamation is a template policy (see reclaim/leaky.hpp for the
// contract); the default is epoch-based. Node storage is a second policy
// (reclaim/alloc.hpp): HeapAlloc by default, PoolAlloc for slab-recycled,
// magazine-cached blocks — retired nodes flow back to the owning allocator
// through the reclaimer (DESIGN.md §10).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/op_status.hpp"
#include "core/params.hpp"
#include "core/substack.hpp"
#include "core/window.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/slot_registry.hpp"

namespace r2d {

template <typename T, typename Reclaimer = reclaim::EpochReclaimer,
          template <typename> class Alloc = reclaim::HeapAlloc>
class TwoDStack {
  using Node = core::StackNode<T>;
  using Column = core::StackColumn<T>;

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;
  using allocator_type = Alloc<Node>;

  explicit TwoDStack(core::TwoDParams params)
      : params_(validated(std::move(params))),
        columns_(std::make_unique<Column[]>(params_.width)) {
    window_max_.store(params_.depth, std::memory_order_relaxed);
  }

  TwoDStack(const TwoDStack&) = delete;
  TwoDStack& operator=(const TwoDStack&) = delete;

  ~TwoDStack() {
    for (std::size_t i = 0; i < params_.width; ++i) {
      core::drain_column(columns_[i], alloc_);
    }
  }

  const core::TwoDParams& params() const { return params_; }

  /// Strong exception guarantee (DESIGN.md §15): the node is allocated
  /// before any shared state is touched, so bad_alloc/SlotsExhausted out
  /// of the acquire leaves the stack exactly as it was; a resource
  /// failure after the acquire (pushes never pin, but the preferred-index
  /// TLS map can allocate on a thread's first touch) releases the still-
  /// unlinked node before rethrowing. Once the head CAS lands, nothing
  /// after it can throw.
  void push(T value) {
    Node* node = alloc_.acquire(nullptr, std::move(value));
    try {
      // Fast path: one probe of the thread's last successful column under
      // the current window — one window read, one packed-head read, one
      // CAS; no sweep state, no divisions, no reclaimer.
      const std::uint64_t max = window_max_.load(std::memory_order_acquire);
      const std::size_t index = preferred_index();
      Column& column = columns_[index];
      std::uint64_t word = column.head.load(std::memory_order_acquire);
      if (core::head_count(word) < max) [[likely]] {
        node->next = core::head_node<T>(word);
        if (column.head.compare_exchange_strong(
                word,
                core::pack_head(node, core::packed_count_after_push(word)),
                std::memory_order_release, std::memory_order_relaxed))
            [[likely]] {
          obs::count<obs::Counter::kFastHits>();
          return;
        }
        push_slow(node, max, index, core::Probe::kContended);
        return;
      }
      push_slow(node, max, index, core::Probe::kIneligible);
    } catch (...) {
      alloc_.release(node);  // never linked: direct release is safe
      throw;
    }
  }

  /// Non-throwing push: resource failure comes back as a status instead
  /// of an exception, same strong guarantee (the value is consumed either
  /// way; on failure no element was inserted).
  core::OpStatus try_push(T value) {
    try {
      push(std::move(value));
      return core::OpStatus::kOk;
    } catch (const std::bad_alloc&) {
      return core::OpStatus::kNoMemory;
    } catch (const reclaim::SlotsExhausted&) {
      return core::OpStatus::kNoSlots;
    }
  }

  std::optional<T> pop() {
    const std::uint64_t max = window_max_.load(std::memory_order_acquire);
    // Invariant: window_max_ never drops below depth (init and down-shift
    // both clamp), so the band bottom needs no underflow guard.
    const std::uint64_t low = max - params_.depth;
    const std::size_t index = preferred_index();
    const std::uint64_t word =
        columns_[index].head.load(std::memory_order_acquire);
    if (word != 0 && core::head_count(word) > low) [[likely]] {
      if (auto value = try_pop_at(index, low)) [[likely]] {
        obs::count<obs::Counter::kFastHits>();
        return value;
      }
      return pop_slow(max, index, core::Probe::kContended);
    }
    return pop_slow(max, index, core::Probe::kIneligible);
  }

  /// True when every column's head was empty at the moment it was read.
  bool empty() const {
    for (std::size_t i = 0; i < params_.width; ++i) {
      if (columns_[i].head.load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
    return true;
  }

  /// Racy sum of the column counts — a pure packed-word scan.
  std::uint64_t approx_size() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < params_.width; ++i) {
      total += core::head_count(columns_[i].head.load(std::memory_order_acquire));
    }
    return total;
  }

  /// Highest per-thread slot index leased across the reclaimer and the
  /// allocator — the churn harness's bounded-lease gauge (DESIGN.md §13).
  /// Zero for slotless policies (Leaky/Heap).
  std::size_t slot_hwm() const {
    std::size_t hwm = 0;
    if constexpr (requires { reclaimer_.slot_hwm(); }) {
      hwm = reclaimer_.slot_hwm();
    }
    if constexpr (requires { alloc_.slot_hwm(); }) {
      const std::size_t a = alloc_.slot_hwm();
      if (a > hwm) hwm = a;
    }
    return hwm;
  }

 private:
  /// Validate before any allocation so a bad shape cannot leak columns_.
  static core::TwoDParams validated(core::TwoDParams params) {
    params.validate();
    return params;
  }

  /// Pin, re-read under protection, and attempt one pop CAS on `index`
  /// with band bottom `low`. Returns the value on success; nullopt when
  /// the column changed under us (contended or no longer eligible) — the
  /// caller re-sweeps. This is the only place an operation dereferences a
  /// shared node, hence the only place that pins the reclaimer. Inlined
  /// into pop()'s fast path (an out-of-line optional<T> return costs ~10%
  /// of the round-trip on this host).
  __attribute__((always_inline)) inline std::optional<T> try_pop_at(
      std::size_t index, std::uint64_t low) {
    Column& column = columns_[index];
    auto guard = reclaimer_.pin();
    std::uint64_t word = guard.protect_word(column.head, core::head_node<T>);
    Node* head = core::head_node<T>(word);
    if (head == nullptr || core::head_count(word) <= low) return std::nullopt;
    Node* next = head->next;
    if (column.head.compare_exchange_strong(
            word,
            core::pack_head(next, core::packed_count_after_pop(word, next)),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      T value = std::move(head->value);
      guard.retire(head, alloc_);
      return value;
    }
    return std::nullopt;
  }

  __attribute__((noinline, cold)) void push_slow(Node* node,
                                                 std::uint64_t max,
                                                 std::size_t start,
                                                 core::Probe seed) {
    core::drive_window_sweep(
        params_, window_max_, start, max, seed,
        /*attempt=*/
        [&](std::size_t i, std::uint64_t m) {
          Column& column = columns_[i];
          std::uint64_t word = column.head.load(std::memory_order_acquire);
          if (core::head_count(word) >= m) return core::Probe::kIneligible;
          node->next = core::head_node<T>(word);
          if (column.head.compare_exchange_strong(
                  word,
                  core::pack_head(node, core::packed_count_after_push(word)),
                  std::memory_order_release, std::memory_order_relaxed)) {
            preferred_index() = i;
            return core::Probe::kSuccess;
          }
          return core::Probe::kContended;
        },
        /*eligible=*/
        [&](std::size_t i, std::uint64_t m) {
          // A pure packed-word scan — no guard.
          return core::head_count(
                     columns_[i].head.load(std::memory_order_acquire)) < m;
        },
        /*certified=*/
        [&](std::uint64_t m) { return core::Certified::shift_to(m + params_.shift); },
        obs::ShiftCause::kStackPush);
  }

  __attribute__((noinline, cold)) std::optional<T> pop_slow(
      std::uint64_t max, std::size_t start, core::Probe seed) {
    std::optional<T> out;
    core::drive_window_sweep(
        params_, window_max_, start, max, seed,
        /*attempt=*/
        [&](std::size_t i, std::uint64_t m) {
          const std::uint64_t low = m - params_.depth;  // max >= depth
          const std::uint64_t word =
              columns_[i].head.load(std::memory_order_acquire);
          if (word == 0 || core::head_count(word) <= low) {
            return core::Probe::kIneligible;
          }
          if ((out = try_pop_at(i, low))) {
            preferred_index() = i;
            return core::Probe::kSuccess;
          }
          return core::Probe::kContended;
        },
        /*eligible=*/
        [&](std::size_t i, std::uint64_t m) {
          // count > low implies count >= 1, and count == 0 <=> empty
          // survives saturation, so the band check alone suffices.
          return core::head_count(
                     columns_[i].head.load(std::memory_order_acquire)) >
                 m - params_.depth;
        },
        /*certified=*/
        [&](std::uint64_t m) {
          if (m == params_.depth) {
            // Window is already at the bottom and every column certified
            // as at-or-below it, i.e. empty (count == 0 <=> empty column,
            // which the saturation protocol preserves).
            return core::Certified::stop();
          }
          return core::Certified::shift_to(
              std::max(params_.depth, m - params_.shift));
        },
        obs::ShiftCause::kStackPop);
    return out;
  }

  /// Per-(thread, instance) preferred column, keyed by this instance's
  /// process-unique id (core::InstanceLocal) so two stacks of the same
  /// instantiation never pollute each other's fast path. Always returns a
  /// value below width.
  std::size_t& preferred_index() {
    thread_local core::InstanceLocal<std::size_t> preferred;
    std::size_t& index = preferred.get(id_);
    if (index >= params_.width) [[unlikely]] index = 0;
    return index;
  }

  // Layout: everything the fast path reads — the shape, the column array
  // base, the window, and the instance id — lives on one cacheline.
  // Window shifts write that line, but a shift is amortized over at least
  // a full sweep of failed probes, and every reader needs the new window
  // value anyway.
  alignas(64) core::TwoDParams params_;
  std::unique_ptr<Column[]> columns_;
  std::atomic<std::uint64_t> window_max_{0};
  const std::uint64_t id_ = reclaim::detail::next_instance_id();
  // Destruction-order contract (DESIGN.md §10): the reclaimer's destructor
  // drains deferred retires into alloc_, so alloc_ must be declared first.
  [[no_unique_address]] Alloc<Node> alloc_;
  Reclaimer reclaimer_;
};

}  // namespace r2d
