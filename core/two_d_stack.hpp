// TwoDStack: the paper's 2D-stack — a width-array of Treiber sub-stacks
// under a global k-relaxation window.
//
// The window is one shared word, window_max_. A push is eligible on a
// column whose count is below window_max_; a pop is eligible on a column
// whose count is above window_max_ - depth. Threads hop between columns
// (HopMode) and only move the window after certifying a full failed sweep
// — the monotonic window-shift rule: push shifts the window up by
// `shift`, pop shifts it down, never past depth. Theorem 1 then bounds the
// rank error by k = (2*shift + depth) * (width - 1) (see core/params.hpp).
//
// Column heads pack the node pointer with the column count in one word
// (core/substack.hpp), so every eligibility check is a single atomic load
// with no dereference: pushes and window probes run entirely outside the
// reclaimer, and only a pop that found an eligible column pins it to read
// head->next.
//
// Memory reclamation is a template policy (see reclaim/leaky.hpp for the
// contract); the default is epoch-based.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/params.hpp"
#include "core/substack.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/slot_registry.hpp"

namespace r2d {

template <typename T, typename Reclaimer = reclaim::EpochReclaimer>
class TwoDStack {
  using Node = core::StackNode<T>;
  using Column = core::StackColumn<T>;

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;

  explicit TwoDStack(core::TwoDParams params)
      : params_(validated(std::move(params))),
        columns_(std::make_unique<Column[]>(params_.width)) {
    window_max_.store(params_.depth, std::memory_order_relaxed);
  }

  TwoDStack(const TwoDStack&) = delete;
  TwoDStack& operator=(const TwoDStack&) = delete;

  ~TwoDStack() {
    for (std::size_t i = 0; i < params_.width; ++i) {
      core::drain_column(columns_[i]);
    }
  }

  const core::TwoDParams& params() const { return params_; }

  void push(T value) {
    Node* node = new Node{nullptr, std::move(value)};
    // Fast path: one probe of the thread's last successful column under
    // the current window — one window read, one packed-head read, one CAS;
    // no sweep state, no divisions, no reclaimer.
    const std::uint64_t max = window_max_.load(std::memory_order_acquire);
    const std::size_t index = preferred_index();
    Column& column = columns_[index];
    std::uint64_t word = column.head.load(std::memory_order_acquire);
    if (core::head_count(word) < max) [[likely]] {
      node->next = core::head_node<T>(word);
      if (column.head.compare_exchange_strong(
              word, core::pack_head(node, core::packed_count_after_push(word)),
              std::memory_order_release, std::memory_order_relaxed))
          [[likely]] {
        return;
      }
      push_slow(node, max, index, /*contended=*/true);
      return;
    }
    push_slow(node, max, index, /*contended=*/false);
  }

  std::optional<T> pop() {
    const std::uint64_t max = window_max_.load(std::memory_order_acquire);
    // Invariant: window_max_ never drops below depth (init and down-shift
    // both clamp), so the band bottom needs no underflow guard.
    const std::uint64_t low = max - params_.depth;
    const std::size_t index = preferred_index();
    const std::uint64_t word =
        columns_[index].head.load(std::memory_order_acquire);
    if (word != 0 && core::head_count(word) > low) [[likely]] {
      if (auto value = try_pop_at(index, low)) [[likely]] return value;
      return pop_slow(max, index, /*contended=*/true);
    }
    return pop_slow(max, index, /*contended=*/false);
  }

  /// True when every column's head was empty at the moment it was read.
  bool empty() const {
    for (std::size_t i = 0; i < params_.width; ++i) {
      if (columns_[i].head.load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
    return true;
  }

  /// Racy sum of the column counts — a pure packed-word scan.
  std::uint64_t approx_size() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < params_.width; ++i) {
      total += core::head_count(columns_[i].head.load(std::memory_order_acquire));
    }
    return total;
  }

 private:
  /// Validate before any allocation so a bad shape cannot leak columns_.
  static core::TwoDParams validated(core::TwoDParams params) {
    params.validate();
    return params;
  }

  /// Pin, re-read under protection, and attempt one pop CAS on `index`
  /// with band bottom `low`. Returns the value on success; nullopt when
  /// the column changed under us (contended or no longer eligible) — the
  /// caller re-sweeps. This is the only place an operation dereferences a
  /// shared node, hence the only place that pins the reclaimer. Inlined
  /// into pop()'s fast path (an out-of-line optional<T> return costs ~10%
  /// of the round-trip on this host).
  __attribute__((always_inline)) inline std::optional<T> try_pop_at(
      std::size_t index, std::uint64_t low) {
    Column& column = columns_[index];
    auto guard = reclaimer_.pin();
    std::uint64_t word = guard.protect_word(column.head, core::head_node<T>);
    Node* head = core::head_node<T>(word);
    if (head == nullptr || core::head_count(word) <= low) return std::nullopt;
    Node* next = head->next;
    if (column.head.compare_exchange_strong(
            word,
            core::pack_head(next, core::packed_count_after_pop(word, next)),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      T value = std::move(head->value);
      guard.retire(head);
      return value;
    }
    return std::nullopt;
  }

  __attribute__((noinline, cold)) void push_slow(Node* node,
                                                 std::uint64_t max,
                                                 std::size_t start,
                                                 bool contended) {
    Sweep sweep(params_, start);
    if (contended) {
      sweep.on_cas_fail();
    } else {
      sweep.on_ineligible();
    }
    while (true) {
      refresh_window(max, sweep);
      Column& column = columns_[sweep.index];
      std::uint64_t word = column.head.load(std::memory_order_acquire);
      if (core::head_count(word) < max) {
        node->next = core::head_node<T>(word);
        if (column.head.compare_exchange_strong(
                word,
                core::pack_head(node, core::packed_count_after_push(word)),
                std::memory_order_release, std::memory_order_relaxed)) {
          preferred_index() = sweep.index;
          return;
        }
        sweep.on_cas_fail();
        continue;
      }
      sweep.on_ineligible();
      if (needs_certification(sweep) &&
          certify_failed_sweep(sweep,
                               [max](std::uint64_t c) { return c < max; })) {
        shift_window(max, max + params_.shift);
        sweep.reset();
      }
    }
  }

  __attribute__((noinline, cold)) std::optional<T> pop_slow(
      std::uint64_t max, std::size_t start, bool contended) {
    Sweep sweep(params_, start);
    if (contended) {
      sweep.on_cas_fail();
    } else {
      sweep.on_ineligible();
    }
    while (true) {
      refresh_window(max, sweep);
      const std::uint64_t low = max - params_.depth;  // max >= depth invariant
      const std::uint64_t word =
          columns_[sweep.index].head.load(std::memory_order_acquire);
      if (word != 0 && core::head_count(word) > low) {
        if (auto value = try_pop_at(sweep.index, low)) {
          preferred_index() = sweep.index;
          return value;
        }
        sweep.on_cas_fail();
        continue;
      }
      sweep.on_ineligible();
      if (needs_certification(sweep) &&
          certify_failed_sweep(sweep, [low](std::uint64_t c) {
            return c > low;
          })) {
        if (low == 0) {
          // Window is already at the bottom and every column certified as
          // at-or-below it, i.e. empty (count == 0 <=> empty column, which
          // the saturation protocol preserves).
          return std::nullopt;
        }
        shift_window(max, std::max(params_.depth, max - params_.shift));
        sweep.reset();
      }
    }
  }

  /// Per-(thread, hop-mode) sweep state. Hybrid does params.width random
  /// hops, then a round-robin streak that certifies; random-only never
  /// certifies by streak and instead triggers a read-only verify scan;
  /// round-robin certifies once the streak covers every column.
  struct Sweep {
    const core::TwoDParams& p;
    std::size_t index;
    unsigned random_probes = 0;
    unsigned streak = 0;
    bool round_robin;

    Sweep(const core::TwoDParams& params, std::size_t start)
        : p(params),
          index(start % params.width),
          round_robin(params.hop_mode == core::HopMode::kRoundRobinOnly) {}

    void reset() {
      random_probes = 0;
      streak = 0;
      round_robin = p.hop_mode == core::HopMode::kRoundRobinOnly;
    }

    void on_ineligible() {
      if (round_robin) {
        ++streak;
        index = (index + 1) % p.width;
        return;
      }
      ++random_probes;
      index = static_cast<std::size_t>(core::hop_rand()) % p.width;
      if (p.hop_mode == core::HopMode::kHybrid && random_probes >= p.width) {
        round_robin = true;
        streak = 0;
      }
    }

    void on_cas_fail() {
      // Contention: hop away (randomly, unless round-robin-only) and start
      // the certification over — the observed column was eligible.
      streak = 0;
      random_probes = 0;
      if (p.hop_mode == core::HopMode::kRoundRobinOnly) {
        index = (index + 1) % p.width;
      } else {
        round_robin = false;
        index = static_cast<std::size_t>(core::hop_rand()) % p.width;
      }
    }
  };

  static bool needs_certification(const Sweep& sweep) {
    if (sweep.p.hop_mode == core::HopMode::kRandomOnly) {
      return sweep.random_probes >= sweep.p.width;
    }
    return sweep.round_robin && sweep.streak >= sweep.p.width;
  }

  /// Certify that no column is eligible. Streak-based modes already proved
  /// it; random-only pays a full read-only scan here (it cannot certify
  /// from random probes). A pure packed-word scan — no guard. Returns
  /// false after repositioning the sweep when the scan finds an eligible
  /// column.
  template <typename Eligible>
  bool certify_failed_sweep(Sweep& sweep, Eligible eligible) {
    if (sweep.p.hop_mode != core::HopMode::kRandomOnly) return true;
    for (std::size_t i = 0; i < params_.width; ++i) {
      const std::uint64_t count =
          core::head_count(columns_[i].head.load(std::memory_order_acquire));
      if (eligible(count)) {
        sweep.index = i;
        sweep.random_probes = 0;
        return false;
      }
    }
    return true;
  }

  void refresh_window(std::uint64_t& max, Sweep& sweep) {
    const std::uint64_t cur = window_max_.load(std::memory_order_acquire);
    if (cur != max) {
      max = cur;
      sweep.reset();
    }
  }

  void shift_window(std::uint64_t expected, std::uint64_t desired) {
    window_max_.compare_exchange_strong(expected, desired,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
  }

  /// Per-(thread, instance) preferred column, keyed by this instance's
  /// process-unique id (core::InstanceLocal) so two stacks of the same
  /// instantiation never pollute each other's fast path. Always returns a
  /// value below width.
  std::size_t& preferred_index() {
    thread_local core::InstanceLocal<std::size_t> preferred;
    std::size_t& index = preferred.get(id_);
    if (index >= params_.width) [[unlikely]] index = 0;
    return index;
  }

  // Layout: everything the fast path reads — the shape, the column array
  // base, the window, and the instance id — lives on one cacheline.
  // Window shifts write that line, but a shift is amortized over at least
  // a full sweep of failed probes, and every reader needs the new window
  // value anyway.
  alignas(64) core::TwoDParams params_;
  std::unique_ptr<Column[]> columns_;
  std::atomic<std::uint64_t> window_max_{0};
  const std::uint64_t id_ = reclaim::detail::next_instance_id();
  Reclaimer reclaimer_;
};

}  // namespace r2d
