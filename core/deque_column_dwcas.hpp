// The lock-free deque column backend: both ends of the column live in one
// 16-byte {front, back} head updated with a double-width CAS
// (core/dwcas.hpp), in the style of Michael's CAS-based deque (Euro-Par
// 2003) — the anchor carries the two end pointers plus a 2-bit status, and
// a push onto a non-empty column leaves the head in a "push pending" state
// until the displaced end's inward link is *bridged* to the new node.
//
// One deliberate departure from the paper: the status flip back to stable
// is lazy. Michael's pusher bridges and then pays a second anchor CAS just
// to clear the status; here the pusher only bridges, and the *next*
// operation on the column folds the reset into the head CAS it performs
// anyway (every successful operation rewrites w0, so carrying the fresh
// status is free). An operation that meets a pending head first ensures
// the bridge (cheap when the pusher already did it: one link load), so
// the links it traverses are always valid; at quiescence the last
// pusher's bridge always completed (nothing can have invalidated its head
// snapshot), so teardown sees a fully bridged chain even if the status
// word still says pending. Net effect: a push is one 16-byte CAS plus at
// most one one-word bridge CAS, not two 16-byte CASes.
//
// Word layout (48-bit canonical pointers, as core/substack.hpp asserts):
//
//   w0 (front): [ tag:14 ][ status:2 ][ front node ptr:48 ]
//   w1 (back):  [ tag:16 ]            [ back  node ptr:48 ]
//
// Every CAS rewrites w0 (pointer, status, or both) and bumps its tag, and
// bumps w1's tag whenever the back pointer changes, giving per-end ABA
// protection: a stale snapshot can never win the 16-byte compare. Tag
// wrap (2^14 front / 2^16 back writes inside one protected window) is the
// accepted residual, as with the pool's 16-bit splice tags.
//
// Ownership pipeline (DESIGN.md §10/§11): node lifetime is no longer
// governed by a lock, so the head snapshot is taken through the
// reclaimer's protect_pair (hazard publishes both end pointers and
// revalidates; epoch's announcement covers them), stabilization shields
// the one extra node it dereferences via protect_raw + head revalidation,
// and popped nodes go through retire(node, alloc) back to the owning
// allocator. Eligibility probes and certification scans still read only
// the adjacent packed flow word (core/deque_flow.hpp), published with one
// release fetch_add right after each successful head CAS — one load, no
// dereference, no guard, exactly as on the locked backend.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/deque_column_locked.hpp"
#include "core/deque_flow.hpp"
#include "core/dwcas.hpp"
#include "core/substack.hpp"  // kPackedPtrMask
#include "core/window.hpp"
#include "sched/hook.hpp"
#include "obs/metrics.hpp"

namespace r2d::core {

#if R2D_HAS_DWCAS

template <typename T>
class alignas(64) DwcasDequeColumn {
 public:
  struct Node {
    std::atomic<Node*> prev;  ///< toward the front
    std::atomic<Node*> next;  ///< toward the back
    T value;
  };

  static constexpr bool kLockFree = true;
  static constexpr const char* kBackendName = "dwcas";

  /// Packed biased flows (core/deque_flow.hpp), published with a release
  /// fetch_add immediately after each successful head CAS. Probes read
  /// only this word.
  std::atomic<std::uint64_t> flows{kFlowInit};

  /// One push attempt: dereference-free flow probe, protected head
  /// snapshot, one DWCAS, then the bridge of the displaced end's inward
  /// link (the lazy status reset is left to the column's next operation —
  /// see header). A lost CAS, or a pending head whose snapshot went stale
  /// while we ensured its bridge, reads as contention; the flow probe is
  /// re-checked on the pinned snapshot so the window predicate is as
  /// fresh as the locked backend's under-lock re-check.
  template <bool kFront, typename Reclaimer, typename NodeAlloc>
  Probe try_push(Node* node, std::uint64_t max, Reclaimer& reclaimer,
                 NodeAlloc& /*alloc*/) {
    if (end_flow<kFront>(flows.load(std::memory_order_acquire)) >= max) {
      return Probe::kIneligible;
    }
    auto guard = reclaimer.pin();
    const Anchor a = protect_anchor(guard);
    if (a.front == nullptr) {
      if (end_flow<kFront>(flows.load(std::memory_order_relaxed)) >= max) {
        return Probe::kIneligible;  // window moved while we pinned
      }
      node->prev.store(nullptr, std::memory_order_relaxed);
      node->next.store(nullptr, std::memory_order_relaxed);
      const WordPair desired{pack_front(node, kStable, front_tag(a) + 1),
                             pack_back(node, back_tag(a) + 1)};
      // Injected DWCAS loss (here and below): indistinguishable from a
      // racing writer bumping the tags — reports contention, nothing
      // mutated, and drives the helping/bridge machinery on retry.
      if (R2D_HOOK_POINT(kDwcasHead) || !dwcas(head_, a.words, desired)) {
        obs::count<obs::Counter::kDwcasRetries>();
        return Probe::kContended;
      }
      flows.fetch_add(flow_step<kFront>(), std::memory_order_release);
      return Probe::kSuccess;
    }
    if (a.status != kStable && !ensure_bridged(a, guard)) {
      return Probe::kContended;
    }
    if (end_flow<kFront>(flows.load(std::memory_order_relaxed)) >= max) {
      return Probe::kIneligible;
    }
    WordPair desired;
    if constexpr (kFront) {
      node->prev.store(nullptr, std::memory_order_relaxed);
      node->next.store(a.front, std::memory_order_relaxed);
      desired = WordPair{pack_front(node, kPushFront, front_tag(a) + 1),
                         a.words.w1};
    } else {
      node->next.store(nullptr, std::memory_order_relaxed);
      node->prev.store(a.back, std::memory_order_relaxed);
      desired = WordPair{pack_front(a.front, kPushBack, front_tag(a) + 1),
                         pack_back(node, back_tag(a) + 1)};
    }
    if (R2D_HOOK_POINT(kDwcasHead) || !dwcas(head_, a.words, desired)) {
      obs::count<obs::Counter::kDwcasRetries>();
      return Probe::kContended;
    }
    flows.fetch_add(flow_step<kFront>(), std::memory_order_release);
    // Bridge immediately, while the line is hot: the pusher already knows
    // the end it displaced (still shielded in slots 0/1 from
    // protect_anchor), so no deref or extra publish is needed.
    bridge<kFront>(unpack(desired), node, kFront ? a.front : a.back);
    return Probe::kSuccess;
  }

  /// One pop attempt from end kFront. A pending head has its bridge
  /// ensured first, so the neighbor link installed as the new end is
  /// always valid; the pop's own CAS resets the status to stable, and the
  /// popped node is retired through the reclaimer.
  template <bool kFront, typename Reclaimer, typename NodeAlloc>
  Probe try_pop(std::optional<T>& out, std::uint64_t max, std::uint64_t depth,
                Reclaimer& reclaimer, NodeAlloc& alloc) {
    {
      const std::uint64_t word = flows.load(std::memory_order_acquire);
      if (flow_occupancy(word) == 0 || end_flow<kFront>(word) <= max - depth) {
        return Probe::kIneligible;
      }
    }
    auto guard = reclaimer.pin();
    const Anchor a = protect_anchor(guard);
    if (a.front == nullptr) {
      // The flow word briefly trails the head CAS of in-flight operations;
      // the head itself is the truth.
      return Probe::kIneligible;
    }
    if (a.status != kStable && !ensure_bridged(a, guard)) {
      return Probe::kContended;
    }
    {
      const std::uint64_t word = flows.load(std::memory_order_relaxed);
      if (flow_occupancy(word) == 0 || end_flow<kFront>(word) <= max - depth) {
        return Probe::kIneligible;
      }
    }
    Node* const node = kFront ? a.front : a.back;
    WordPair desired;
    if (a.front == a.back) {
      desired = WordPair{pack_front(nullptr, kStable, front_tag(a) + 1),
                         pack_back(nullptr, back_tag(a) + 1)};
    } else if constexpr (kFront) {
      desired =
          WordPair{pack_front(node->next.load(std::memory_order_acquire),
                              kStable, front_tag(a) + 1),
                   a.words.w1};
    } else {
      desired =
          WordPair{pack_front(a.front, kStable, front_tag(a) + 1),
                   pack_back(node->prev.load(std::memory_order_acquire),
                             back_tag(a) + 1)};
    }
    if (R2D_HOOK_POINT(kDwcasHead) || !dwcas(head_, a.words, desired)) {
      obs::count<obs::Counter::kDwcasRetries>();
      return Probe::kContended;
    }
    flows.fetch_sub(flow_step<kFront>(), std::memory_order_release);
    out = std::move(node->value);
    guard.retire(node, alloc);
    return Probe::kSuccess;
  }

  /// Single-threaded teardown. The status word may still say pending (the
  /// reset is lazy), but the bridge itself always completed by quiescence:
  /// the last successful push's bridge ran with a head nothing could have
  /// invalidated, and every earlier pending push was bridged by the
  /// operation that followed it. So the next chain from the front is fully
  /// bridged up to the anchor's back node — and the walk must stop
  /// *there*, not at a null link: pops never scrub the stale outward links
  /// of the nodes they remove, so the back node's next may still point at
  /// a node long since retired.
  template <typename NodeAlloc>
  void drain(NodeAlloc& alloc) {
    Node* node = word_node(head_.w0.load(std::memory_order_relaxed));
    Node* const back = word_node(head_.w1.load(std::memory_order_relaxed));
    head_.w0.store(0, std::memory_order_relaxed);
    head_.w1.store(0, std::memory_order_relaxed);
    flows.store(kFlowInit, std::memory_order_relaxed);
    while (node != nullptr) {
      Node* next =
          node == back ? nullptr : node->next.load(std::memory_order_relaxed);
      alloc.release(node);
      node = next;
    }
  }

 private:
  static constexpr unsigned kStable = 0;
  static constexpr unsigned kPushFront = 1;
  static constexpr unsigned kPushBack = 2;

  /// A decoded, reclaimer-protected head snapshot.
  struct Anchor {
    WordPair words;
    Node* front;
    Node* back;
    unsigned status;
  };

  static Node* word_node(std::uint64_t w) {
    return reinterpret_cast<Node*>(w & kPackedPtrMask);
  }
  static std::uint64_t front_tag(const Anchor& a) { return a.words.w0 >> 50; }
  static std::uint64_t back_tag(const Anchor& a) { return a.words.w1 >> 48; }

  static std::uint64_t pack_front(Node* node, unsigned status,
                                  std::uint64_t tag) {
    assert((reinterpret_cast<std::uint64_t>(node) & ~kPackedPtrMask) == 0 &&
           "node pointer exceeds the 48-bit packed range");
    return ((tag & 0x3fff) << 50) | (static_cast<std::uint64_t>(status) << 48) |
           (reinterpret_cast<std::uint64_t>(node) & kPackedPtrMask);
  }
  static std::uint64_t pack_back(Node* node, std::uint64_t tag) {
    assert((reinterpret_cast<std::uint64_t>(node) & ~kPackedPtrMask) == 0 &&
           "node pointer exceeds the 48-bit packed range");
    return ((tag & 0xffff) << 48) |
           (reinterpret_cast<std::uint64_t>(node) & kPackedPtrMask);
  }

  static Anchor unpack(const WordPair& w) {
    return Anchor{w, word_node(w.w0), word_node(w.w1),
                  static_cast<unsigned>((w.w0 >> 48) & 3)};
  }

  /// Consistent snapshot with both end pointers shielded by the reclaimer
  /// policy (hazard: publish + revalidate in slots 0/1; epoch: one load).
  template <typename Guard>
  Anchor protect_anchor(Guard& guard) {
    const WordPair w = guard.protect_pair(
        [this] { return dwcas_snapshot(head_); },
        [](const WordPair& p) {
          return std::pair<void*, void*>(word_node(p.w0), word_node(p.w1));
        });
    return unpack(w);
  }

  bool anchor_unchanged(const Anchor& a) const {
    return dwcas_snapshot(head_) == a.words;
  }

  /// Ensure the pending push recorded in snapshot `a` is bridged before
  /// this operation proceeds (it will traverse or displace the links the
  /// bridge completes). Derives the freshly pushed end e and the old end o
  /// from the snapshot, shields o (the one node the snapshot's two
  /// protected pointers don't cover), revalidates, then bridges. Returns
  /// false when the head moved under us — the snapshot (and thus the
  /// caller's planned CAS) is stale, so the caller reports contention.
  /// The per-end tags make "head unchanged" mean "no successful CAS since
  /// the snapshot", so both nodes are still in the column when the
  /// revalidation passes.
  template <typename Guard>
  bool ensure_bridged(const Anchor& a, Guard& guard) {
    obs::count<obs::Counter::kHelpBridges>();
    if (a.status == kPushFront) return ensure_bridged_end<true>(a, guard);
    return ensure_bridged_end<false>(a, guard);
  }

  template <bool kFront, typename Guard>
  bool ensure_bridged_end(const Anchor& a, Guard& guard) {
    Node* const e = kFront ? a.front : a.back;
    Node* const o = kFront ? e->next.load(std::memory_order_acquire)
                           : e->prev.load(std::memory_order_acquire);
    guard.protect_raw(o, 2);
    if (!anchor_unchanged(a)) return false;
    return bridge<kFront>(a, e, o);
  }

  /// Bridge the old end o's inward link to the freshly pushed node e
  /// (both already shielded by the caller). Returns true once the bridge
  /// is known complete — by us, or by a helper of the same pending push
  /// (with the head validated unchanged, this push's helpers are the only
  /// writers of the link, and they all write e); false when the head
  /// moved before that could be established.
  ///
  /// Residual (DESIGN.md §11): `cur` can be a stale outward link to a
  /// node retired before this guard's pin, whose address the allocator
  /// may recycle during the head-unchanged-to-CAS window of a preempted
  /// bridger; a recycled match there would misdirect the link. The window
  /// is a few instructions wide and the match requires the allocator to
  /// re-issue one specific address into one specific adjacency — the same
  /// vanishing class as the head's tag wrap, and the reason the check
  /// sits immediately before the CAS.
  template <bool kFront>
  bool bridge(const Anchor& a, Node* e, Node* o) {
    std::atomic<Node*>& link = kFront ? o->prev : o->next;
    Node* cur = link.load(std::memory_order_acquire);
    if (cur == e) return true;
    if (!anchor_unchanged(a)) return false;
    link.compare_exchange_strong(cur, e, std::memory_order_acq_rel,
                                 std::memory_order_relaxed);
    return true;
  }

  DwcasWords head_;
};

#else  // !R2D_HAS_DWCAS

/// Documented fallback: hosts without a 16-byte CAS get the locked backend
/// under the dwcas name, so every instantiation still compiles; benches
/// and tests report which arm actually ran via kBackendName / kLockFree.
template <typename T>
using DwcasDequeColumn = LockedDequeColumn<T>;

#endif  // R2D_HAS_DWCAS

/// The library default: lock-free columns wherever the hardware allows,
/// the locked fallback elsewhere (R2D_DEQUE_COLS picks explicitly at the
/// bench/harness layer).
template <typename T>
using DefaultDequeColumn = DwcasDequeColumn<T>;

}  // namespace r2d::core
