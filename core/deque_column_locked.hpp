// The locked deque column backend: a doubly-linked list serialized by a
// one-word TTAS spinlock (MultiQueue-style: many columns, short critical
// sections, hops on contention), extracted verbatim from TwoDDeque (PR 3)
// when the column representation became a pluggable policy.
//
// Both biased 32-bit end-flows (core/deque_flow.hpp) are packed into one
// atomic word stored under the lock after every mutation — the column's
// linearization point — so window probes, certification scans, empty() and
// approx_size() read one atomic word with no dereference and no lock. A
// held lock reads as Probe::kContended (hop away, like a lost CAS); the
// window predicate is re-verified under the lock because the flow may have
// moved while we spun.
//
// Node lifetime *is* governed by the lock (no concurrent reader can hold a
// pointer into the list), so popped nodes could legally go straight back
// to the allocator — but they are routed through retire(node, alloc)
// anyway, so both column backends obey the same ownership pipeline and
// member-order contract (alloc before reclaimer, DESIGN.md §10) and the
// destruction-order tests cover the deque identically on either backend.
//
// This backend is also the documented fallback when the build has no
// 16-byte CAS (core/dwcas.hpp): R2D_HAS_DWCAS == 0 aliases the dwcas
// backend name onto this type.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/deque_flow.hpp"
#include "core/window.hpp"

namespace r2d::core {

template <typename T>
class alignas(64) LockedDequeColumn {
 public:
  struct Node {
    Node* prev;
    Node* next;
    T value;
  };

  static constexpr bool kLockFree = false;
  static constexpr const char* kBackendName = "locked";

  /// Packed biased flows: [front flow + bias : 32][back flow + bias : 32],
  /// stored under the lock after every mutation (the column's
  /// linearization point). Window probes and certification scans read
  /// only this word.
  std::atomic<std::uint64_t> flows{kFlowInit};

  /// One push attempt: dereference-free flow probe, then the exact
  /// re-check under the column lock.
  template <bool kFront, typename Reclaimer, typename NodeAlloc>
  Probe try_push(Node* node, std::uint64_t max, Reclaimer& /*reclaimer*/,
                 NodeAlloc& /*alloc*/) {
    if (end_flow<kFront>(flows.load(std::memory_order_acquire)) >= max) {
      return Probe::kIneligible;
    }
    if (!try_lock()) return Probe::kContended;
    const std::uint64_t word = flows.load(std::memory_order_relaxed);
    if (end_flow<kFront>(word) >= max) {
      unlock();
      return Probe::kIneligible;
    }
    if constexpr (kFront) {
      node->prev = nullptr;
      node->next = front_;
      if (front_ != nullptr) {
        front_->prev = node;
      } else {
        back_ = node;
      }
      front_ = node;
    } else {
      node->next = nullptr;
      node->prev = back_;
      if (back_ != nullptr) {
        back_->next = node;
      } else {
        front_ = node;
      }
      back_ = node;
    }
    flows.store(word + flow_step<kFront>(), std::memory_order_release);
    unlock();
    return Probe::kSuccess;
  }

  /// One pop attempt from end kFront under window `max` with band depth
  /// `depth`; on success the value is moved into `out` and the node goes
  /// through the reclaimer's retire path back to `alloc`.
  template <bool kFront, typename Reclaimer, typename NodeAlloc>
  Probe try_pop(std::optional<T>& out, std::uint64_t max, std::uint64_t depth,
                Reclaimer& reclaimer, NodeAlloc& alloc) {
    {
      const std::uint64_t word = flows.load(std::memory_order_acquire);
      if (flow_occupancy(word) == 0 || end_flow<kFront>(word) <= max - depth) {
        return Probe::kIneligible;
      }
    }
    if (!try_lock()) return Probe::kContended;
    const std::uint64_t word = flows.load(std::memory_order_relaxed);
    if (flow_occupancy(word) == 0 || end_flow<kFront>(word) <= max - depth) {
      unlock();
      return Probe::kIneligible;
    }
    Node* node;
    if constexpr (kFront) {
      node = front_;
      front_ = node->next;
      if (front_ != nullptr) {
        front_->prev = nullptr;
      } else {
        back_ = nullptr;
      }
    } else {
      node = back_;
      back_ = node->prev;
      if (back_ != nullptr) {
        back_->next = nullptr;
      } else {
        front_ = nullptr;
      }
    }
    flows.store(word - flow_step<kFront>(), std::memory_order_release);
    unlock();
    out = std::move(node->value);
    // The lock already guarantees no concurrent reader holds `node`, but
    // the block still flows retire -> reclaimer -> alloc like every other
    // container's (see header comment). The pop has already linearized
    // (value moved out), so a slot-claim failure in pin() must not lose
    // the node: the lock's exclusivity makes a direct release sound here
    // — the one backend where that fallback exists (DESIGN.md §15).
    try {
      reclaimer.pin().retire(node, alloc);
    } catch (...) {
      alloc.release(node);
    }
    return Probe::kSuccess;
  }

  /// Single-threaded teardown: every node back to the owning allocator.
  template <typename NodeAlloc>
  void drain(NodeAlloc& alloc) {
    Node* node = front_;
    front_ = nullptr;
    back_ = nullptr;
    flows.store(kFlowInit, std::memory_order_relaxed);
    while (node != nullptr) {
      Node* next = node->next;
      alloc.release(node);
      node = next;
    }
  }

 private:
  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }
  void unlock() { locked_.store(false, std::memory_order_release); }

  /// One-word TTAS spinlock over {front_, back_} and the list links.
  std::atomic<bool> locked_{false};
  Node* front_ = nullptr;
  Node* back_ = nullptr;
};

}  // namespace r2d::core
