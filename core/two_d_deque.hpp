// TwoDDeque: the 2D window framework instantiated for double-ended queues
// — the next structure on the paper's future-work list, and the first
// container built *on* the shared sweep engine rather than refactored onto
// it.
//
// A width-array of small sub-deques under one window *per end*. A column's
// occupancy says nothing about how out-of-order its front or back item is
// (a column cycling push_front/pop_back keeps its occupancy constant while
// its front segment drifts arbitrarily far behind the other columns'), so
// the windows range over per-column signed *end-flows* instead: the front
// flow f = front-pushes - front-pops and the back flow b likewise (see
// core/deque_flow.hpp for the packed word). That is the stack's height
// coordinate generalized per end — a front push is eligible on a column
// whose front flow is below the front window, a front pop on a non-empty
// column whose front flow is above front-window - depth, and symmetrically
// at the back. Each certified failed sweep shifts its end's window
// monotonically (push up / pop down) by `shift`; a pop whose certification
// scan saw every column empty returns nullopt. The stack's Theorem-1
// argument then applies to each end's flow coordinate, making
// (2*shift + depth) * (width - 1) the per-end rank-error design target;
// the harness's deque oracle mode (quality::Order::kDeque) measures the
// distance each end actually pays. All four operations drive
// core/window.hpp — two window words, four predicate pairs, one engine.
//
// The column representation is a policy (the `Column` template parameter;
// DESIGN.md §11): DwcasDequeColumn — the default where the hardware has a
// 16-byte CAS — keeps {front, back} in one two-word head updated by DWCAS
// with per-end ABA tags, so a preempted thread can never stall a column;
// LockedDequeColumn serializes each column with a one-word TTAS spinlock
// (and is the automatic fallback when R2D_HAS_DWCAS == 0). Both publish
// the same packed flow word, so eligibility probes, certification scans,
// empty() and approx_size() are one atomic load per column — no
// dereference, no lock, no guard — and both route node lifetime through
// the reclaimer/allocator pipeline (retire(node, alloc), DESIGN.md §10).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/deque_column_dwcas.hpp"
#include "core/deque_column_locked.hpp"
#include "core/deque_flow.hpp"
#include "core/op_status.hpp"
#include "core/params.hpp"
#include "core/substack.hpp"  // InstanceLocal
#include "core/window.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/slot_registry.hpp"  // next_instance_id

namespace r2d {

template <typename T, typename Reclaimer = reclaim::EpochReclaimer,
          template <typename> class Alloc = reclaim::HeapAlloc,
          template <typename> class Column = core::DefaultDequeColumn>
class TwoDDeque {
  using Col = Column<T>;
  using Node = typename Col::Node;

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;
  using allocator_type = Alloc<Node>;
  using column_type = Col;

  /// Which column backend this instantiation runs ("dwcas" | "locked") —
  /// on fallback hosts the dwcas name resolves to the locked backend and
  /// reports itself accordingly.
  static constexpr const char* backend_name() { return Col::kBackendName; }
  static constexpr bool lock_free_columns() { return Col::kLockFree; }

  explicit TwoDDeque(core::TwoDParams params)
      : params_(validated(std::move(params))),
        columns_(std::make_unique<Col[]>(params_.width)) {
    front_max_.store(core::kFlowBias + params_.depth,
                     std::memory_order_relaxed);
    back_max_.store(core::kFlowBias + params_.depth,
                    std::memory_order_relaxed);
  }

  TwoDDeque(const TwoDDeque&) = delete;
  TwoDDeque& operator=(const TwoDDeque&) = delete;

  ~TwoDDeque() {
    for (std::size_t i = 0; i < params_.width; ++i) {
      columns_[i].drain(alloc_);
    }
  }

  const core::TwoDParams& params() const { return params_; }

  void push_front(T value) { push<true>(std::move(value)); }
  void push_back(T value) { push<false>(std::move(value)); }
  core::OpStatus try_push_front(T value) {
    return try_push<true>(std::move(value));
  }
  core::OpStatus try_push_back(T value) {
    return try_push<false>(std::move(value));
  }
  std::optional<T> pop_front() { return pop<true>(); }
  std::optional<T> pop_back() { return pop<false>(); }

  /// True when every column's occupancy was zero at the moment its flow
  /// word was read — a pure atomic scan, no locks, either backend.
  bool empty() const {
    for (std::size_t i = 0; i < params_.width; ++i) {
      if (core::flow_occupancy(
              columns_[i].flows.load(std::memory_order_acquire)) != 0) {
        return false;
      }
    }
    return true;
  }

  /// Racy sum of the column occupancies.
  std::uint64_t approx_size() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < params_.width; ++i) {
      total += core::flow_occupancy(
          columns_[i].flows.load(std::memory_order_acquire));
    }
    return total;
  }

  /// Debug/test accessors: the two windows on the signed (unbiased) flow
  /// scale — racy reads.
  std::int64_t front_window() const {
    return static_cast<std::int64_t>(
        front_max_.load(std::memory_order_acquire) - core::kFlowBias);
  }
  std::int64_t back_window() const {
    return static_cast<std::int64_t>(
        back_max_.load(std::memory_order_acquire) - core::kFlowBias);
  }

 private:
  static core::TwoDParams validated(core::TwoDParams params) {
    params.validate();
    return params;
  }

  template <bool kFront>
  std::atomic<std::uint64_t>& window_word() {
    return kFront ? front_max_ : back_max_;
  }

  /// Strong exception guarantee (DESIGN.md §15): the node is acquired
  /// before any shared state is touched, and — unlike the stack — the
  /// column attempts pin the reclaimer per probe, so SlotsExhausted can
  /// surface mid-sweep; the catch below releases the still-unlinked node
  /// before rethrowing (a column attempt that fails leaves the column
  /// untouched and never keeps a reference to the node). Once a column
  /// CAS/splice lands, nothing after it can throw.
  template <bool kFront>
  void push(T value) {
    Node* node = alloc_.acquire(nullptr, nullptr, std::move(value));
    try {
      std::atomic<std::uint64_t>& window = window_word<kFront>();
      const std::uint64_t max = window.load(std::memory_order_acquire);
      const std::size_t start = preferred_index();
      // Fast path: one attempt on the thread's preferred column.
      const core::Probe first =
          columns_[start].template try_push<kFront>(node, max, reclaimer_,
                                                    alloc_);
      if (first == core::Probe::kSuccess) [[likely]] {
        obs::count<obs::Counter::kFastHits>();
        preferred_index() = start;
        return;
      }
      core::drive_window_sweep(
          params_, window, start, max, first,
          /*attempt=*/
          [&](std::size_t i, std::uint64_t m) {
            const core::Probe p =
                columns_[i].template try_push<kFront>(node, m, reclaimer_,
                                                      alloc_);
            if (p == core::Probe::kSuccess) preferred_index() = i;
            return p;
          },
          /*eligible=*/
          [&](std::size_t i, std::uint64_t m) {
            return core::end_flow<kFront>(columns_[i].flows.load(
                       std::memory_order_acquire)) < m;
          },
          /*certified=*/
          [&](std::uint64_t m) {
            return core::Certified::shift_to(m + params_.shift);
          },
          kFront ? obs::ShiftCause::kDequeFrontPush
                 : obs::ShiftCause::kDequeBackPush);
    } catch (...) {
      alloc_.release(node);  // never linked: direct release is safe
      throw;
    }
  }

  template <bool kFront>
  core::OpStatus try_push(T value) {
    try {
      push<kFront>(std::move(value));
      return core::OpStatus::kOk;
    } catch (const std::bad_alloc&) {
      return core::OpStatus::kNoMemory;
    } catch (const reclaim::SlotsExhausted&) {
      return core::OpStatus::kNoSlots;
    }
  }

  template <bool kFront>
  std::optional<T> pop() {
    std::atomic<std::uint64_t>& window = window_word<kFront>();
    const std::uint64_t max = window.load(std::memory_order_acquire);
    const std::size_t start = preferred_index();
    std::optional<T> out;
    const core::Probe first = columns_[start].template try_pop<kFront>(
        out, max, params_.depth, reclaimer_, alloc_);
    if (first == core::Probe::kSuccess) [[likely]] {
      obs::count<obs::Counter::kFastHits>();
      preferred_index() = start;
      return out;
    }
    core::drive_window_sweep(
        params_, window, start, max, first,
        /*attempt=*/
        [&](std::size_t i, std::uint64_t m) {
          const core::Probe p = columns_[i].template try_pop<kFront>(
              out, m, params_.depth, reclaimer_, alloc_);
          if (p == core::Probe::kSuccess) preferred_index() = i;
          return p;
        },
        /*eligible=*/
        [&](std::size_t i, std::uint64_t m) {
          const std::uint64_t word =
              columns_[i].flows.load(std::memory_order_acquire);
          return core::flow_occupancy(word) > 0 &&
                 core::end_flow<kFront>(word) > m - params_.depth;
        },
        /*certified=*/
        [&](std::uint64_t m) { return certify_pop<kFront>(m); },
        kFront ? obs::ShiftCause::kDequeFrontPop
               : obs::ShiftCause::kDequeBackPop);
    return out;
  }

  /// Pop-side certification: one flow-word scan deciding between "missed
  /// an eligible column" (go there), "all empty" (report empty — unlike
  /// the stack, end-flows have no floor the window could bottom out at,
  /// so emptiness is certified by occupancy directly), and "non-empty
  /// columns all below the band" (shift this end's window down) — so
  /// empty columns can never pump the window while eligible work exists.
  template <bool kFront>
  core::Certified certify_pop(std::uint64_t max) {
    bool any_nonempty = false;
    for (std::size_t i = 0; i < params_.width; ++i) {
      const std::uint64_t word =
          columns_[i].flows.load(std::memory_order_acquire);
      if (core::flow_occupancy(word) == 0) continue;
      if (core::end_flow<kFront>(word) > max - params_.depth) {
        return core::Certified::restart_at(i);
      }
      any_nonempty = true;
    }
    if (!any_nonempty) return core::Certified::stop();
    return core::Certified::shift_to(max - params_.shift);
  }

  /// Per-(thread, instance) preferred column shared by all four operations
  /// (pop locality follows push), keyed like the stack's (see
  /// core::InstanceLocal).
  std::size_t& preferred_index() {
    thread_local core::InstanceLocal<std::size_t> preferred;
    std::size_t& index = preferred.get(id_);
    if (index >= params_.width) [[unlikely]] index = 0;
    return index;
  }

  alignas(64) core::TwoDParams params_;
  std::unique_ptr<Col[]> columns_;
  std::atomic<std::uint64_t> front_max_{0};
  std::atomic<std::uint64_t> back_max_{0};
  const std::uint64_t id_ = reclaim::detail::next_instance_id();
  // Destruction-order contract (DESIGN.md §10): the reclaimer's destructor
  // drains deferred retires into alloc_, so alloc_ must be declared first.
  [[no_unique_address]] Alloc<Node> alloc_;
  Reclaimer reclaimer_;
};

}  // namespace r2d
