// TwoDDeque: the 2D window framework instantiated for double-ended queues
// — the next structure on the paper's future-work list, and the first
// container built *on* the shared sweep engine rather than refactored onto
// it.
//
// A width-array of small doubly-linked sub-deques under one window *per
// end*. A column's occupancy says nothing about how out-of-order its front
// or back item is (a column cycling push_front/pop_back keeps its
// occupancy constant while its front segment drifts arbitrarily far behind
// the other columns'), so the windows range over per-column signed
// *end-flows* instead: the front flow f = front-pushes - front-pops and
// the back flow b = back-pushes - back-pops. That is the stack's height
// coordinate generalized per end — a front push is eligible on a column
// whose front flow is below the front window, a front pop on a non-empty
// column whose front flow is above front-window - depth, and symmetrically
// at the back. Each certified failed sweep shifts its end's window
// monotonically (push up / pop down) by `shift`; a pop whose certification
// scan saw every column empty returns nullopt. The stack's Theorem-1
// argument then applies to each end's flow coordinate, making
// (2*shift + depth) * (width - 1) the per-end rank-error design target;
// the harness's deque oracle mode (quality::Order::kDeque) measures the
// distance each end actually pays. All four operations drive
// core/window.hpp — two window words, four predicate pairs, one engine.
//
// Column representation: a sub-deque needs push/pop at both ends, which a
// packed-head Treiber column cannot give, and lock-free doubly-ended
// columns need DWCAS or steal/flip machinery orthogonal to this library's
// point — the *window* is where the scalability comes from. So each column
// is a doubly-linked list serialized by a one-word TTAS spinlock
// (MultiQueue-style: many columns, short critical sections, hops on
// contention), with both biased 32-bit flows packed into one adjacent
// atomic word stored under the lock after every mutation (the column's
// linearization point). That gives the engine the same property the
// stacks' packed heads give: eligibility probes, certification scans,
// empty() and approx_size() read one atomic word per column — no
// dereference, no lock, and (since node lifetime is governed by the lock)
// no reclaimer at all. The 31-bit signed flow range caps per-column
// lifetime end-flow drift at ~2.1e9 operations, plenty for any measured
// run; occupancy is the exact sum f + b, so count == 0 <=> empty needs no
// saturation protocol.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/params.hpp"
#include "core/substack.hpp"  // InstanceLocal
#include "core/window.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/slot_registry.hpp"  // next_instance_id

namespace r2d {

template <typename T, template <typename> class Alloc = reclaim::HeapAlloc>
class TwoDDeque {
  /// Center of the biased 32-bit flow representation: a stored flow word
  /// of kFlowBias means "net zero". Windows live on the same biased scale,
  /// so every eligibility comparison is plain unsigned arithmetic.
  static constexpr std::uint64_t kFlowBias = std::uint64_t{1} << 31;

  struct Node {
    Node* prev;
    Node* next;
    T value;
  };

  struct alignas(64) Column {
    /// One-word TTAS spinlock over {front, back} and the list links.
    std::atomic<bool> locked{false};
    /// Packed biased flows: [front flow + bias : 32][back flow + bias : 32],
    /// stored under the lock after every mutation (the column's
    /// linearization point). Window probes and certification scans read
    /// only this word.
    std::atomic<std::uint64_t> flows{(kFlowBias << 32) | kFlowBias};
    Node* front = nullptr;
    Node* back = nullptr;

    bool try_lock() {
      return !locked.load(std::memory_order_relaxed) &&
             !locked.exchange(true, std::memory_order_acquire);
    }
    void unlock() { locked.store(false, std::memory_order_release); }
  };

  static std::uint64_t front_flow(std::uint64_t word) { return word >> 32; }
  static std::uint64_t back_flow(std::uint64_t word) {
    return word & 0xffffffffu;
  }
  /// Exact occupancy: the biases cancel in f + b.
  static std::uint64_t occupancy(std::uint64_t word) {
    return front_flow(word) + back_flow(word) - 2 * kFlowBias;
  }

 public:
  using value_type = T;
  using allocator_type = Alloc<Node>;

  explicit TwoDDeque(core::TwoDParams params)
      : params_(validated(std::move(params))),
        columns_(std::make_unique<Column[]>(params_.width)) {
    front_max_.store(kFlowBias + params_.depth, std::memory_order_relaxed);
    back_max_.store(kFlowBias + params_.depth, std::memory_order_relaxed);
  }

  TwoDDeque(const TwoDDeque&) = delete;
  TwoDDeque& operator=(const TwoDDeque&) = delete;

  ~TwoDDeque() {
    for (std::size_t i = 0; i < params_.width; ++i) {
      Node* node = columns_[i].front;
      while (node != nullptr) {
        Node* next = node->next;
        alloc_.release(node);
        node = next;
      }
    }
  }

  const core::TwoDParams& params() const { return params_; }

  void push_front(T value) { push<true>(std::move(value)); }
  void push_back(T value) { push<false>(std::move(value)); }
  std::optional<T> pop_front() { return pop<true>(); }
  std::optional<T> pop_back() { return pop<false>(); }

  /// True when every column's occupancy was zero at the moment its flow
  /// word was read — a pure atomic scan, no locks.
  bool empty() const {
    for (std::size_t i = 0; i < params_.width; ++i) {
      if (occupancy(columns_[i].flows.load(std::memory_order_acquire)) != 0) {
        return false;
      }
    }
    return true;
  }

  /// Racy sum of the column occupancies.
  std::uint64_t approx_size() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < params_.width; ++i) {
      total += occupancy(columns_[i].flows.load(std::memory_order_acquire));
    }
    return total;
  }

  /// Debug/test accessors: the two windows on the signed (unbiased) flow
  /// scale — racy reads.
  std::int64_t front_window() const {
    return static_cast<std::int64_t>(front_max_.load(std::memory_order_acquire) -
                                     kFlowBias);
  }
  std::int64_t back_window() const {
    return static_cast<std::int64_t>(back_max_.load(std::memory_order_acquire) -
                                     kFlowBias);
  }

 private:
  static core::TwoDParams validated(core::TwoDParams params) {
    params.validate();
    return params;
  }

  /// The end-flow this end's window ranges over, on the biased scale.
  template <bool kFront>
  static std::uint64_t flow(std::uint64_t word) {
    return kFront ? front_flow(word) : back_flow(word);
  }

  template <bool kFront>
  std::atomic<std::uint64_t>& window_word() {
    return kFront ? front_max_ : back_max_;
  }

  template <bool kFront>
  void push(T value) {
    Node* node = alloc_.acquire(nullptr, nullptr, std::move(value));
    std::atomic<std::uint64_t>& window = window_word<kFront>();
    const std::uint64_t max = window.load(std::memory_order_acquire);
    const std::size_t start = preferred_index();
    // Fast path: one attempt on the thread's preferred column.
    const core::Probe first = try_push_at<kFront>(node, start, max);
    if (first == core::Probe::kSuccess) [[likely]] return;
    core::drive_window_sweep(
        params_, window, start, max, first,
        /*attempt=*/
        [&](std::size_t i, std::uint64_t m) {
          return try_push_at<kFront>(node, i, m);
        },
        /*eligible=*/
        [&](std::size_t i, std::uint64_t m) {
          return flow<kFront>(columns_[i].flows.load(
                     std::memory_order_acquire)) < m;
        },
        /*certified=*/
        [&](std::uint64_t m) {
          return core::Certified::shift_to(m + params_.shift);
        });
  }

  template <bool kFront>
  std::optional<T> pop() {
    std::atomic<std::uint64_t>& window = window_word<kFront>();
    const std::uint64_t max = window.load(std::memory_order_acquire);
    const std::size_t start = preferred_index();
    std::optional<T> out;
    const core::Probe first = try_pop_at<kFront>(out, start, max);
    if (first == core::Probe::kSuccess) [[likely]] return out;
    core::drive_window_sweep(
        params_, window, start, max, first,
        /*attempt=*/
        [&](std::size_t i, std::uint64_t m) {
          return try_pop_at<kFront>(out, i, m);
        },
        /*eligible=*/
        [&](std::size_t i, std::uint64_t m) {
          const std::uint64_t word =
              columns_[i].flows.load(std::memory_order_acquire);
          return occupancy(word) > 0 && flow<kFront>(word) > m - params_.depth;
        },
        /*certified=*/
        [&](std::uint64_t m) { return certify_pop<kFront>(m); });
    return out;
  }

  /// Pop-side certification: one flow-word scan deciding between "missed
  /// an eligible column" (go there), "all empty" (report empty — unlike
  /// the stack, end-flows have no floor the window could bottom out at,
  /// so emptiness is certified by occupancy directly), and "non-empty
  /// columns all below the band" (shift this end's window down) — so
  /// empty columns can never pump the window while eligible work exists.
  template <bool kFront>
  core::Certified certify_pop(std::uint64_t max) {
    bool any_nonempty = false;
    for (std::size_t i = 0; i < params_.width; ++i) {
      const std::uint64_t word =
          columns_[i].flows.load(std::memory_order_acquire);
      if (occupancy(word) == 0) continue;
      if (flow<kFront>(word) > max - params_.depth) {
        return core::Certified::restart_at(i);
      }
      any_nonempty = true;
    }
    if (!any_nonempty) return core::Certified::stop();
    return core::Certified::shift_to(max - params_.shift);
  }

  /// One push attempt: dereference-free flow probe, then the exact
  /// re-check under the column lock. A held lock reads as contention (hop
  /// away, like a lost CAS); the window predicate is re-verified under the
  /// lock because the flow may have moved while we spun.
  template <bool kFront>
  core::Probe try_push_at(Node* node, std::size_t i, std::uint64_t max) {
    Column& column = columns_[i];
    if (flow<kFront>(column.flows.load(std::memory_order_acquire)) >= max) {
      return core::Probe::kIneligible;
    }
    if (!column.try_lock()) return core::Probe::kContended;
    const std::uint64_t word = column.flows.load(std::memory_order_relaxed);
    if (flow<kFront>(word) >= max) {
      column.unlock();
      return core::Probe::kIneligible;
    }
    if constexpr (kFront) {
      node->next = column.front;
      if (column.front != nullptr) {
        column.front->prev = node;
      } else {
        column.back = node;
      }
      column.front = node;
    } else {
      node->prev = column.back;
      if (column.back != nullptr) {
        column.back->next = node;
      } else {
        column.front = node;
      }
      column.back = node;
    }
    column.flows.store(word + flow_delta<kFront>(+1),
                       std::memory_order_release);
    column.unlock();
    preferred_index() = i;
    return core::Probe::kSuccess;
  }

  template <bool kFront>
  core::Probe try_pop_at(std::optional<T>& out, std::size_t i,
                         std::uint64_t max) {
    Column& column = columns_[i];
    {
      const std::uint64_t word =
          column.flows.load(std::memory_order_acquire);
      if (occupancy(word) == 0 || flow<kFront>(word) <= max - params_.depth) {
        return core::Probe::kIneligible;
      }
    }
    if (!column.try_lock()) return core::Probe::kContended;
    const std::uint64_t word = column.flows.load(std::memory_order_relaxed);
    if (occupancy(word) == 0 || flow<kFront>(word) <= max - params_.depth) {
      column.unlock();
      return core::Probe::kIneligible;
    }
    Node* node;
    if constexpr (kFront) {
      node = column.front;
      column.front = node->next;
      if (column.front != nullptr) {
        column.front->prev = nullptr;
      } else {
        column.back = nullptr;
      }
    } else {
      node = column.back;
      column.back = node->prev;
      if (column.back != nullptr) {
        column.back->next = nullptr;
      } else {
        column.front = nullptr;
      }
    }
    column.flows.store(word - flow_delta<kFront>(+1),
                       std::memory_order_release);
    column.unlock();
    out = std::move(node->value);
    // Node lifetime is governed by the column lock, so the block goes
    // straight back to the allocator — no reclaimer in the loop.
    alloc_.release(node);
    preferred_index() = i;
    return core::Probe::kSuccess;
  }

  /// The packed-word increment that moves this end's flow by one.
  template <bool kFront>
  static constexpr std::uint64_t flow_delta(int) {
    return kFront ? (std::uint64_t{1} << 32) : std::uint64_t{1};
  }

  /// Per-(thread, instance) preferred column shared by all four operations
  /// (pop locality follows push), keyed like the stack's (see
  /// core::InstanceLocal).
  std::size_t& preferred_index() {
    thread_local core::InstanceLocal<std::size_t> preferred;
    std::size_t& index = preferred.get(id_);
    if (index >= params_.width) [[unlikely]] index = 0;
    return index;
  }

  alignas(64) core::TwoDParams params_;
  std::unique_ptr<Column[]> columns_;
  std::atomic<std::uint64_t> front_max_{0};
  std::atomic<std::uint64_t> back_max_{0};
  const std::uint64_t id_ = reclaim::detail::next_instance_id();
  [[no_unique_address]] Alloc<Node> alloc_;
};

}  // namespace r2d
