// TwoDQueue: the 2D window design applied to FIFO queues — the paper's
// future-work generalization the EXT bench measures.
//
// A width-array of Michael-Scott sub-queues. Each node carries its enqueue
// serial within its column, so the tail's index is the column's enqueue
// count and the dummy head's index is its dequeue count — both change
// atomically with the corresponding CAS, no side counters. Both windows
// only move up, by `shift`, after a certified failed sweep: enqueues are
// eligible on a column whose enqueue count is below put_max; dequeues on a
// non-empty column whose dequeue count is below get_max. The get window is
// additionally clamped by enqueue progress when it shifts, so the FIFO
// rank-error bound stays tight (see certify_dequeue). The
// probe/hop/certify/shift loop itself is the shared engine in
// core/window.hpp.
// With width = 1 every operation is always eligible and the structure is a
// plain strict MS queue.
//
// The node serials are cumulative, so unlike the stack they cannot live in
// a 16-bit packed head field. Instead each column publishes a monotone
// *lower bound* on its enqueue serial in a plain 64-bit word next to the
// head/tail pointers (enq_serial): enqueue eligibility probes and put-side
// certification scans read that word with no dereference — and therefore
// no reclaimer guard — exactly like the stacks' packed heads; only the
// operation CASes themselves still walk nodes under the guard. See
// DESIGN.md §8 for why a stale lower bound is sound.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/op_status.hpp"
#include "core/params.hpp"
#include "core/substack.hpp"  // InstanceLocal
#include "core/window.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/slot_registry.hpp"  // next_instance_id

namespace r2d {

template <typename T, typename Reclaimer = reclaim::EpochReclaimer,
          template <typename> class Alloc = reclaim::HeapAlloc>
class TwoDQueue {
  struct Node {
    std::atomic<Node*> next{nullptr};
    std::uint64_t index = 0;  ///< enqueue serial within the column; dummy = 0
    T value{};
  };

  struct alignas(64) Column {
    std::atomic<Node*> head{nullptr};  ///< dummy node; its index = #dequeued
    std::atomic<Node*> tail{nullptr};
    /// Published lower bound on this column's enqueue serial (tail->index).
    /// Written with plain release stores — concurrent writers may install
    /// values out of order, but every value ever stored *was* the serial of
    /// a reachable tail, so the word never exceeds the true serial. That
    /// one-sided guarantee is all eligibility and certification need: a
    /// stale low value only sends a probe to re-verify exactly (and
    /// refresh the word); a value >= max proves the column ineligible.
    std::atomic<std::uint64_t> enq_serial{0};
  };

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;
  using allocator_type = Alloc<Node>;

  explicit TwoDQueue(core::TwoDParams params)
      : params_(params),
        put_max_(params.depth),
        get_max_(params.depth),
        columns_(new Column[params.width]) {
    params_.validate();
    // Per-column dummies: if an acquire throws partway, release the ones
    // already installed — columns_ only frees the array, not the nodes.
    std::size_t created = 0;
    try {
      for (; created < params_.width; ++created) {
        Node* dummy = alloc_.acquire();
        columns_[created].head.store(dummy, std::memory_order_relaxed);
        columns_[created].tail.store(dummy, std::memory_order_relaxed);
      }
    } catch (...) {
      for (std::size_t i = 0; i < created; ++i) {
        alloc_.release(columns_[i].head.load(std::memory_order_relaxed));
      }
      throw;
    }
  }

  TwoDQueue(const TwoDQueue&) = delete;
  TwoDQueue& operator=(const TwoDQueue&) = delete;

  ~TwoDQueue() {
    for (std::size_t i = 0; i < params_.width; ++i) {
      Node* node = columns_[i].head.load(std::memory_order_relaxed);
      while (node != nullptr) {
        Node* next = node->next.load(std::memory_order_relaxed);
        alloc_.release(node);
        node = next;
      }
    }
  }

  const core::TwoDParams& params() const { return params_; }

  /// Strong exception guarantee (DESIGN.md §15). The guard pins *before*
  /// anything is acquired, so SlotsExhausted out of the slot claim
  /// propagates with nothing held, and any later throw unwinds through the
  /// guard's destructor — no pinned epoch or published hazard survives a
  /// failed enqueue. bad_alloc from the node acquire leaves the queue
  /// untouched; a resource failure after it (value move, preferred-index
  /// TLS map) releases the still-unlinked node before rethrowing. Once the
  /// link CAS lands, nothing after it can throw.
  void enqueue(T value) {
    auto guard = reclaimer_.pin();
    Node* node = alloc_.acquire();
    try {
      node->value = std::move(value);
      const std::uint64_t max = put_max_.load(std::memory_order_acquire);
      const std::size_t start = preferred_enq_index() % params_.width;
      // Fast path: one attempt on the thread's preferred column.
      const core::Probe first = try_enqueue_at(guard, node, start, max);
      if (first == core::Probe::kSuccess) [[likely]] {
        obs::count<obs::Counter::kFastHits>();
        return;
      }
      core::drive_window_sweep(
          params_, put_max_, start, max, first,
          /*attempt=*/
          [&](std::size_t i, std::uint64_t m) {
            return try_enqueue_at(guard, node, i, m);
          },
          /*eligible=*/
          [&](std::size_t i, std::uint64_t m) {
            // Dereference-free: may say "eligible" on a stale lower bound
            // (the attempt re-verifies exactly and refreshes the word), but
            // a word >= m proves ineligibility.
            return columns_[i].enq_serial.load(std::memory_order_acquire) < m;
          },
          /*certified=*/
          [&](std::uint64_t m) { return certify_enqueue(m); },
          obs::ShiftCause::kQueuePut);
    } catch (...) {
      alloc_.release(node);  // never linked: direct release is safe
      throw;
    }
  }

  /// Non-throwing enqueue: resource failure comes back as a status instead
  /// of an exception, same strong guarantee.
  core::OpStatus try_enqueue(T value) {
    try {
      enqueue(std::move(value));
      return core::OpStatus::kOk;
    } catch (const std::bad_alloc&) {
      return core::OpStatus::kNoMemory;
    } catch (const reclaim::SlotsExhausted&) {
      return core::OpStatus::kNoSlots;
    }
  }

  std::optional<T> dequeue() {
    auto guard = reclaimer_.pin();
    const std::uint64_t max = get_max_.load(std::memory_order_acquire);
    const std::size_t start = preferred_deq_index() % params_.width;
    std::optional<T> out;
    const core::Probe first = try_dequeue_at(guard, out, start, max);
    if (first == core::Probe::kSuccess) [[likely]] {
      obs::count<obs::Counter::kFastHits>();
      return out;
    }
    core::drive_window_sweep(
        params_, get_max_, start, max, first,
        /*attempt=*/
        [&](std::size_t i, std::uint64_t m) {
          return try_dequeue_at(guard, out, i, m);
        },
        /*eligible=*/
        [&](std::size_t i, std::uint64_t m) {
          Node* head = guard.protect(columns_[i].head, 0);
          return head->next.load(std::memory_order_acquire) != nullptr &&
                 head->index < m;
        },
        /*certified=*/
        [&](std::uint64_t m) { return certify_dequeue(guard, m); },
        obs::ShiftCause::kQueueGet);
    return out;
  }

  bool empty() {
    auto guard = reclaimer_.pin();
    for (std::size_t i = 0; i < params_.width; ++i) {
      Node* head = guard.protect(columns_[i].head, 0);
      if (head->next.load(std::memory_order_acquire) != nullptr) return false;
    }
    return true;
  }

  /// Racy sum of (enqueued - dequeued) per column.
  std::uint64_t approx_size() {
    auto guard = reclaimer_.pin();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < params_.width; ++i) {
      Node* head = guard.protect(columns_[i].head, 0);
      Node* tail = guard.protect(columns_[i].tail, 1);
      total += tail->index > head->index ? tail->index - head->index : 0;
    }
    return total;
  }

  /// Debug/test accessors for the two window words (racy reads).
  std::uint64_t put_window() const {
    return put_max_.load(std::memory_order_acquire);
  }
  std::uint64_t get_window() const {
    return get_max_.load(std::memory_order_acquire);
  }

  /// Highest per-thread slot index leased across the reclaimer and the
  /// allocator — the churn harness's bounded-lease gauge (DESIGN.md §13).
  /// Zero for slotless policies (Leaky/Heap).
  std::size_t slot_hwm() const {
    std::size_t hwm = 0;
    if constexpr (requires { reclaimer_.slot_hwm(); }) {
      hwm = reclaimer_.slot_hwm();
    }
    if constexpr (requires { alloc_.slot_hwm(); }) {
      const std::size_t a = alloc_.slot_hwm();
      if (a > hwm) hwm = a;
    }
    return hwm;
  }

 private:
  /// Refresh a column's published enqueue-serial lower bound. A plain
  /// store is enough (see Column::enq_serial); skip it when the word is
  /// already current so probes don't write shared memory.
  static void publish_enq_serial(Column& column, std::uint64_t serial) {
    if (column.enq_serial.load(std::memory_order_relaxed) < serial) {
      column.enq_serial.store(serial, std::memory_order_release);
    }
  }

  /// One enqueue attempt on column `i` under put window `max`: the
  /// dereference-free pre-check, then the exact check on the protected
  /// tail's serial, then the MS-queue link CAS. Helps a lagging tail
  /// forward (retrying the same column) and keeps enq_serial fresh so
  /// certification always converges.
  template <typename Guard>
  core::Probe try_enqueue_at(Guard& guard, Node* node, std::size_t i,
                             std::uint64_t max) {
    Column& column = columns_[i];
    if (column.enq_serial.load(std::memory_order_acquire) >= max) {
      return core::Probe::kIneligible;
    }
    while (true) {
      Node* tail = guard.protect(column.tail, 0);
      Node* next = tail->next.load(std::memory_order_acquire);
      if (next != nullptr) {
        // Help the lagging tail forward, then retry the same column.
        column.tail.compare_exchange_strong(tail, next,
                                            std::memory_order_release,
                                            std::memory_order_relaxed);
        continue;
      }
      publish_enq_serial(column, tail->index);
      if (tail->index >= max) return core::Probe::kIneligible;
      node->index = tail->index + 1;
      Node* expected = nullptr;
      if (tail->next.compare_exchange_strong(expected, node,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
        column.tail.compare_exchange_strong(tail, node,
                                            std::memory_order_release,
                                            std::memory_order_relaxed);
        publish_enq_serial(column, node->index);
        preferred_enq_index() = i;
        return core::Probe::kSuccess;
      }
      return core::Probe::kContended;
    }
  }

  /// One dequeue attempt on column `i` under get window `max`. Winning the
  /// head CAS both takes the item and advances the dequeue count in one
  /// step, so the eligibility check cannot be overtaken by concurrent
  /// dequeuers.
  template <typename Guard>
  core::Probe try_dequeue_at(Guard& guard, std::optional<T>& out,
                             std::size_t i, std::uint64_t max) {
    Column& column = columns_[i];
    Node* head = guard.protect(column.head, 0);
    Node* next = guard.protect(head->next, 1);
    {
      // MS-queue invariant: never move head past a node the tail still
      // references — a retired dummy must be unreachable from both ends
      // before hazard scans may free it.
      Node* tail = column.tail.load(std::memory_order_acquire);
      if (head == tail && next != nullptr) {
        column.tail.compare_exchange_strong(tail, next,
                                            std::memory_order_release,
                                            std::memory_order_relaxed);
      }
    }
    if (next == nullptr || head->index >= max) return core::Probe::kIneligible;
    if (column.head.compare_exchange_strong(head, next,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
      preferred_deq_index() = i;
      out = std::move(next->value);
      guard.retire(head, alloc_);
      return core::Probe::kSuccess;
    }
    return core::Probe::kContended;
  }

  /// Put-side certification: one dereference-free scan of the published
  /// serial words. A stale word below the window redirects the sweep there
  /// (the attempt verifies exactly and refreshes it), so the scan can only
  /// pass once every column's true serial reached the window.
  core::Certified certify_enqueue(std::uint64_t max) {
    for (std::size_t i = 0; i < params_.width; ++i) {
      if (columns_[i].enq_serial.load(std::memory_order_acquire) < max) {
        return core::Certified::restart_at(i);
      }
    }
    return core::Certified::shift_to(max + params_.shift);
  }

  /// Get-side certification: one guarded scan deciding between "missed an
  /// eligible column" (go there), "all empty" (report empty), and
  /// "non-empty columns all at the window" (shift) — so empty columns can
  /// never pump the window while eligible work exists. The shift target is
  /// clamped by enqueue progress: without the clamp, a shift of `shift`
  /// past a column holding a single just-enqueued item inflates get_max
  /// far beyond any item's serial, and later dequeues run unconstrained by
  /// the window — the FIFO rank-error bound goes loose. A non-empty column
  /// always proves progress >= max + 1 (its head serial certified >= max
  /// and at least one more item was enqueued on top), so the clamped
  /// target still moves the window forward.
  template <typename Guard>
  core::Certified certify_dequeue(Guard& guard, std::uint64_t max) {
    bool any_nonempty = false;
    for (std::size_t i = 0; i < params_.width; ++i) {
      Column& column = columns_[i];
      Node* head = guard.protect(column.head, 0);
      if (head->next.load(std::memory_order_acquire) == nullptr) continue;
      if (head->index < max) return core::Certified::restart_at(i);
      any_nonempty = true;
      // Help the published serial forward so the clamp below can use it.
      Node* tail = guard.protect(column.tail, 1);
      publish_enq_serial(column, tail->index);
    }
    if (!any_nonempty) return core::Certified::stop();
    std::uint64_t enq_progress = 0;
    for (std::size_t i = 0; i < params_.width; ++i) {
      enq_progress = std::max(
          enq_progress, columns_[i].enq_serial.load(std::memory_order_acquire));
    }
    return core::Certified::shift_to(
        std::max(max + 1, std::min(max + params_.shift, enq_progress)));
  }

  // Per-(thread, instance) preferred columns, keyed by this instance's
  // process-unique id so two queues of the same instantiation never
  // pollute each other's fast path (see core::InstanceLocal).
  std::size_t& preferred_enq_index() {
    thread_local core::InstanceLocal<std::size_t> preferred;
    return preferred.get(id_);
  }
  std::size_t& preferred_deq_index() {
    thread_local core::InstanceLocal<std::size_t> preferred;
    return preferred.get(id_);
  }

  const std::uint64_t id_ = reclaim::detail::next_instance_id();
  core::TwoDParams params_;
  alignas(64) std::atomic<std::uint64_t> put_max_;
  alignas(64) std::atomic<std::uint64_t> get_max_;
  std::unique_ptr<Column[]> columns_;
  // alloc_ before reclaimer_: the reclaimer's destructor releases deferred
  // retires into it (DESIGN.md §10).
  [[no_unique_address]] Alloc<Node> alloc_;
  Reclaimer reclaimer_;
};

}  // namespace r2d
