// TwoDQueue: the 2D window design applied to FIFO queues — the paper's
// future-work generalization the EXT bench measures.
//
// A width-array of Michael-Scott sub-queues. Each node carries its enqueue
// serial within its column, so the tail's index is the column's enqueue
// count and the dummy head's index is its dequeue count — both change
// atomically with the corresponding CAS, no side counters. Both windows
// only move up, by `shift`, after a certified failed sweep: enqueues are
// eligible on a column whose enqueue count is below put_max; dequeues on a
// non-empty column whose dequeue count is below get_max.
// With width = 1 every operation is always eligible and the structure is a
// plain strict MS queue.
//
// Unlike the stack columns, the queue keeps its counts in the nodes rather
// than packed into the head/tail words: they are cumulative enqueue /
// dequeue serials (not occupancies), so they outgrow any fixed-width
// packed field after 2^16 operations per column. Queue eligibility checks
// therefore still dereference through the reclaimer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/params.hpp"
#include "core/substack.hpp"  // hop_rand, InstanceLocal
#include "reclaim/epoch.hpp"
#include "reclaim/slot_registry.hpp"  // next_instance_id

namespace r2d {

template <typename T, typename Reclaimer = reclaim::EpochReclaimer>
class TwoDQueue {
  struct Node {
    std::atomic<Node*> next{nullptr};
    std::uint64_t index = 0;  ///< enqueue serial within the column; dummy = 0
    T value{};
  };

  struct alignas(64) Column {
    std::atomic<Node*> head{nullptr};  ///< dummy node; its index = #dequeued
    std::atomic<Node*> tail{nullptr};
  };

 public:
  using value_type = T;
  using reclaimer_type = Reclaimer;

  explicit TwoDQueue(core::TwoDParams params)
      : params_(params),
        put_max_(params.depth),
        get_max_(params.depth),
        columns_(new Column[params.width]) {
    params_.validate();
    for (std::size_t i = 0; i < params_.width; ++i) {
      Node* dummy = new Node;
      columns_[i].head.store(dummy, std::memory_order_relaxed);
      columns_[i].tail.store(dummy, std::memory_order_relaxed);
    }
  }

  TwoDQueue(const TwoDQueue&) = delete;
  TwoDQueue& operator=(const TwoDQueue&) = delete;

  ~TwoDQueue() {
    for (std::size_t i = 0; i < params_.width; ++i) {
      Node* node = columns_[i].head.load(std::memory_order_relaxed);
      while (node != nullptr) {
        Node* next = node->next.load(std::memory_order_relaxed);
        delete node;
        node = next;
      }
    }
  }

  const core::TwoDParams& params() const { return params_; }

  void enqueue(T value) {
    auto guard = reclaimer_.pin();
    Node* node = new Node;
    node->value = std::move(value);
    std::uint64_t max = put_max_.load(std::memory_order_acquire);
    std::size_t index = preferred_enq_index() % params_.width;
    unsigned failed = 0;
    while (true) {
      {
        const std::uint64_t cur = put_max_.load(std::memory_order_acquire);
        if (cur != max) {
          max = cur;
          failed = 0;
        }
      }
      Column& column = columns_[index];
      Node* tail = guard.protect(column.tail, 0);
      Node* next = tail->next.load(std::memory_order_acquire);
      if (next != nullptr) {
        // Help the lagging tail forward, then retry the same column.
        column.tail.compare_exchange_strong(tail, next,
                                            std::memory_order_release,
                                            std::memory_order_relaxed);
        continue;
      }
      if (tail->index < max) {
        node->index = tail->index + 1;
        Node* expected = nullptr;
        if (tail->next.compare_exchange_strong(expected, node,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
          column.tail.compare_exchange_strong(tail, node,
                                              std::memory_order_release,
                                              std::memory_order_relaxed);
          preferred_enq_index() = index;
          return;
        }
        failed = 0;
        index = hop(index);
        continue;
      }
      if (++failed >= params_.width) {
        // Random/hybrid probes can revisit columns; certify the failed
        // sweep with a read-only scan before moving the window (the
        // monotonic shift rule — same as the stack's kRandomOnly path).
        const std::size_t eligible = scan_enqueue_eligible(guard, max);
        if (eligible != params_.width) {
          index = eligible;
          failed = 0;
          continue;
        }
        std::uint64_t expected = max;
        put_max_.compare_exchange_strong(expected, max + params_.shift,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
        max = put_max_.load(std::memory_order_acquire);
        failed = 0;
        continue;
      }
      index = next_index(index, failed);
    }
  }

  std::optional<T> dequeue() {
    auto guard = reclaimer_.pin();
    std::uint64_t max = get_max_.load(std::memory_order_acquire);
    std::size_t index = preferred_deq_index() % params_.width;
    unsigned failed = 0;
    while (true) {
      {
        const std::uint64_t cur = get_max_.load(std::memory_order_acquire);
        if (cur != max) {
          max = cur;
          failed = 0;
        }
      }
      Column& column = columns_[index];
      Node* head = guard.protect(column.head, 0);
      Node* next = guard.protect(head->next, 1);
      {
        // MS-queue invariant: never move head past a node the tail still
        // references — a retired dummy must be unreachable from both ends
        // before hazard scans may free it.
        Node* tail = column.tail.load(std::memory_order_acquire);
        if (head == tail && next != nullptr) {
          column.tail.compare_exchange_strong(tail, next,
                                              std::memory_order_release,
                                              std::memory_order_relaxed);
        }
      }
      if (next != nullptr && head->index < max) {
        // head->index is this column's dequeue count; winning the CAS both
        // takes the item and advances the count in one step, so the
        // eligibility check cannot be overtaken by concurrent dequeuers.
        if (column.head.compare_exchange_strong(head, next,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
          preferred_deq_index() = index;
          T value = std::move(next->value);
          guard.retire(head);
          return value;
        }
        failed = 0;
        index = hop(index);
        continue;
      }
      if (++failed >= params_.width) {
        // Certified failed sweep: one read-only scan decides between
        // "missed an eligible column" (go there), "all empty" (report
        // empty), and "non-empty columns all at the window" (shift) — so
        // empty columns can never pump the window while eligible work
        // exists.
        const DequeueScan scan = scan_dequeue(guard, max);
        if (scan.eligible != params_.width) {
          index = scan.eligible;
          failed = 0;
          continue;
        }
        if (!scan.any_nonempty) return std::nullopt;
        std::uint64_t expected = max;
        get_max_.compare_exchange_strong(expected, max + params_.shift,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
        max = get_max_.load(std::memory_order_acquire);
        failed = 0;
        continue;
      }
      index = next_index(index, failed);
    }
  }

  bool empty() {
    auto guard = reclaimer_.pin();
    return certify_all_empty(guard);
  }

  /// Racy sum of (enqueued - dequeued) per column.
  std::uint64_t approx_size() {
    auto guard = reclaimer_.pin();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < params_.width; ++i) {
      Node* head = guard.protect(columns_[i].head, 0);
      Node* tail = guard.protect(columns_[i].tail, 1);
      total += tail->index > head->index ? tail->index - head->index : 0;
    }
    return total;
  }

 private:
  /// Read-only certification scan for enqueues: index of an eligible
  /// column, or width when every column is at the window.
  template <typename Guard>
  std::size_t scan_enqueue_eligible(Guard& guard, std::uint64_t max) {
    for (std::size_t i = 0; i < params_.width; ++i) {
      Node* tail = guard.protect(columns_[i].tail, 0);
      if (tail->index < max) return i;
    }
    return params_.width;
  }

  struct DequeueScan {
    std::size_t eligible;  ///< width when no column is dequeue-eligible
    bool any_nonempty;
  };

  template <typename Guard>
  DequeueScan scan_dequeue(Guard& guard, std::uint64_t max) {
    DequeueScan scan{params_.width, false};
    for (std::size_t i = 0; i < params_.width; ++i) {
      Node* head = guard.protect(columns_[i].head, 0);
      if (head->next.load(std::memory_order_acquire) == nullptr) continue;
      scan.any_nonempty = true;
      if (head->index < max) {
        scan.eligible = i;
        return scan;
      }
    }
    return scan;
  }

  template <typename Guard>
  bool certify_all_empty(Guard& guard) {
    for (std::size_t i = 0; i < params_.width; ++i) {
      Node* head = guard.protect(columns_[i].head, 0);
      if (head->next.load(std::memory_order_acquire) != nullptr) return false;
    }
    return true;
  }

  std::size_t hop(std::size_t index) const {
    if (params_.hop_mode == core::HopMode::kRoundRobinOnly) {
      return (index + 1) % params_.width;
    }
    return static_cast<std::size_t>(core::hop_rand()) % params_.width;
  }

  std::size_t next_index(std::size_t index, unsigned failed) const {
    switch (params_.hop_mode) {
      case core::HopMode::kRoundRobinOnly:
        return (index + 1) % params_.width;
      case core::HopMode::kRandomOnly:
        return static_cast<std::size_t>(core::hop_rand()) % params_.width;
      case core::HopMode::kHybrid:
      default:
        // Random early, consecutive once the sweep is past half the width
        // (cheap certification, like the stack's hybrid mode).
        return failed * 2 >= params_.width
                   ? (index + 1) % params_.width
                   : static_cast<std::size_t>(core::hop_rand()) %
                         params_.width;
    }
  }

  // Per-(thread, instance) preferred columns, keyed by this instance's
  // process-unique id so two queues of the same instantiation never
  // pollute each other's fast path (see core::InstanceLocal).
  std::size_t& preferred_enq_index() {
    thread_local core::InstanceLocal<std::size_t> preferred;
    return preferred.get(id_);
  }
  std::size_t& preferred_deq_index() {
    thread_local core::InstanceLocal<std::size_t> preferred;
    return preferred.get(id_);
  }

  const std::uint64_t id_ = reclaim::detail::next_instance_id();
  core::TwoDParams params_;
  alignas(64) std::atomic<std::uint64_t> put_max_;
  alignas(64) std::atomic<std::uint64_t> get_max_;
  std::unique_ptr<Column[]> columns_;
  Reclaimer reclaimer_;
};

}  // namespace r2d
