// r2d::obs — library-wide observability: sharded counters, window-shift
// tracing, and snapshot/export, with a compile-time off switch.
//
// Three layers (DESIGN.md §14):
//
//  1. Counters are sharded per thread into cache-line-padded slots leased
//     through the PR 7 slot registry (reclaim/slot_registry.hpp): a thread's
//     first increment claims a slot, its exit hook folds the slot's counts
//     into a global folded array and releases the lease — so counts survive
//     unbounded thread churn and the slot array stays bounded. Increments
//     are single-writer (plain load+store, no lock prefix); the fold uses
//     exchange(0), and the only writer that can race it is an *abandoned*
//     thread still counting into a stale shard — a diagnostics-grade skew,
//     never a crash. At quiescence snapshot() — which sums folded + every
//     slot + the overflow slot — is exact. Because only the global sums are
//     meaningful,
//     cross-thread slot reuse after a steal is harmless (misattribution,
//     not loss), which is what lets the hot increment skip the registry's
//     ownership revalidation entirely.
//  2. The off switch is two-level. Compile time: building with R2D_OBS=0
//     (CMake option, default ON) selects the Metrics<false> specialization,
//     whose entire API is empty inline functions — obs::count<>() compiles
//     to nothing and hot paths are byte-identical to an uninstrumented
//     build. Run time: R2D_METRICS=0 (default 1) short-circuits add() after
//     one predictable branch on a cached bool; scripts/ci.sh's overhead
//     guard bounds the *enabled* cost instead.
//  3. snapshot() folds the shards into a stable Snapshot with conservation
//     invariants (shift attempts == wins + losses; ops == fast hits +
//     per-outcome sweep sum), and a per-slot fixed-size ring buffer traces
//     window-shift events ({old window, proposed window, cause, won, tsc},
//     capacity R2D_TRACE_RING, default 64, 0 = off) dumpable on demand or
//     from util/crash_trace.hpp's fatal-signal handler.
#pragma once

#ifndef R2D_OBS
#define R2D_OBS 1
#endif

#include <cstdint>

#if R2D_OBS
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "fault/inject.hpp"
#include "reclaim/slot_registry.hpp"
#include "util/crash_trace.hpp"
#include "util/env.hpp"

#if defined(__x86_64__)
#include <x86intrin.h>
#endif
#endif  // R2D_OBS

namespace r2d::obs {

/// Everything the library counts, one global taxonomy. Grouped by layer;
/// names double as the JSON export keys (see counter_name).
enum class Counter : unsigned {
  // Window-sweep engine (core/window.hpp). One sweep = one slow-path call;
  // kSweeps == kSweepSuccess + kSweepStop at quiescence.
  kSweeps,           ///< drive_window_sweep invocations (fast path missed)
  kSweepSuccess,     ///< sweeps that completed the operation
  kSweepStop,        ///< sweeps certified terminal (e.g. structure empty)
  kProbes,           ///< attempt() calls inside sweeps
  kHopsRandom,       ///< hops after an ineligible probe, random policy
  kHopsStreak,       ///< hops after an ineligible probe, round-robin streak
  kHopsContended,    ///< hops after a lost CAS on an eligible column
  kVerifyScans,      ///< kRandomOnly read-only full-width verify scans
  kVerifyRedirects,  ///< verify scans that found an eligible column
  kCertAttempts,     ///< certified() consults (a certified failed sweep)
  kCertFails,        ///< certified() verdicts of kRestart (cert invalidated)
  kShiftAttempts,    ///< window-shift CASes tried
  kShiftWins,        ///< window-shift CASes won
  kShiftLosses,      ///< window-shift CASes lost (a racing shift landed)
  // Container fast paths. An op is either a fast hit or exactly one sweep:
  // ops == kFastHits + kSweepSuccess + kSweepStop.
  kFastHits,  ///< operations completed on the first (fast-path) probe
  // Reclaimers.
  kEpochPins,           ///< EpochReclaimer::pin() critical-section entries
  kEpochAdvanceTries,   ///< global-epoch CAS attempts
  kEpochAdvances,       ///< global-epoch CAS wins
  kEpochOrphansQueued,  ///< retire-buckets parked on the orphan queue
  kEpochOrphansDrained, ///< orphan buckets freed after their grace period
  kHazardPins,          ///< HazardReclaimer::pin() entries
  kHazardScans,         ///< retire-threshold scans of the hazard table
  kHazardOrphansAdopted,///< orphaned retire-lists adopted by a scan
  // Slot-lease registry (counted from the lessors; see DESIGN.md §14).
  kSlotSteals,        ///< slots reclaimed from dead-but-quiesced threads
  kSlotExitReleases,  ///< slots released by the thread-exit walk
  // PoolAlloc magazine layer.
  kMagFlushes,      ///< full magazines pushed to the depot
  kMagRefills,      ///< full magazines popped from the depot
  kDepotCasRetries, ///< failed depot head CASes (push or pop)
  // DWCAS deque column backend.
  kDwcasRetries,  ///< failed 16-byte head CASes
  kHelpBridges,   ///< bridge CASes helped on another op's pending head
  // Fault injection + OOM hardening (fault/inject.hpp, DESIGN.md §15).
  kFaultsInjected,  ///< fault points that fired (all sites, all policies)
  kRetireLeaks,     ///< nodes leaked when a retire/free path hit OOM or
                    ///< slot exhaustion past the point of repair
  kCount
};

inline constexpr unsigned kCounterCount = static_cast<unsigned>(Counter::kCount);

/// Who asked for the window shift a trace entry records.
enum class ShiftCause : std::uint8_t {
  kUnknown,
  kStackPush,
  kStackPop,
  kQueuePut,
  kQueueGet,
  kBagPut,
  kBagTake,
  kCounterInc,
  kCounterDec,
  kDequeFrontPush,
  kDequeFrontPop,
  kDequeBackPush,
  kDequeBackPop,
};

inline const char* to_string(ShiftCause c) {
  switch (c) {
    case ShiftCause::kStackPush: return "stack-push";
    case ShiftCause::kStackPop: return "stack-pop";
    case ShiftCause::kQueuePut: return "queue-put";
    case ShiftCause::kQueueGet: return "queue-get";
    case ShiftCause::kBagPut: return "bag-put";
    case ShiftCause::kBagTake: return "bag-take";
    case ShiftCause::kCounterInc: return "counter-inc";
    case ShiftCause::kCounterDec: return "counter-dec";
    case ShiftCause::kDequeFrontPush: return "deque-front-push";
    case ShiftCause::kDequeFrontPop: return "deque-front-pop";
    case ShiftCause::kDequeBackPush: return "deque-back-push";
    case ShiftCause::kDequeBackPop: return "deque-back-pop";
    case ShiftCause::kUnknown: break;
  }
  return "unknown";
}

/// One decoded window-shift trace event.
struct ShiftEvent {
  std::uint64_t tsc = 0;      ///< rdtsc (x86) or steady_clock ns
  std::uint64_t old_max = 0;  ///< window value the shift was proposed from
  std::uint64_t new_max = 0;  ///< proposed window value
  ShiftCause cause = ShiftCause::kUnknown;
  bool won = false;  ///< whether this thread's CAS installed it
};

/// A folded, stable view of every counter. Value semantics; subtract two
/// snapshots to scope counts to a measured region.
struct Snapshot {
  std::uint64_t c[kCounterCount] = {};

  std::uint64_t operator[](Counter i) const {
    return c[static_cast<unsigned>(i)];
  }

  Snapshot operator-(const Snapshot& base) const {
    Snapshot d;
    for (unsigned i = 0; i < kCounterCount; ++i) {
      // Saturating: a counter can transiently read lower across a
      // concurrent fold; deltas must never wrap.
      d.c[i] = c[i] >= base.c[i] ? c[i] - base.c[i] : 0;
    }
    return d;
  }

  /// Total container operations (fast hits plus every sweep outcome).
  std::uint64_t ops() const {
    return (*this)[Counter::kFastHits] + (*this)[Counter::kSweepSuccess] +
           (*this)[Counter::kSweepStop];
  }
  std::uint64_t hops() const {
    return (*this)[Counter::kHopsRandom] + (*this)[Counter::kHopsStreak] +
           (*this)[Counter::kHopsContended];
  }
  double hops_per_op() const {
    const std::uint64_t n = ops();
    return n == 0 ? 0.0 : static_cast<double>(hops()) / static_cast<double>(n);
  }
  double cert_fail_rate() const {
    const std::uint64_t a = (*this)[Counter::kCertAttempts];
    return a == 0 ? 0.0
                  : static_cast<double>((*this)[Counter::kCertFails]) /
                        static_cast<double>(a);
  }
  double shift_race_rate() const {
    const std::uint64_t a = (*this)[Counter::kShiftAttempts];
    return a == 0 ? 0.0
                  : static_cast<double>((*this)[Counter::kShiftLosses]) /
                        static_cast<double>(a);
  }

  /// The conservation invariants the engine's counting must satisfy at
  /// quiescence (no sweep in flight when either snapshot was taken).
  bool conserved() const {
    return (*this)[Counter::kShiftAttempts] ==
               (*this)[Counter::kShiftWins] + (*this)[Counter::kShiftLosses] &&
           (*this)[Counter::kSweeps] ==
               (*this)[Counter::kSweepSuccess] + (*this)[Counter::kSweepStop] &&
           (*this)[Counter::kVerifyRedirects] <=
               (*this)[Counter::kVerifyScans] &&
           (*this)[Counter::kCertFails] <= (*this)[Counter::kCertAttempts];
  }
};

#if R2D_OBS

inline const char* counter_name(Counter i) {
  switch (i) {
    case Counter::kSweeps: return "sweeps";
    case Counter::kSweepSuccess: return "sweep_success";
    case Counter::kSweepStop: return "sweep_stop";
    case Counter::kProbes: return "probes";
    case Counter::kHopsRandom: return "hops_random";
    case Counter::kHopsStreak: return "hops_streak";
    case Counter::kHopsContended: return "hops_contended";
    case Counter::kVerifyScans: return "verify_scans";
    case Counter::kVerifyRedirects: return "verify_redirects";
    case Counter::kCertAttempts: return "cert_attempts";
    case Counter::kCertFails: return "cert_fails";
    case Counter::kShiftAttempts: return "shift_attempts";
    case Counter::kShiftWins: return "shift_wins";
    case Counter::kShiftLosses: return "shift_losses";
    case Counter::kFastHits: return "fast_hits";
    case Counter::kEpochPins: return "epoch_pins";
    case Counter::kEpochAdvanceTries: return "epoch_advance_tries";
    case Counter::kEpochAdvances: return "epoch_advances";
    case Counter::kEpochOrphansQueued: return "epoch_orphans_queued";
    case Counter::kEpochOrphansDrained: return "epoch_orphans_drained";
    case Counter::kHazardPins: return "hazard_pins";
    case Counter::kHazardScans: return "hazard_scans";
    case Counter::kHazardOrphansAdopted: return "hazard_orphans_adopted";
    case Counter::kSlotSteals: return "slot_steals";
    case Counter::kSlotExitReleases: return "slot_exit_releases";
    case Counter::kMagFlushes: return "mag_flushes";
    case Counter::kMagRefills: return "mag_refills";
    case Counter::kDepotCasRetries: return "depot_cas_retries";
    case Counter::kDwcasRetries: return "dwcas_retries";
    case Counter::kHelpBridges: return "help_bridges";
    case Counter::kFaultsInjected: return "faults_injected";
    case Counter::kRetireLeaks: return "retire_leaks";
    case Counter::kCount: break;
  }
  return "?";
}

/// Cycle/time stamp for trace entries: cheap, monotonic-enough ordering.
inline std::uint64_t trace_tick() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

namespace detail {

/// R2D_METRICS (default 1): runtime enable for counting + tracing in an
/// R2D_OBS=1 build. Read once per process.
inline bool runtime_enabled() {
  static const bool cached = util::env_u64("R2D_METRICS", 1) != 0;
  return cached;
}

/// R2D_TRACE_RING (default 64): per-thread shift-trace ring capacity,
/// rounded up to a power of two; 0 disables tracing.
inline unsigned trace_ring_from_env() {
  static const unsigned cached = [] {
    std::uint64_t raw = util::env_u64("R2D_TRACE_RING", 64);
    if (raw == 0) return 0u;
    if (raw > 65536) raw = 65536;
    unsigned cap = 1;
    while (cap < raw) cap <<= 1;
    return cap;
  }();
  return cached;
}

/// A raw (not yet decoded) ring entry: four relaxed words so the recording
/// path is wait-free and the crash-dump path can read it from a signal
/// handler. cause_won packs {cause, won, sequence-valid} — tsc == 0 marks
/// a never-written entry.
struct TraceEntry {
  std::atomic<std::uint64_t> tsc{0};
  std::atomic<std::uint64_t> old_max{0};
  std::atomic<std::uint64_t> new_max{0};
  std::atomic<std::uint64_t> cause_won{0};
};

}  // namespace detail

template <bool Enabled>
class Metrics;

/// The enabled implementation: counter shards + trace rings over leased
/// per-thread slots.
template <>
class Metrics<true> : private reclaim::detail::Lessor {
 public:
  static constexpr bool kEnabled = true;

  /// One thread's shard: owner lease word, the counters, and this thread's
  /// ring cursor. Padded out to whole cache lines.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> owner{0};
    std::atomic<std::uint64_t> trace_pos{0};
    std::atomic<std::uint64_t> c[kCounterCount];
  };

  explicit Metrics(unsigned trace_cap = detail::trace_ring_from_env())
      : max_slots_(reclaim::detail::max_slots()),
        instance_id_(reclaim::detail::next_instance_id()),
        trace_cap_(trace_cap),
        slots_(new Slot[max_slots_]) {
    if (trace_cap_ != 0) {
      // max_slots_ rings for the leased shards + 1 for the overflow slot.
      rings_.reset(new detail::TraceEntry[(max_slots_ + 1) * trace_cap_]);
    }
    reclaim::detail::ChurnRegistry::get().add_lessor(instance_id_, this);
  }

  ~Metrics() {
    reclaim::detail::ChurnRegistry::get().remove_lessor(instance_id_);
  }

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void add(Counter counter, std::uint64_t n = 1) {
    Slot* s = slot();
    if (s == nullptr) [[unlikely]] return;  // R2D_METRICS=0
    // Single-writer increment: only the leasing thread bumps its shard, so
    // a plain load+store beats the ~10x dearer lock-prefixed fetch_add.
    // The one concurrent writer is a fold (exchange(0)) — and folds only
    // target shards whose owner is dead or abandoned, where a lost or
    // doubled in-flight increment is a diagnostics-grade error, not a
    // correctness one. At quiescence (every test assertion, every bench
    // row) the counts are exact.
    std::atomic<std::uint64_t>& c = s->c[static_cast<unsigned>(counter)];
    c.store(c.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
  }

  void record_shift(std::uint64_t old_max, std::uint64_t new_max, bool won,
                    ShiftCause cause) {
    if (trace_cap_ == 0) return;
    Slot* s = slot();
    if (s == nullptr) return;  // R2D_METRICS=0
    detail::TraceEntry* ring = ring_of(s);
    const std::uint64_t pos =
        s->trace_pos.fetch_add(1, std::memory_order_relaxed);
    detail::TraceEntry& e = ring[pos & (trace_cap_ - 1)];
    e.old_max.store(old_max, std::memory_order_relaxed);
    e.new_max.store(new_max, std::memory_order_relaxed);
    e.cause_won.store((static_cast<std::uint64_t>(cause) << 1) |
                          (won ? 1u : 0u),
                      std::memory_order_relaxed);
    // tsc written last and nonzero: a reader treats tsc != 0 as "entry
    // holds a (possibly torn, diagnostics-only) event".
    std::uint64_t t = trace_tick();
    e.tsc.store(t | 1u, std::memory_order_release);
  }

  /// Fold every shard into one stable value-struct. Safe to call while
  /// counting runs; the result is a consistent *lower bound* per counter
  /// that equals the exact totals at quiescence.
  Snapshot snapshot() const {
    Snapshot out;
    for (unsigned i = 0; i < kCounterCount; ++i) {
      out.c[i] = folded_[i].load(std::memory_order_relaxed);
    }
    const std::size_t seen = hwm_.load(std::memory_order_acquire);
    for (std::size_t s = 0; s < seen; ++s) {
      for (unsigned i = 0; i < kCounterCount; ++i) {
        out.c[i] += slots_[s].c[i].load(std::memory_order_relaxed);
      }
    }
    for (unsigned i = 0; i < kCounterCount; ++i) {
      out.c[i] += overflow_.c[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Visit every recorded shift event (all threads' rings, overflow
  /// included), oldest-first per ring. Order across rings is by ring.
  template <typename Fn>
  void visit_trace(Fn&& fn) const {
    if (trace_cap_ == 0) return;
    const std::size_t seen = hwm_.load(std::memory_order_acquire);
    for (std::size_t s = 0; s <= max_slots_; ++s) {
      if (s < max_slots_ && s >= seen) continue;
      const Slot& slot = s < max_slots_ ? slots_[s] : overflow_;
      const detail::TraceEntry* ring = &rings_[ring_index(s)];
      const std::uint64_t pos = slot.trace_pos.load(std::memory_order_acquire);
      const std::uint64_t lo = pos > trace_cap_ ? pos - trace_cap_ : 0;
      for (std::uint64_t p = lo; p < pos; ++p) {
        const detail::TraceEntry& e = ring[p & (trace_cap_ - 1)];
        const std::uint64_t tsc = e.tsc.load(std::memory_order_acquire);
        if (tsc == 0) continue;
        const std::uint64_t cw = e.cause_won.load(std::memory_order_relaxed);
        fn(ShiftEvent{tsc, e.old_max.load(std::memory_order_relaxed),
                      e.new_max.load(std::memory_order_relaxed),
                      static_cast<ShiftCause>(cw >> 1), (cw & 1) != 0});
      }
    }
  }

  void dump_trace(std::ostream& out) const {
    std::size_t n = 0;
    visit_trace([&](const ShiftEvent& e) {
      out << "shift[" << n++ << "] tsc=" << e.tsc << " cause="
          << to_string(e.cause) << " " << e.old_max << " -> " << e.new_max
          << (e.won ? " (won)" : " (lost)") << "\n";
    });
    if (n == 0) out << "(no shift events recorded)\n";
  }

  /// Crash-path trace dump: fd writes only, fixed-size stack buffers.
  /// snprintf is not strictly async-signal-safe — the same conventional
  /// trade-off util/crash_trace.hpp already makes for backtrace_symbols_fd.
  void dump_trace_fd(int fd) const {
    char buf[160];
    visit_trace([&](const ShiftEvent& e) {
      const int len = std::snprintf(
          buf, sizeof(buf),
          "shift tsc=%llu cause=%s %llu -> %llu %s\n",
          static_cast<unsigned long long>(e.tsc), to_string(e.cause),
          static_cast<unsigned long long>(e.old_max),
          static_cast<unsigned long long>(e.new_max),
          e.won ? "(won)" : "(lost)");
      if (len > 0) {
        ssize_t ignored = write(fd, buf, static_cast<std::size_t>(len));
        (void)ignored;
      }
    });
  }

  std::size_t slot_hwm() const {
    return hwm_.load(std::memory_order_acquire);
  }
  unsigned trace_capacity() const { return trace_cap_; }

  /// The library-wide instance every obs::count<>() feeds. First use
  /// installs the post-mortem hooks (SlotsExhausted annotation, crash-time
  /// trace dump) so only the process singleton — never a test-local
  /// instance — owns them.
  static Metrics& get() {
    static Metrics* instance = [] {
      auto* m = new Metrics;  // leaked: counted into by exiting threads
      reclaim::detail::slots_exhausted_annotator = &annotate_exhaustion;
      util::detail::metrics_crash_hook = &crash_dump;
      return m;
    }();
    return *instance;
  }

 private:
  struct TlsRef {
    std::uint64_t instance_id = 0;
    Slot* slot = nullptr;
  };

  /// The hot-path shard lookup. One TLS read and an id compare; no
  /// ownership revalidation (see the header comment: a stale or even
  /// stolen shard still counts correctly into the global sums, and the
  /// slots_ array outlives any cached pointer because instance ids are
  /// never reused). The R2D_METRICS=0 runtime switch is folded into the
  /// same compare: it caches a nullptr shard, so the disabled fast path
  /// costs exactly the cache hit plus one predictable null branch.
  Slot* slot() {
    static thread_local TlsRef tls;
    if (tls.instance_id == instance_id_) [[likely]] return tls.slot;
    Slot* s = detail::runtime_enabled() ? claim() : nullptr;
    tls = TlsRef{instance_id_, s};
    return s;
  }

  Slot* claim() {
    // A thread marked not-live is inside the registry's exit walk (which
    // HOLDS the registry mutex while lessors release — their counting must
    // not re-enter claim_slot/note_claim, or it self-deadlocks) or was
    // abandoned. Either way it must not take a fresh lease; the shared
    // overflow shard is lock-free and still summed by snapshot().
    const reclaim::detail::ThreadLeases* tl = reclaim::detail::tl_leases;
    if (tl != nullptr && !tl->live.load(std::memory_order_relaxed)) {
      return &overflow_;
    }
    try {
      return reclaim::detail::claim_slot(
          slots_.get(), max_slots_, hwm_, instance_id_,
          static_cast<reclaim::detail::Lessor*>(this),
          [](Slot&) { return true; },  // counters are always quiescent
          [this](Slot& victim) { fold(victim); });
    } catch (const reclaim::SlotsExhausted&) {
      // Metrics must never turn observation into failure: fall back to one
      // shared (contended, but correct) overflow shard.
      return &overflow_;
    }
  }

  detail::TraceEntry* ring_of(Slot* s) {
    const std::size_t index =
        s == &overflow_ ? max_slots_ : static_cast<std::size_t>(s - slots_.get());
    return &rings_[index * trace_cap_];
  }
  std::size_t ring_index(std::size_t slot_index) const {
    return slot_index * trace_cap_;
  }

  /// Move a shard's counts into the global folded array. exchange(0) makes
  /// this lossless against concurrent increments (they land either side of
  /// the exchange). The ring is left in place: its events remain visible
  /// to visit_trace until the slot's next owner overwrites them.
  void fold(Slot& s) {
    for (unsigned i = 0; i < kCounterCount; ++i) {
      const std::uint64_t taken = s.c[i].exchange(0, std::memory_order_relaxed);
      if (taken != 0) folded_[i].fetch_add(taken, std::memory_order_relaxed);
    }
  }

  /// Lessor: the dying thread's exit walk releases its shard.
  void release_thread(std::uint64_t token) noexcept override {
    const std::size_t seen = hwm_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < seen; ++i) {
      if (slots_[i].owner.load(std::memory_order_relaxed) != token) continue;
      if (reclaim::detail::acquire_for_cleanse(slots_[i], token)) {
        fold(slots_[i]);
        slots_[i].owner.store(0, std::memory_order_release);
      }
      return;
    }
  }

  static std::string annotate_exhaustion();
  static void crash_dump(int fd);

  const std::size_t max_slots_;
  const std::uint64_t instance_id_;
  const unsigned trace_cap_;
  std::unique_ptr<Slot[]> slots_;
  std::unique_ptr<detail::TraceEntry[]> rings_;
  std::atomic<std::size_t> hwm_{0};
  Slot overflow_;
  std::atomic<std::uint64_t> folded_[kCounterCount] = {};
};

/// The disabled specialization: same API, no state, no code. sizeof == 1
/// and every member is an empty inline function, so an R2D_OBS=0 build
/// erases instrumentation entirely (tests/test_metrics.cpp pins both).
template <>
class Metrics<false> {
 public:
  static constexpr bool kEnabled = false;
  explicit Metrics(unsigned = 0) {}
  void add(Counter, std::uint64_t = 1) {}
  void record_shift(std::uint64_t, std::uint64_t, bool, ShiftCause) {}
  Snapshot snapshot() const { return {}; }
  template <typename Fn>
  void visit_trace(Fn&&) const {}
  void dump_trace(std::ostream&) const {}
  void dump_trace_fd(int) const {}
  std::size_t slot_hwm() const { return 0; }
  unsigned trace_capacity() const { return 0; }
  static Metrics& get() {
    static Metrics instance;
    return instance;
  }
};

inline constexpr bool kCompiled = true;
using EngineMetrics = Metrics<true>;

/// The process-wide metrics the library's hot paths feed.
inline EngineMetrics& metrics() { return EngineMetrics::get(); }

/// Count `n` into the singleton. The template parameter keeps call sites
/// terse and lets an R2D_OBS=0 build fold the whole call away.
template <Counter C>
inline void count(std::uint64_t n = 1) {
  metrics().add(C, n);
}

inline void record_shift(std::uint64_t old_max, std::uint64_t new_max,
                         bool won, ShiftCause cause) {
  metrics().record_shift(old_max, new_max, won, cause);
}

namespace detail {
/// Link fault/ into the counter taxonomy: fault/inject.hpp exposes a raw
/// hook (it must not include obs/); this inline variable's dynamic
/// initializer installs the counting callback pre-main. The reentrancy
/// latch matters: counting can itself claim a metrics shard, whose
/// claim_slot holds a fault point — at rate:1.0 that would recurse
/// without it.
inline const bool fault_hook_installed = [] {
  fault::detail::on_inject.store(
      +[] {
        static thread_local bool in_hook = false;
        if (in_hook) return;
        in_hook = true;
        count<Counter::kFaultsInjected>();
        in_hook = false;
      },
      std::memory_order_release);
  return true;
}();
}  // namespace detail

/// Append the Snapshot's derived rates + raw counters as one JSON object
/// (used by bench/common.hpp and the service bench).
inline void append_json(std::ostream& out, const Snapshot& s) {
  out << "{\"ops\": " << s.ops() << ", \"hops_per_op\": " << s.hops_per_op()
      << ", \"cert_fail_rate\": " << s.cert_fail_rate()
      << ", \"shift_race_rate\": " << s.shift_race_rate()
      << ", \"epoch_pins\": " << s[Counter::kEpochPins]
      << ", \"epoch_advances\": " << s[Counter::kEpochAdvances]
      << ", \"hazard_pins\": " << s[Counter::kHazardPins]
      << ", \"slot_steals\": " << s[Counter::kSlotSteals]
      << ", \"counters\": {";
  for (unsigned i = 0; i < kCounterCount; ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << counter_name(static_cast<Counter>(i))
        << "\": " << s.c[i];
  }
  out << "}}";
}

/// Human-readable snapshot (the benches' stderr dump on demand).
inline void write_text(std::ostream& out, const Snapshot& s) {
  out << "obs: ops=" << s.ops() << " hops/op=" << s.hops_per_op()
      << " cert_fail=" << s.cert_fail_rate()
      << " shift_race=" << s.shift_race_rate() << "\n";
  for (unsigned i = 0; i < kCounterCount; ++i) {
    if (s.c[i] == 0) continue;
    out << "  " << counter_name(static_cast<Counter>(i)) << " = " << s.c[i]
        << "\n";
  }
}

// ---- post-mortem hooks (installed by Metrics<true>::get()) ----------------

inline std::string Metrics<true>::annotate_exhaustion() {
  if (!detail::runtime_enabled()) return {};
  const Snapshot s = get().snapshot();
  return " [obs: ops=" + std::to_string(s.ops()) +
         ", slot_steals=" + std::to_string(s[Counter::kSlotSteals]) +
         ", exit_releases=" + std::to_string(s[Counter::kSlotExitReleases]) +
         ", epoch_orphans_queued=" +
         std::to_string(s[Counter::kEpochOrphansQueued]) +
         ", drained=" + std::to_string(s[Counter::kEpochOrphansDrained]) +
         ", hazard_orphans_adopted=" +
         std::to_string(s[Counter::kHazardOrphansAdopted]) + "]";
}

inline void Metrics<true>::crash_dump(int fd) {
  if (!detail::runtime_enabled()) return;
  const Metrics& m = get();
  const Snapshot s = m.snapshot();
  char buf[256];
  int len = std::snprintf(
      buf, sizeof(buf),
      "=== r2d obs: ops=%llu sweeps=%llu shift_attempts=%llu "
      "shift_losses=%llu epoch_pins=%llu epoch_advances=%llu "
      "orphans_queued=%llu drained=%llu slot_steals=%llu ===\n",
      static_cast<unsigned long long>(s.ops()),
      static_cast<unsigned long long>(s[Counter::kSweeps]),
      static_cast<unsigned long long>(s[Counter::kShiftAttempts]),
      static_cast<unsigned long long>(s[Counter::kShiftLosses]),
      static_cast<unsigned long long>(s[Counter::kEpochPins]),
      static_cast<unsigned long long>(s[Counter::kEpochAdvances]),
      static_cast<unsigned long long>(s[Counter::kEpochOrphansQueued]),
      static_cast<unsigned long long>(s[Counter::kEpochOrphansDrained]),
      static_cast<unsigned long long>(s[Counter::kSlotSteals]));
  if (len > 0) {
    ssize_t ignored = write(fd, buf, static_cast<std::size_t>(len));
    (void)ignored;
  }
  m.dump_trace_fd(fd);
}

#else  // R2D_OBS == 0

/// R2D_OBS=0: the whole subsystem is this stub. Both specializations exist
/// (the parity test instantiates Metrics<true> too in enabled builds; here
/// only the API shape matters) and every entry point is an empty inline.
template <bool Enabled>
class Metrics {
 public:
  static constexpr bool kEnabled = false;
  explicit Metrics(unsigned = 0) {}
  void add(Counter, std::uint64_t = 1) {}
  void record_shift(std::uint64_t, std::uint64_t, bool, ShiftCause) {}
  Snapshot snapshot() const { return {}; }
  template <typename Fn>
  void visit_trace(Fn&&) const {}
  template <typename Stream>
  void dump_trace(Stream&) const {}
  void dump_trace_fd(int) const {}
  std::size_t slot_hwm() const { return 0; }
  unsigned trace_capacity() const { return 0; }
  static Metrics& get() {
    static Metrics instance;
    return instance;
  }
};

inline constexpr bool kCompiled = false;
using EngineMetrics = Metrics<false>;

inline EngineMetrics& metrics() { return EngineMetrics::get(); }

template <Counter C>
inline void count(std::uint64_t = 1) {}

inline void record_shift(std::uint64_t, std::uint64_t, bool, ShiftCause) {}

template <typename Stream>
inline void append_json(Stream& out, const Snapshot&) {
  out << "{\"ops\": 0, \"hops_per_op\": 0, \"cert_fail_rate\": 0"
      << ", \"shift_race_rate\": 0, \"epoch_pins\": 0, \"epoch_advances\": 0"
      << ", \"hazard_pins\": 0, \"slot_steals\": 0, \"counters\": {}}";
}

template <typename Stream>
inline void write_text(Stream& out, const Snapshot&) {
  out << "obs: compiled out (R2D_OBS=0)\n";
}

#endif  // R2D_OBS

}  // namespace r2d::obs
