#!/usr/bin/env bash
# Tier-1 verify plus a fast smoke bench and the recorded perf trajectory.
#
# Usage: scripts/ci.sh [build-dir]
#   R2D_SANITIZER=asan|tsan  configure the sanitizer toggle
#
# Sanitizer configs additionally smoke the packed-head and allocation
# benches (packed pointers and free-list splices are easy to get wrong
# under ASan/TSan); the plain config adds a Release-mode perf smoke that
# records machine-readable bench points as BENCH_micro.json /
# BENCH_fig2.json / BENCH_alloc.json / BENCH_service.json (ops/s per
# structure — or, for the service file, CO-safe response quantiles and
# shed rates — host core count, git sha; see bench/common.hpp and
# bench/service_dispatch.cpp for the schemas).
#
# Every config also builds and tests with -DR2D_OBS=0 (the obs subsystem
# compiled out), with -DR2D_FAULT=1 (injector in), and with -DR2D_SCHED=1
# (deterministic scheduler in, including a seeded schedule sweep that
# crosses 1000 history-checked schedules in the plain config and writes
# BENCH_sched.json). The plain config ends with overhead guards: paired
# Release micro_ops runs — metrics-on vs R2D_OBS=0, default vs dormant
# R2D_FAULT=1, default vs dormant R2D_SCHED=1 — must each stay within 5%.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SANITIZER="${R2D_SANITIZER:-}"

cmake -B "$BUILD_DIR" -S . -DR2D_SANITIZER="$SANITIZER"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure --timeout 180 -j "$(nproc)"

# Zero-cost-when-off is a build-matrix claim, not just a perf claim: every
# config (plain/asan/tsan) also compiles and tests with the obs subsystem
# stubbed out, so the disabled specializations keep full API parity and no
# instrumented call site grows an #ifdef.
echo "=== off-build: R2D_OBS=0 ==="
cmake -B "$BUILD_DIR-noobs" -S . -DR2D_SANITIZER="$SANITIZER" -DR2D_OBS=0
cmake --build "$BUILD_DIR-noobs" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR-noobs" --output-on-failure --timeout 180 -j "$(nproc)"

# Fault-injection arm (DESIGN.md §15): every config (plain/asan/tsan) also
# builds with the injector compiled in and runs the full tier-1 suite —
# test_fault's deterministic nth-site OOM sweep and forced-DWCAS hammer
# only bite here (the default build compiles injection to nothing).
echo "=== fault build: R2D_FAULT=1 ==="
cmake -B "$BUILD_DIR-fault" -S . -DR2D_SANITIZER="$SANITIZER" -DR2D_FAULT=1
cmake --build "$BUILD_DIR-fault" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR-fault" --output-on-failure --timeout 180 -j "$(nproc)"
# Rate torture: the same binary re-run under an env-selected random
# injection policy — 4-thread hammers where ~2% of every resource
# acquisition, steal pass, shift CAS, and DWCAS fails, with multiset
# conservation asserted after the storm.
echo "=== fault rate torture: R2D_FAULT=rate:0.02 ==="
R2D_FAULT=rate:0.02 R2D_FAULT_SEED=7 "$BUILD_DIR-fault/tests/test_fault"
# Deterministic single-shot replay of the same binary under a global-nth
# policy, exercising the env-configured (not test-configured) path.
echo "=== fault env torture: R2D_FAULT=nth:1000 ==="
R2D_FAULT=nth:1000 R2D_FAULT_SEED=7 "$BUILD_DIR-fault/tests/test_fault"

# Scheduler arm (DESIGN.md §16): every config also builds with the sched/
# deterministic scheduler compiled in and runs the full tier-1 suite —
# test_sched's replay-determinism, linearizability, and k-bound checks
# only explore schedules here (the default build stubs the scheduler).
echo "=== sched build: R2D_SCHED=1 ==="
cmake -B "$BUILD_DIR-sched" -S . -DR2D_SANITIZER="$SANITIZER" -DR2D_SCHED=1
cmake --build "$BUILD_DIR-sched" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR-sched" --output-on-failure --timeout 180 \
  -j "$(nproc)"
# Seed sweep: seeds x {random, pct:1, pct:3} x 5 history-checked suites
# per seed. The plain config crosses the 1000-schedule bar (70*3*5 =
# 1050 + the fixed replay/budget schedules); sanitizer configs run a
# shorter sweep for wall-clock budget — the schedules themselves are
# identical, only the count differs.
if [ -z "$SANITIZER" ]; then
  SCHED_SWEEP_SEEDS=70
else
  SCHED_SWEEP_SEEDS=12
fi
echo "=== sched seed sweep: $SCHED_SWEEP_SEEDS seeds x 3 policies ==="
R2D_SCHED_SWEEP_SEEDS="$SCHED_SWEEP_SEEDS" "$BUILD_DIR-sched/tests/test_sched"
# Exploration bench smoke: the sweep table + BENCH_sched.json must report
# zero oracle violations and zero perturbed (budget-blown) runs.
echo "=== smoke: sched_explore -> BENCH_sched.json ==="
rm -f BENCH_sched.json
R2D_GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
  R2D_SCHED_SWEEP_SEEDS=8 R2D_BENCH_JSON=BENCH_sched.json \
  "$BUILD_DIR-sched/sched_explore"
test -s BENCH_sched.json
grep -q '"sched_compiled": true' BENCH_sched.json
grep -q '"policy": "pct:3"' BENCH_sched.json
grep -q '"structure": "2D-deque"' BENCH_sched.json
if grep -q '"bugs": [1-9]' BENCH_sched.json; then
  echo "sched_explore recorded oracle violations" >&2
  exit 1
fi
if grep -q '"perturbed": [1-9]' BENCH_sched.json; then
  echo "sched_explore recorded perturbed (non-replayable) runs" >&2
  exit 1
fi

# Smoke one figure bench end to end with tiny settings: catches crashes and
# hangs in the measured loops that unit tests cannot.
echo "=== smoke: fig1_relaxation_sweep ==="
R2D_DURATION_MS=20 R2D_REPEATS=1 R2D_MAX_THREADS=2 \
  "$BUILD_DIR/fig1_relaxation_sweep"
echo "=== smoke: fig2_thread_sweep ==="
R2D_DURATION_MS=20 R2D_REPEATS=1 R2D_MAX_THREADS=2 R2D_PREFILL=4096 \
  "$BUILD_DIR/fig2_thread_sweep"
# The deque exercises the shared window engine plus BOTH column backends
# (R2D_DEQUE_COLS defaults to `both`: locked and dwcas rows run in one
# invocation) under whatever sanitizer this config selected — the DWCAS
# two-word head protocol is hammered under ASan and TSan here. A second
# pass pins R2D_DEQUE_COLS=locked so the fallback arm hosts without a
# 16-byte CAS would take is exercised explicitly everywhere.
echo "=== smoke: ext_deque_scaling (backend A/B) ==="
R2D_DURATION_MS=20 R2D_REPEATS=1 R2D_MAX_THREADS=2 R2D_PREFILL=4096 \
  "$BUILD_DIR/ext_deque_scaling"
echo "=== smoke: ext_deque_scaling (locked fallback arm) ==="
R2D_DEQUE_COLS=locked \
  R2D_DURATION_MS=20 R2D_REPEATS=1 R2D_MAX_THREADS=2 R2D_PREFILL=4096 \
  "$BUILD_DIR/ext_deque_scaling"
# The open-loop service harness end to end (generator pacing, admission
# shedding, drain) at a low rate and short horizon — under ASan/TSan this
# is the only place the bag's take certification and the dispatch drain
# race run against a real arrival schedule. The bench itself exits
# nonzero on any conservation violation.
echo "=== smoke: service_dispatch ==="
R2D_DURATION_MS=50 R2D_OFFERED_LOAD=20000 R2D_MAX_THREADS=2 \
  R2D_SHED_CAP=256 "$BUILD_DIR/service_dispatch"
# Slot-lease churn smoke (DESIGN.md §13): spawn-per-request dispatch so
# thousands of short-lived threads lease and release reclaimer/allocator
# slots on one long-lived container. Under ASan this checks the orphan
# handoff frees cleanly; under TSan it races exit walks against claims
# and steals. The bench exits nonzero if the slot HWM exceeds the
# dispatcher count + O(1).
echo "=== smoke: service_dispatch (churn arm only) ==="
R2D_CHURN_ONLY=1 R2D_DURATION_MS=40 R2D_OFFERED_LOAD=30000 \
  R2D_MAX_THREADS=2 R2D_SHED_CAP=256 "$BUILD_DIR/service_dispatch"
if [ -x "$BUILD_DIR/micro_ops" ]; then
  # Runs under whatever sanitizer this config selected — the assertion
  # that the packed head-word fast paths are clean under ASan/TSan too.
  # The filter also covers the TreiberPool/TwoDPool rows, so the
  # pool-policy containers recycle under ASan (real frees) and TSan.
  echo "=== smoke: micro_ops ==="
  "$BUILD_DIR/micro_ops" --benchmark_filter='single/' \
    --benchmark_min_time=0.02
fi
if [ -x "$BUILD_DIR/ablation_allocation" ]; then
  # The allocation matrix (heap / pool / pool+magazine, solo + contended)
  # under ASan exercises real slab recycling; under TSan it hammers the
  # tagged splice CASes.
  echo "=== smoke: ablation_allocation ==="
  "$BUILD_DIR/ablation_allocation" --benchmark_min_time=0.02
fi

# Perf trajectory: a Release-mode smoke that records bench points. Skipped
# under sanitizers (their timings are noise, and the plain config is the
# one every CI run executes first).
if [ -z "$SANITIZER" ]; then
  PERF_DIR=build-perf
  GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  # Drop stale trajectory files so the -s assertions below can only pass
  # on output this run actually wrote.
  rm -f BENCH_micro.json BENCH_fig2.json BENCH_deque.json BENCH_alloc.json \
        BENCH_service.json
  cmake -B "$PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DR2D_SANITIZER=
  cmake --build "$PERF_DIR" -j "$(nproc)"
  if [ -x "$PERF_DIR/micro_ops" ]; then
    echo "=== perf smoke: micro_ops -> BENCH_micro.json ==="
    R2D_GIT_SHA="$GIT_SHA" R2D_BENCH_JSON=BENCH_micro.json \
      "$PERF_DIR/micro_ops" --benchmark_filter='single/' \
      --benchmark_min_time=0.05
    test -s BENCH_micro.json
    # Every point must carry the merged engine-metrics object (DESIGN.md
    # §14): derived rates plus the raw counter map.
    grep -q '"metrics"' BENCH_micro.json
    grep -q '"hops_per_op"' BENCH_micro.json
  else
    echo "perf smoke: micro_ops not built (no google-benchmark); skipping" \
         "BENCH_micro.json"
  fi
  if [ -x "$PERF_DIR/ablation_allocation" ]; then
    echo "=== perf smoke: ablation_allocation -> BENCH_alloc.json ==="
    R2D_GIT_SHA="$GIT_SHA" R2D_BENCH_JSON=BENCH_alloc.json \
      "$PERF_DIR/ablation_allocation" --benchmark_min_time=0.05
    test -s BENCH_alloc.json
  else
    echo "perf smoke: ablation_allocation not built (no google-benchmark);" \
         "skipping BENCH_alloc.json"
  fi
  echo "=== perf smoke: fig2_thread_sweep -> BENCH_fig2.json ==="
  R2D_GIT_SHA="$GIT_SHA" R2D_BENCH_JSON=BENCH_fig2.json \
    R2D_DURATION_MS=100 R2D_REPEATS=1 R2D_MAX_THREADS=2 R2D_PREFILL=4096 \
    "$PERF_DIR/fig2_thread_sweep"
  test -s BENCH_fig2.json
  # Records the locked-vs-dwcas paired A/B (backend x allocator rows plus
  # the front-ratio sweep) into the deque trajectory file.
  echo "=== perf smoke: ext_deque_scaling -> BENCH_deque.json ==="
  R2D_GIT_SHA="$GIT_SHA" R2D_BENCH_JSON=BENCH_deque.json \
    R2D_DURATION_MS=100 R2D_REPEATS=1 R2D_MAX_THREADS=2 R2D_PREFILL=4096 \
    "$PERF_DIR/ext_deque_scaling"
  test -s BENCH_deque.json
  grep -q 'dwcas' BENCH_deque.json
  grep -q 'locked' BENCH_deque.json
  # The open-loop trajectory: container x arrival x offered load with
  # CO-safe quantiles, shed rate, and displacement. At least one row per
  # scheduling core must be present.
  echo "=== perf smoke: service_dispatch -> BENCH_service.json ==="
  R2D_GIT_SHA="$GIT_SHA" R2D_BENCH_JSON=BENCH_service.json \
    R2D_DURATION_MS=100 R2D_MAX_THREADS=2 \
    "$PERF_DIR/service_dispatch"
  test -s BENCH_service.json
  grep -q '"structure": "2D-bag"' BENCH_service.json
  grep -q '"structure": "2D-stack"' BENCH_service.json
  grep -q '"structure": "2D-queue"' BENCH_service.json
  # The churn arm's row must be recorded too: spawn mode with its slot
  # high-water mark and ephemeral thread count (EXPERIMENTS.md E15).
  grep -q '"mode": "spawn"' BENCH_service.json
  grep -q '"slot_hwm"' BENCH_service.json
  # Service rows carry a per-run metrics delta and the histogram's
  # saturation tally alongside the CO-safe quantiles.
  grep -q '"metrics"' BENCH_service.json
  grep -q '"hops_per_op"' BENCH_service.json
  grep -q '"saturated"' BENCH_service.json
  # Overload-degradation counters (PR 9): every row reports its retry,
  # deadline, and degraded-mode accounting even when the knobs are off.
  grep -q '"retries"' BENCH_service.json
  grep -q '"timed_out"' BENCH_service.json
  grep -q '"degraded_entries"' BENCH_service.json
  grep -q '"degraded"' BENCH_service.json

  # Overhead guard: metrics-on (runtime default) vs an R2D_OBS=0 build of
  # the same Release tree must stay within 5% on the single-threaded
  # micro_ops fast paths. Best-of-3 per benchmark, runs interleaved so
  # thermal drift hits both sides equally.
  NOOBS_PERF_DIR=build-perf-noobs
  cmake -B "$NOOBS_PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
    -DR2D_SANITIZER= -DR2D_OBS=0
  cmake --build "$NOOBS_PERF_DIR" -j "$(nproc)"
  if [ -x "$PERF_DIR/micro_ops" ] && [ -x "$NOOBS_PERF_DIR/micro_ops" ]; then
    echo "=== overhead guard: metrics-on vs R2D_OBS=0 micro_ops ==="
    # --benchmark_out, not --benchmark_format: the display side is pinned
    # to the capturing console reporter, but the file reporter still
    # honors the out-format flags.
    for i in 1 2 3 4 5; do
      R2D_METRICS=1 "$PERF_DIR/micro_ops" --benchmark_filter='single/' \
        --benchmark_min_time=0.05 --benchmark_out="obs_on_$i.json" \
        --benchmark_out_format=json > /dev/null
      "$NOOBS_PERF_DIR/micro_ops" --benchmark_filter='single/' \
        --benchmark_min_time=0.05 --benchmark_out="obs_off_$i.json" \
        --benchmark_out_format=json > /dev/null
    done
    # Suite-level criterion (geomean of best-of-5 ratios): single-benchmark
    # ratios on shared CI hosts swing several percent between *identical*
    # binaries, so a per-benchmark assertion would flake on noise; the
    # geomean across the 50/50 suite is what the 5% budget bounds.
    python3 - <<'PY'
import json
import math

def best(paths):
    out = {}
    for p in paths:
        with open(p) as f:
            rows = json.load(f)["benchmarks"]
        for b in rows:
            t = b["real_time"]
            if b["name"] not in out or t < out[b["name"]]:
                out[b["name"]] = t
    return out

on = best(["obs_on_%d.json" % i for i in (1, 2, 3, 4, 5)])
off = best(["obs_off_%d.json" % i for i in (1, 2, 3, 4, 5)])
logsum, n = 0.0, 0
for name in sorted(off):
    if name not in on:
        continue
    ratio = on[name] / off[name]
    logsum += math.log(ratio)
    n += 1
    print("  %-40s off=%8.1fns on=%8.1fns (%+.1f%%)"
          % (name, off[name], on[name], 100.0 * (ratio - 1.0)))
if n == 0:
    raise SystemExit("overhead guard: no common benchmarks")
geomean = math.exp(logsum / n) - 1.0
if geomean > 0.05:
    raise SystemExit("metrics overhead %.1f%% (geomean) exceeds the 5%% "
                     "budget" % (100.0 * geomean))
print("overhead guard: geomean %+.1f%% over %d benchmarks (budget 5%%)"
      % (100.0 * geomean, n))
PY
    rm -f obs_on_1.json obs_on_2.json obs_on_3.json obs_on_4.json \
          obs_on_5.json obs_off_1.json obs_off_2.json obs_off_3.json \
          obs_off_4.json obs_off_5.json
  else
    echo "overhead guard: micro_ops not built (no google-benchmark); skipped"
  fi

  # Fault overhead guard (same harness shape as the obs one): a Release
  # build with the injector compiled in but its policy off must stay
  # within 5% (geomean) of the default build — the "one relaxed load per
  # site" claim, measured. The default build's own zero cost is
  # structural: should_fail is constexpr false, so every fault point
  # dead-code-eliminates (test_fault asserts the API parity).
  FAULT_PERF_DIR=build-perf-fault
  cmake -B "$FAULT_PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
    -DR2D_SANITIZER= -DR2D_FAULT=1
  cmake --build "$FAULT_PERF_DIR" -j "$(nproc)"
  if [ -x "$PERF_DIR/micro_ops" ] && [ -x "$FAULT_PERF_DIR/micro_ops" ]; then
    echo "=== overhead guard: default vs R2D_FAULT=1 (policy off) ==="
    for i in 1 2 3 4 5; do
      R2D_FAULT=off "$FAULT_PERF_DIR/micro_ops" \
        --benchmark_filter='single/' --benchmark_min_time=0.05 \
        --benchmark_out="fault_on_$i.json" --benchmark_out_format=json \
        > /dev/null
      "$PERF_DIR/micro_ops" --benchmark_filter='single/' \
        --benchmark_min_time=0.05 --benchmark_out="fault_off_$i.json" \
        --benchmark_out_format=json > /dev/null
    done
    python3 - <<'PY'
import json
import math

def best(paths):
    out = {}
    for p in paths:
        with open(p) as f:
            rows = json.load(f)["benchmarks"]
        for b in rows:
            t = b["real_time"]
            if b["name"] not in out or t < out[b["name"]]:
                out[b["name"]] = t
    return out

on = best(["fault_on_%d.json" % i for i in (1, 2, 3, 4, 5)])
off = best(["fault_off_%d.json" % i for i in (1, 2, 3, 4, 5)])
logsum, n = 0.0, 0
for name in sorted(off):
    if name not in on:
        continue
    ratio = on[name] / off[name]
    logsum += math.log(ratio)
    n += 1
    print("  %-40s off=%8.1fns on=%8.1fns (%+.1f%%)"
          % (name, off[name], on[name], 100.0 * (ratio - 1.0)))
if n == 0:
    raise SystemExit("fault overhead guard: no common benchmarks")
geomean = math.exp(logsum / n) - 1.0
if geomean > 0.05:
    raise SystemExit("fault-injection overhead %.1f%% (geomean) exceeds "
                     "the 5%% budget" % (100.0 * geomean))
print("fault overhead guard: geomean %+.1f%% over %d benchmarks "
      "(budget 5%%)" % (100.0 * geomean, n))
PY
    rm -f fault_on_1.json fault_on_2.json fault_on_3.json fault_on_4.json \
          fault_on_5.json fault_off_1.json fault_off_2.json \
          fault_off_3.json fault_off_4.json fault_off_5.json
  else
    echo "fault overhead guard: micro_ops not built; skipped"
  fi

  # Sched overhead guard (same harness shape): a Release build with the
  # scheduler compiled in but dormant (R2D_SCHED=off) must stay within 5%
  # (geomean) of the default build — the cost of a dormant hook point is
  # one relaxed load, measured. The default build's zero cost is
  # structural: preempt_point() is constexpr empty (test_sched asserts
  # the stub's API parity).
  SCHED_PERF_DIR=build-perf-sched
  cmake -B "$SCHED_PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
    -DR2D_SANITIZER= -DR2D_SCHED=1
  cmake --build "$SCHED_PERF_DIR" -j "$(nproc)"
  if [ -x "$PERF_DIR/micro_ops" ] && [ -x "$SCHED_PERF_DIR/micro_ops" ]; then
    echo "=== overhead guard: default vs R2D_SCHED=1 (policy off) ==="
    for i in 1 2 3 4 5; do
      R2D_SCHED=off "$SCHED_PERF_DIR/micro_ops" \
        --benchmark_filter='single/' --benchmark_min_time=0.05 \
        --benchmark_out="sched_on_$i.json" --benchmark_out_format=json \
        > /dev/null
      "$PERF_DIR/micro_ops" --benchmark_filter='single/' \
        --benchmark_min_time=0.05 --benchmark_out="sched_off_$i.json" \
        --benchmark_out_format=json > /dev/null
    done
    python3 - <<'PY'
import json
import math

def best(paths):
    out = {}
    for p in paths:
        with open(p) as f:
            rows = json.load(f)["benchmarks"]
        for b in rows:
            t = b["real_time"]
            if b["name"] not in out or t < out[b["name"]]:
                out[b["name"]] = t
    return out

on = best(["sched_on_%d.json" % i for i in (1, 2, 3, 4, 5)])
off = best(["sched_off_%d.json" % i for i in (1, 2, 3, 4, 5)])
logsum, n = 0.0, 0
for name in sorted(off):
    if name not in on:
        continue
    ratio = on[name] / off[name]
    logsum += math.log(ratio)
    n += 1
    print("  %-40s off=%8.1fns on=%8.1fns (%+.1f%%)"
          % (name, off[name], on[name], 100.0 * (ratio - 1.0)))
if n == 0:
    raise SystemExit("sched overhead guard: no common benchmarks")
geomean = math.exp(logsum / n) - 1.0
if geomean > 0.05:
    raise SystemExit("dormant-scheduler overhead %.1f%% (geomean) exceeds "
                     "the 5%% budget" % (100.0 * geomean))
print("sched overhead guard: geomean %+.1f%% over %d benchmarks "
      "(budget 5%%)" % (100.0 * geomean, n))
PY
    rm -f sched_on_1.json sched_on_2.json sched_on_3.json sched_on_4.json \
          sched_on_5.json sched_off_1.json sched_off_2.json \
          sched_off_3.json sched_off_4.json sched_off_5.json
  else
    echo "sched overhead guard: micro_ops not built; skipped"
  fi
fi

echo "ci.sh: all green"
