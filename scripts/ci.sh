#!/usr/bin/env bash
# Tier-1 verify plus a fast smoke bench.
#
# Usage: scripts/ci.sh [build-dir]
#   R2D_SANITIZER=asan|tsan  configure the sanitizer toggle
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SANITIZER="${R2D_SANITIZER:-}"

cmake -B "$BUILD_DIR" -S . -DR2D_SANITIZER="$SANITIZER"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Smoke one figure bench end to end with tiny settings: catches crashes and
# hangs in the measured loops that unit tests cannot.
echo "=== smoke: fig1_relaxation_sweep ==="
R2D_DURATION_MS=20 R2D_REPEATS=1 R2D_MAX_THREADS=2 \
  "$BUILD_DIR/fig1_relaxation_sweep"
echo "=== smoke: fig2_thread_sweep ==="
R2D_DURATION_MS=20 R2D_REPEATS=1 R2D_MAX_THREADS=2 R2D_PREFILL=4096 \
  "$BUILD_DIR/fig2_thread_sweep"

echo "ci.sh: all green"
