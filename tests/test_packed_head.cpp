// Packed head-word tests: pack/unpack round trips, count saturation at the
// 16-bit ceiling (sticky until empty, exact below it), the
// TwoDParams::validate() rejection of shapes that could overflow the
// packed count, and a one-column concurrent stress that hammers a single
// packed CAS word to hunt ABA (run under TSan/ASan by the sanitizer CI
// configs).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "core/substack.hpp"
#include "core/two_d_stack.hpp"
#include "stacks/treiber_stack.hpp"
#include "check.hpp"

namespace {

using Node = r2d::core::StackNode<std::uint64_t>;
using r2d::core::head_count;
using r2d::core::head_node;
using r2d::core::kPackedCountMax;
using r2d::core::pack_head;
using r2d::core::packed_count_after_pop;
using r2d::core::packed_count_after_push;

void round_trips() {
  Node stack_node{nullptr, 7};
  Node* heap_node = new Node{nullptr, 9};
  for (Node* node : {static_cast<Node*>(nullptr), &stack_node, heap_node}) {
    for (std::uint64_t count :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2},
          std::uint64_t{100}, kPackedCountMax - 1, kPackedCountMax}) {
      const std::uint64_t word = pack_head(node, count);
      CHECK(head_node<std::uint64_t>(word) == node);
      CHECK_EQ(head_count(word), count);
    }
  }
  // Empty column is all-zeroes: nullptr at count 0 packs to the word the
  // zero-initialized column starts with.
  CHECK_EQ(pack_head(static_cast<Node*>(nullptr), 0), std::uint64_t{0});
  delete heap_node;
}

void saturation_protocol() {
  Node a{nullptr, 1};
  Node b{&a, 2};
  // Push: exact below the ceiling, saturating at it.
  CHECK_EQ(packed_count_after_push(pack_head(&a, 5)), std::uint64_t{6});
  CHECK_EQ(packed_count_after_push(pack_head(&a, kPackedCountMax - 1)),
           kPackedCountMax);
  CHECK_EQ(packed_count_after_push(pack_head(&a, kPackedCountMax)),
           kPackedCountMax);
  // Pop: exact decrement below the ceiling; a saturated count is sticky
  // while the column is non-empty and resets to zero when it empties.
  CHECK_EQ(packed_count_after_pop(pack_head(&b, 5), b.next), std::uint64_t{4});
  CHECK_EQ(packed_count_after_pop(pack_head(&b, kPackedCountMax), b.next),
           kPackedCountMax);
  CHECK_EQ(packed_count_after_pop(pack_head(&a, kPackedCountMax), a.next),
           std::uint64_t{0});
  CHECK_EQ(packed_count_after_pop(pack_head(&a, 1), a.next), std::uint64_t{0});
}

/// Drive a real column past the 16-bit ceiling: the count saturates, no
/// value is lost, and draining resets the count == 0 <=> empty invariant.
void treiber_past_the_ceiling() {
  const std::uint64_t n = kPackedCountMax + 5000;  // > 2^16 - 1 items
  r2d::stacks::TreiberStack<std::uint64_t> stack;
  for (std::uint64_t i = 0; i < n; ++i) stack.push(i);
  CHECK_EQ(stack.approx_size(), kPackedCountMax);  // saturated, not wrapped
  CHECK(!stack.empty());

  // Strict LIFO survives saturation: values come back in reverse.
  for (std::uint64_t i = n; i-- > 0;) {
    const auto v = stack.pop();
    CHECK(v.has_value());
    CHECK_EQ(*v, i);
  }
  CHECK(stack.empty());
  CHECK_EQ(stack.approx_size(), std::uint64_t{0});  // reset on empty
  CHECK(!stack.pop().has_value());
}

void validate_rejects_overflowing_windows() {
  // depth beyond the packed ceiling could let a single window hold more
  // items than the 16-bit count can represent.
  for (const std::uint64_t depth :
       {r2d::core::kMaxWindowDepth + 1, kPackedCountMax, kPackedCountMax + 1,
        std::uint64_t{1} << 20}) {
    bool threw = false;
    try {
      r2d::core::TwoDParams{4, depth, 1}.validate();
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }
  // The deepest valid window is accepted.
  r2d::core::TwoDParams{4, r2d::core::kMaxWindowDepth, 1}.validate();
}

/// One-column packed-CAS ABA hunt: every thread hammers the same head
/// word, so a recycled node re-pushed at a recurring count is as likely as
/// it gets. Multiset in == multiset out proves no torn/ABA-corrupted CAS.
void one_column_hammer() {
  r2d::core::TwoDParams p;
  p.width = 1;
  p.depth = 64;
  p.shift = 32;
  r2d::TwoDStack<std::uint64_t> stack(p);

  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOps = 30000;
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> workers;
  std::atomic<unsigned> ready{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      std::uint64_t label = (static_cast<std::uint64_t>(t) << 32) + 1;
      for (std::uint64_t i = 0; i < kOps; ++i) {
        stack.push(label++);
        if (i % 2 == 1) {
          if (const auto v = stack.pop()) popped[t].push_back(*v);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<std::uint64_t> seen;
  for (const auto& per_thread : popped) {
    seen.insert(seen.end(), per_thread.begin(), per_thread.end());
  }
  while (const auto v = stack.pop()) seen.push_back(*v);
  CHECK_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kOps);
  std::sort(seen.begin(), seen.end());
  CHECK(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
  for (unsigned t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 1; i <= kOps; ++i) {
      CHECK(std::binary_search(seen.begin(), seen.end(),
                               (static_cast<std::uint64_t>(t) << 32) + i));
    }
  }
  CHECK(stack.empty());
  CHECK_EQ(stack.approx_size(), std::uint64_t{0});
}

/// Two stacks of the same instantiation on one thread: the
/// instance-id-keyed preferred column must keep their fast paths apart
/// (the old bare thread_local aliased them).
void preferred_index_isolation() {
  r2d::core::TwoDParams wide;
  wide.width = 16;
  wide.depth = 4;
  wide.shift = 2;
  r2d::TwoDStack<std::uint64_t> a(wide);
  r2d::core::TwoDParams narrow;
  narrow.width = 1;
  narrow.depth = 4;
  narrow.shift = 2;
  r2d::TwoDStack<std::uint64_t> b(narrow);

  // Interleave: a's preferred column can roam over 16 columns while b's
  // must stay pinned at 0. With aliased state, a's roaming index lands in
  // b (masked only by the width re-clamp) and vice versa; the multiset
  // checks below still catch any cross-pollution that breaks routing.
  for (std::uint64_t i = 0; i < 2000; ++i) {
    a.push(i);
    b.push(i);
    if (i % 3 == 2) {
      CHECK(a.pop().has_value());
      CHECK(b.pop().has_value());
    }
  }
  std::uint64_t a_items = 0;
  while (a.pop()) ++a_items;
  std::uint64_t b_items = 0;
  while (b.pop()) ++b_items;
  CHECK_EQ(a_items, std::uint64_t{2000 - 666});
  CHECK_EQ(b_items, std::uint64_t{2000 - 666});
}

}  // namespace

int main() {
  round_trips();
  saturation_protocol();
  treiber_past_the_ceiling();
  validate_rejects_overflowing_windows();
  one_column_hammer();
  preferred_index_isolation();
  return TEST_MAIN_RESULT();
}
