// Unit tests for the shared window-sweep engine (core/window.hpp) against
// scripted mock columns — hop-mode streaks, certification thresholds,
// contention restarts, and the monotonic window shift — so engine
// regressions fail without a full container. Plus the 2D-queue put/get
// window coupling: the get window must stay bounded by enqueue progress.
#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_queue.hpp"
#include "core/window.hpp"
#include "check.hpp"

namespace {

using r2d::core::Certified;
using r2d::core::HopMode;
using r2d::core::Probe;
using r2d::core::TwoDParams;

TwoDParams shape(std::size_t width, HopMode mode) {
  TwoDParams p;
  p.width = width;
  p.depth = 4;
  p.shift = 2;
  p.hop_mode = mode;
  return p;
}

/// Round-robin: a failed sweep is certified after exactly `width`
/// consecutive ineligible probes (the seeding fast-path failure counts as
/// the first), visiting columns consecutively.
void check_round_robin_streak() {
  const TwoDParams p = shape(4, HopMode::kRoundRobinOnly);
  std::atomic<std::uint64_t> window{p.depth};
  std::vector<std::size_t> probes;
  unsigned certified_calls = 0;
  const bool success = r2d::core::drive_window_sweep(
      p, window, /*start=*/0, window.load(), Probe::kIneligible,
      [&](std::size_t i, std::uint64_t) {
        probes.push_back(i);
        return Probe::kIneligible;
      },
      [&](std::size_t, std::uint64_t) { return false; },
      [&](std::uint64_t) {
        ++certified_calls;
        return Certified::stop();
      });
  CHECK(!success);
  CHECK_EQ(certified_calls, 1u);
  const std::vector<std::size_t> expected = {1, 2, 3};
  CHECK(probes == expected);
}

/// A lost CAS (contention) restarts certification: the observed column was
/// eligible, so the streak must re-cover every column afterwards.
void check_contention_restart() {
  const TwoDParams p = shape(4, HopMode::kRoundRobinOnly);
  std::atomic<std::uint64_t> window{p.depth};
  std::vector<std::size_t> probes;
  const bool success = r2d::core::drive_window_sweep(
      p, window, /*start=*/0, window.load(), Probe::kIneligible,
      [&](std::size_t i, std::uint64_t) {
        probes.push_back(i);
        // Second probe pretends to lose a CAS on an eligible column.
        return probes.size() == 2 ? Probe::kContended : Probe::kIneligible;
      },
      [&](std::size_t, std::uint64_t) { return false; },
      [&](std::uint64_t) { return Certified::stop(); });
  CHECK(!success);
  // Seed(0 implicit) + probes 1, 2(contended) then a full fresh streak of
  // width probes: 3, 0, 1, 2.
  const std::vector<std::size_t> expected = {1, 2, 3, 0, 1, 2};
  CHECK(probes == expected);
}

/// Hybrid: `width` random probes (seed included), then a round-robin
/// streak covering every column consecutively, then certification.
void check_hybrid_streak() {
  const TwoDParams p = shape(4, HopMode::kHybrid);
  std::atomic<std::uint64_t> window{p.depth};
  std::vector<std::size_t> probes;
  unsigned certified_calls = 0;
  const bool success = r2d::core::drive_window_sweep(
      p, window, /*start=*/0, window.load(), Probe::kIneligible,
      [&](std::size_t i, std::uint64_t) {
        probes.push_back(i);
        return Probe::kIneligible;
      },
      [&](std::size_t, std::uint64_t) { return false; },
      [&](std::uint64_t) {
        ++certified_calls;
        return Certified::stop();
      });
  CHECK(!success);
  CHECK_EQ(certified_calls, 1u);
  // 3 random attempts (the seed was the 4th random probe) + 4 streak.
  CHECK_EQ(probes.size(), std::size_t{7});
  for (std::size_t k = 4; k < 7; ++k) {
    CHECK_EQ(probes[k], (probes[k - 1] + 1) % p.width);
  }
}

/// Random-only cannot certify from its probes: after `width` random hops
/// the engine pays a read-only verify scan, resumes at any column the scan
/// reports eligible, and only consults the container once a scan is clean.
void check_random_only_verify_scan() {
  const TwoDParams p = shape(4, HopMode::kRandomOnly);
  std::atomic<std::uint64_t> window{p.depth};
  std::vector<std::size_t> probes;
  std::vector<std::size_t> scanned;
  bool redirect_armed = true;
  bool redirected_probe_seen = false;
  unsigned certified_calls = 0;
  const bool success = r2d::core::drive_window_sweep(
      p, window, /*start=*/0, window.load(), Probe::kIneligible,
      [&](std::size_t i, std::uint64_t) {
        probes.push_back(i);
        if (!redirect_armed && !redirected_probe_seen) {
          // First probe after the redirecting scan must hit column 2.
          redirected_probe_seen = true;
          CHECK_EQ(i, std::size_t{2});
        }
        return Probe::kIneligible;
      },
      [&](std::size_t i, std::uint64_t) {
        scanned.push_back(i);
        if (redirect_armed && i == 2) {
          redirect_armed = false;
          return true;  // first scan finds column 2 eligible
        }
        return false;
      },
      [&](std::uint64_t) {
        ++certified_calls;
        return Certified::stop();
      });
  CHECK(!success);
  CHECK(redirected_probe_seen);
  CHECK_EQ(certified_calls, 1u);
  // First scan stopped at its redirect target; the clean scan covered all.
  CHECK(scanned.size() >= p.width + 1);
  const std::vector<std::size_t> first_scan(scanned.begin(),
                                            scanned.begin() + 3);
  CHECK(first_scan == (std::vector<std::size_t>{0, 1, 2}));
}

/// Certified shifts install the proposed window value with one CAS and the
/// sweep restarts under it; the window only ever moves through proposed
/// values (monotonic rule).
void check_monotonic_shift() {
  const TwoDParams p = shape(2, HopMode::kRoundRobinOnly);
  std::atomic<std::uint64_t> window{10};
  std::vector<std::uint64_t> seen_max;
  std::vector<std::uint64_t> shifts;
  const bool success = r2d::core::drive_window_sweep(
      p, window, /*start=*/0, window.load(), Probe::kIneligible,
      [&](std::size_t, std::uint64_t m) {
        seen_max.push_back(m);
        return m >= 14 ? Probe::kSuccess : Probe::kIneligible;
      },
      [&](std::size_t, std::uint64_t) { return false; },
      [&](std::uint64_t m) {
        shifts.push_back(m + 2);
        return Certified::shift_to(m + 2);
      });
  CHECK(success);
  CHECK_EQ(window.load(), std::uint64_t{14});
  CHECK(shifts == (std::vector<std::uint64_t>{12, 14}));
  for (std::size_t k = 1; k < seen_max.size(); ++k) {
    CHECK(seen_max[k] >= seen_max[k - 1]);  // never observed moving back
  }
}

/// A concurrent window move (simulated mid-sweep) resets certification:
/// the engine re-reads the window before every probe and must re-cover
/// every column under the new value before certifying.
void check_window_change_resets() {
  const TwoDParams p = shape(3, HopMode::kRoundRobinOnly);
  std::atomic<std::uint64_t> window{5};
  unsigned attempts = 0;
  std::uint64_t certified_max = 0;
  const bool success = r2d::core::drive_window_sweep(
      p, window, /*start=*/0, /*max=*/5, Probe::kIneligible,
      [&](std::size_t, std::uint64_t) {
        if (++attempts == 1) window.store(7);  // "another thread" shifts
        return Probe::kIneligible;
      },
      [&](std::size_t, std::uint64_t) { return false; },
      [&](std::uint64_t m) {
        certified_max = m;
        return Certified::stop();
      });
  CHECK(!success);
  CHECK_EQ(certified_max, std::uint64_t{7});
  // 1 probe under the old window + a full fresh streak of 3 under the new.
  CHECK_EQ(attempts, 4u);
}

/// Certified::restart_at sends the next probe to the named column.
void check_certified_restart() {
  const TwoDParams p = shape(4, HopMode::kRoundRobinOnly);
  std::atomic<std::uint64_t> window{p.depth};
  std::vector<std::size_t> probes;
  bool redirected = false;
  const bool success = r2d::core::drive_window_sweep(
      p, window, /*start=*/0, window.load(), Probe::kIneligible,
      [&](std::size_t i, std::uint64_t) {
        probes.push_back(i);
        return Probe::kIneligible;
      },
      [&](std::size_t, std::uint64_t) { return false; },
      [&](std::uint64_t) {
        if (!redirected) {
          redirected = true;
          return Certified::restart_at(3);
        }
        return Certified::stop();
      });
  CHECK(!success);
  CHECK_EQ(probes[3], std::size_t{3});  // first probe after the redirect
  CHECK_EQ(probes.size(), std::size_t{3 + 4});  // then a full fresh streak
}

/// Satellite regression: the get window is bounded by enqueue progress.
/// Shape one column to hold 9 items and the other 8; after a full drain
/// the get window must sit at the 9th serial, not at get_max + shift (the
/// untightened rule would inflate it to 16 and leave later dequeues
/// unconstrained by the window — the FIFO bound goes loose).
void check_queue_window_coupling() {
  r2d::core::TwoDParams p;
  p.width = 2;
  p.depth = 8;
  p.shift = 8;
  p.hop_mode = HopMode::kRoundRobinOnly;
  r2d::TwoDQueue<std::uint64_t> queue(p);
  for (std::uint64_t i = 0; i < 17; ++i) queue.enqueue(i);
  // 8 serials per column fill the initial put window; the 17th forced a
  // put shift, so one column holds 9 items — max enqueue serial 9.
  CHECK_EQ(queue.put_window(), std::uint64_t{16});
  CHECK_EQ(queue.approx_size(), std::uint64_t{17});

  std::set<std::uint64_t> outstanding;
  for (std::uint64_t i = 0; i < 17; ++i) outstanding.insert(i);
  for (std::uint64_t i = 0; i < 17; ++i) {
    const auto v = queue.dequeue();
    CHECK(v.has_value());
    CHECK(outstanding.erase(*v) == 1);
  }
  CHECK(outstanding.empty());
  CHECK(!queue.dequeue().has_value());
  // Draining needed the get window to pass serial 8 but never past the
  // max enqueue serial: tightened bound get_max <= 9.
  CHECK(queue.get_window() > std::uint64_t{8});
  CHECK(queue.get_window() <= std::uint64_t{9});
}

}  // namespace

int main() {
  check_round_robin_streak();
  check_contention_restart();
  check_hybrid_streak();
  check_random_only_verify_scan();
  check_monotonic_shift();
  check_window_change_resets();
  check_certified_restart();
  check_queue_window_coupling();
  return TEST_MAIN_RESULT();
}
