// Concurrent smoke: N threads hammer each structure; afterwards the
// multiset of popped + drained labels must equal the multiset pushed — no
// lost, duplicated, or invented labels.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_queue.hpp"
#include "core/two_d_stack.hpp"
#include "reclaim/hazard.hpp"
#include "stacks/distributed_stack.hpp"
#include "stacks/elimination_stack.hpp"
#include "stacks/ksegment_stack.hpp"
#include "stacks/treiber_stack.hpp"
#include "check.hpp"

namespace {

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kPerThread = 20000;

template <typename PushFn, typename PopFn>
void hammer(const char* name, PushFn push, PopFn pop) {
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> workers;
  std::atomic<unsigned> ready{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      std::uint64_t label = (static_cast<std::uint64_t>(t) << 32) + 1;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        push(label++);
        // Pop roughly every other op so the structure stays populated but
        // every thread exercises both paths under contention.
        if (i % 2 == 1) {
          if (const auto v = pop()) popped[t].push_back(*v);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<std::uint64_t> seen;
  for (const auto& p : popped) seen.insert(seen.end(), p.begin(), p.end());
  while (const auto v = pop()) seen.push_back(*v);  // drain the rest

  CHECK_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::sort(seen.begin(), seen.end());
  CHECK(std::adjacent_find(seen.begin(), seen.end()) == seen.end());  // dups
  std::vector<std::uint64_t> expected;
  expected.reserve(seen.size());
  for (unsigned t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 1; i <= kPerThread; ++i) {
      expected.push_back((static_cast<std::uint64_t>(t) << 32) + i);
    }
  }
  std::sort(expected.begin(), expected.end());
  if (seen != expected) {
    std::fprintf(stderr, "FAIL: %s lost or invented labels\n", name);
    ++r2d::test::failures();
  }
}

template <typename Stack>
void hammer_stack(const char* name, Stack& stack) {
  hammer(
      name, [&](std::uint64_t v) { stack.push(v); },
      [&] { return stack.pop(); });
}

}  // namespace

int main() {
  {
    r2d::stacks::TreiberStack<std::uint64_t> stack;
    hammer_stack("treiber/epoch", stack);
  }
  {
    r2d::stacks::TreiberStack<std::uint64_t, r2d::reclaim::HazardReclaimer>
        stack;
    hammer_stack("treiber/hazard", stack);
  }
  {
    r2d::TwoDStack<std::uint64_t> stack(
        r2d::core::TwoDParams::for_k(256, kThreads));
    hammer_stack("2d-stack/epoch", stack);
  }
  {
    r2d::TwoDStack<std::uint64_t, r2d::reclaim::HazardReclaimer> stack(
        r2d::core::TwoDParams::for_k(256, kThreads));
    hammer_stack("2d-stack/hazard", stack);
  }
  {
    // k = 0: strict even under contention.
    r2d::TwoDStack<std::uint64_t> stack(
        r2d::core::TwoDParams::for_k(0, kThreads));
    hammer_stack("2d-stack/k0", stack);
  }
  {
    r2d::stacks::EliminationStack<std::uint64_t> stack(
        r2d::stacks::EliminationParams{8, 128, 1});
    hammer_stack("elimination", stack);
  }
  {
    r2d::stacks::KSegmentStack<std::uint64_t> stack(16);
    hammer_stack("k-segment", stack);
  }
  {
    r2d::stacks::RandomC2Stack<std::uint64_t> stack(8);
    hammer_stack("random-c2", stack);
  }
  {
    r2d::core::TwoDParams p;
    p.width = 2 * kThreads;
    p.depth = 8;
    p.shift = 4;
    r2d::TwoDQueue<std::uint64_t> queue(p);
    hammer(
        "2d-queue", [&](std::uint64_t v) { queue.enqueue(v); },
        [&] { return queue.dequeue(); });
  }
  return TEST_MAIN_RESULT();
}
