// sched/watchdog.hpp suite + the crash/stall dump-path coverage the
// ISSUE calls out: StallDetected::what() and the fatal-handler output
// must actually contain the obs counter summary and the newest
// shift-trace entries (dump_trace content was previously untested).
#include <unistd.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check.hpp"
#include "core/two_d_queue.hpp"
#include "core/two_d_stack.hpp"
#include "harness/service/degrade.hpp"
#include "harness/service/server.hpp"
#include "harness/service/shed.hpp"
#include "obs/metrics.hpp"
#include "sched/watchdog.hpp"
#include "util/crash_trace.hpp"

namespace {

using r2d::sched::StallDetected;
using r2d::sched::Watchdog;

bool tracing_live() {
  return r2d::obs::kCompiled && r2d::obs::metrics().trace_capacity() > 0;
}

/// Force real window shifts so the process-wide shift-trace rings hold
/// events for the dump assertions below.
void generate_shifts() {
  r2d::TwoDStack<std::uint64_t> stack(r2d::core::TwoDParams{2, 1, 1});
  for (std::uint64_t i = 0; i < 64; ++i) stack.push(i);
  for (std::uint64_t i = 0; i < 64; ++i) stack.pop();
}

/// The newest trace entry's tsc — the marker a "newest entries" dump
/// must contain. nullopt when tracing is off or no events exist.
std::optional<std::uint64_t> newest_trace_tsc() {
  std::optional<std::uint64_t> last;
  r2d::obs::metrics().visit_trace(
      [&](const r2d::obs::ShiftEvent& e) { last = e.tsc; });
  return last;
}

/// dump_trace content (previously untested): real events, rendered with
/// cause and transition.
void check_dump_trace_content() {
  if (!tracing_live()) {
    std::puts("dump_trace content: skipped (tracing off)");
    return;
  }
  generate_shifts();
  std::ostringstream out;
  r2d::obs::metrics().dump_trace(out);
  const std::string text = out.str();
  CHECK(text.find("shift[") != std::string::npos);
  CHECK(text.find("cause=stack-p") != std::string::npos);  // push or pop
  CHECK(text.find(" -> ") != std::string::npos);
}

/// A stalled progress counter must produce StallDetected whose what()
/// carries the counter summary and the newest trace entries.
void check_stall_detection_and_report() {
  generate_shifts();
  Watchdog::Config config;
  config.deadline = std::chrono::milliseconds(25);
  config.log_stderr = false;  // keep the test log clean
  Watchdog dog([] { return std::uint64_t{7}; }, std::move(config));
  for (int spin = 0; spin < 400 && !dog.stalled(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  CHECK(dog.stalled());
  CHECK(dog.stall_count() >= 1);
  bool threw = false;
  try {
    dog.check();
  } catch (const StallDetected& e) {
    threw = true;
    const std::string what = e.what();
    CHECK(what.find("r2d watchdog") != std::string::npos);
    CHECK(what.find("stuck at 7") != std::string::npos);
    if (r2d::obs::kCompiled) {
      CHECK(what.find("obs: ops=") != std::string::npos);
    } else {
      CHECK(what.find("obs: compiled out") != std::string::npos);
    }
    if (tracing_live()) {
      const auto tsc = newest_trace_tsc();
      CHECK(tsc.has_value());
      // The newest ring entry, specifically — not just any shift line.
      CHECK(what.find("tsc=" + std::to_string(*tsc)) != std::string::npos);
    }
  }
  CHECK(threw);
}

/// Progress advancing -> never stalls; idle() true -> stall suppressed.
void check_no_false_positives() {
  {
    std::atomic<std::uint64_t> progress{0};
    std::atomic<bool> stop{false};
    std::thread worker([&] {
      while (!stop.load(std::memory_order_acquire)) {
        progress.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    Watchdog::Config config;
    config.deadline = std::chrono::milliseconds(20);
    config.log_stderr = false;
    Watchdog dog(
        [&] { return progress.load(std::memory_order_relaxed); },
        std::move(config));
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    CHECK(!dog.stalled());
    stop.store(true, std::memory_order_release);
    worker.join();
  }
  {
    Watchdog::Config config;
    config.deadline = std::chrono::milliseconds(10);
    config.idle = [] { return true; };  // nothing outstanding
    config.log_stderr = false;
    Watchdog dog([] { return std::uint64_t{0}; }, std::move(config));
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    CHECK(!dog.stalled());
  }
}

/// The on_stall callback fires with the report, and force_enter widens
/// the admission gate the way the service harness composes them.
void check_stall_widens_degradation() {
  std::atomic<bool> fired{false};
  std::string seen_report;
  std::mutex report_mu;
  Watchdog::Config config;
  config.deadline = std::chrono::milliseconds(15);
  config.log_stderr = false;
  config.on_stall = [&](const std::string& report) {
    std::lock_guard<std::mutex> lk(report_mu);
    seen_report = report;
    fired.store(true, std::memory_order_release);
  };
  Watchdog dog([] { return std::uint64_t{0}; }, std::move(config));
  for (int spin = 0; spin < 400 && !fired.load(std::memory_order_acquire);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  CHECK(fired.load(std::memory_order_acquire));
  {
    std::lock_guard<std::mutex> lk(report_mu);
    CHECK(seen_report.find("r2d watchdog") != std::string::npos);
  }

  using r2d::harness::service::Admission;
  using r2d::harness::service::DegradeController;
  Admission gate(8);
  DegradeController degrade(gate, 4, 16);
  CHECK_EQ(gate.effective_cap(), std::uint64_t{8});
  degrade.force_enter();
  CHECK(degrade.degraded());
  CHECK_EQ(degrade.entries(), std::uint64_t{1});
  CHECK_EQ(gate.effective_cap(), std::uint64_t{32});
  degrade.force_enter();  // idempotent while degraded
  CHECK_EQ(degrade.entries(), std::uint64_t{1});

  // factor 1 = controller disabled: force_enter must not touch the gate.
  Admission gate_off(8);
  DegradeController degrade_off(gate_off, 1, 16);
  degrade_off.force_enter();
  CHECK(!degrade_off.degraded());
  CHECK_EQ(gate_off.effective_cap(), std::uint64_t{8});
}

/// End-to-end: a healthy service run with the watchdog armed completes,
/// conserves, and reports zero stalls.
void check_service_smoke() {
  using namespace r2d::harness::service;
  ServiceConfig config;
  config.arrival.kind = ArrivalKind::kPoisson;
  config.arrival.rate = 20000.0;
  config.workers = 2;
  config.duration_ms = 40;
  config.shed_cap = 256;
  config.watchdog_ms = 20;
  r2d::TwoDQueue<Task> queue(r2d::core::TwoDParams{4, 16, 4});
  const ServiceResult result = run_service(queue, config);
  CHECK(result.conserved());
  CHECK_EQ(result.stalls, std::uint64_t{0});
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define R2D_TEST_FORK_OK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define R2D_TEST_FORK_OK 0
#endif
#endif
#ifndef R2D_TEST_FORK_OK
#define R2D_TEST_FORK_OK 1
#endif

/// The fatal-handler path: a crashing child process must emit the obs
/// counter summary + trace entries through the crash hook on stderr.
void check_fatal_handler_dump() {
#if R2D_TEST_FORK_OK
  if (!r2d::obs::kCompiled) {
    std::puts("fatal-handler dump: skipped (obs compiled out)");
    return;
  }
  int fds[2];
  CHECK_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  CHECK(pid >= 0);
  if (pid == 0) {
    // Child: route stderr into the pipe, touch a container so the
    // metrics singleton is live and the rings hold shifts, then die the
    // way a real lock-free bug does.
    close(fds[0]);
    dup2(fds[1], 2);
    r2d::util::install_crash_tracer();
    generate_shifts();
    std::raise(SIGABRT);
    _exit(97);  // not reached
  }
  close(fds[1]);
  std::string output;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    output.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  CHECK(WIFSIGNALED(status));
  CHECK(output.find("=== r2d obs: ops=") != std::string::npos);
  if (tracing_live()) {
    CHECK(output.find("shift tsc=") != std::string::npos);
  }
#else
  std::puts("fatal-handler dump: skipped (sanitizer build)");
#endif
}

}  // namespace

int main() {
  check_dump_trace_content();
  check_stall_detection_and_report();
  check_no_false_positives();
  check_stall_widens_degradation();
  check_service_smoke();
  check_fatal_handler_dump();
  return TEST_MAIN_RESULT();
}
