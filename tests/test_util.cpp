// util/ layer: env parsing, summary statistics, tables, histograms.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/latency.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "check.hpp"

int main() {
  {
    setenv("R2D_TEST_U64", "1234", 1);
    setenv("R2D_TEST_HEX", "0x10", 1);
    setenv("R2D_TEST_BAD", "12abc", 1);
    setenv("R2D_TEST_STR", "hello", 1);
    CHECK_EQ(r2d::util::env_u64("R2D_TEST_U64", 7), std::uint64_t{1234});
    CHECK_EQ(r2d::util::env_u64("R2D_TEST_HEX", 7), std::uint64_t{16});
    CHECK_EQ(r2d::util::env_u64("R2D_TEST_BAD", 7), std::uint64_t{7});
    setenv("R2D_TEST_NEG", "-1", 1);
    CHECK_EQ(r2d::util::env_u64("R2D_TEST_NEG", 7), std::uint64_t{7});
    CHECK_EQ(r2d::util::env_u64("R2D_TEST_UNSET", 7), std::uint64_t{7});
    CHECK_EQ(r2d::util::env_str("R2D_TEST_STR", "x"), std::string("hello"));
    CHECK_EQ(r2d::util::env_str("R2D_TEST_UNSET", "x"), std::string("x"));
  }
  {
    // The shared strict parser behind every seed knob (R2D_FAULT_SEED,
    // R2D_SCHED_SEED): decimal + 0x-hex accepted, surrounding whitespace
    // tolerated, any trailing garbage rejected.
    std::uint64_t v = 99;
    CHECK(r2d::util::parse_u64_strict("42", v));
    CHECK_EQ(v, std::uint64_t{42});
    CHECK(r2d::util::parse_u64_strict("0x2a", v));
    CHECK_EQ(v, std::uint64_t{42});
    CHECK(r2d::util::parse_u64_strict("  0xDEADbeef  ", v));
    CHECK_EQ(v, std::uint64_t{0xdeadbeef});
    CHECK(r2d::util::parse_u64_strict("0", v));
    CHECK_EQ(v, std::uint64_t{0});
    v = 99;
    CHECK(!r2d::util::parse_u64_strict("", v));
    CHECK(!r2d::util::parse_u64_strict("   ", v));
    CHECK(!r2d::util::parse_u64_strict("12abc", v));
    CHECK(!r2d::util::parse_u64_strict("0x", v));
    CHECK(!r2d::util::parse_u64_strict("-1", v));
    CHECK(!r2d::util::parse_u64_strict("12 34", v));
    CHECK(!r2d::util::parse_u64_strict(nullptr, v));
    CHECK_EQ(v, std::uint64_t{99});  // failures never touch out

    // env_u64_strict: unset/empty fall back; well-formed parses. (The
    // malformed case aborts by design — exercised via fork below.)
    setenv("R2D_TEST_SEED", "0x1e7c", 1);
    CHECK_EQ(r2d::util::env_u64_strict("R2D_TEST_SEED", 7),
             std::uint64_t{0x1e7c});
    CHECK_EQ(r2d::util::env_u64_strict("R2D_TEST_SEED_UNSET", 7),
             std::uint64_t{7});
    setenv("R2D_TEST_SEED_EMPTY", "", 1);
    CHECK_EQ(r2d::util::env_u64_strict("R2D_TEST_SEED_EMPTY", 7),
             std::uint64_t{7});

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define R2D_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define R2D_TEST_SANITIZED 1
#endif
#endif
#ifndef R2D_TEST_SANITIZED
#define R2D_TEST_SANITIZED 0
#endif
#if !R2D_TEST_SANITIZED
    // A typo'd seed must abort loudly, never silently run seed 0.
    const pid_t pid = fork();
    CHECK(pid >= 0);
    if (pid == 0) {
      setenv("R2D_TEST_SEED_TYPO", "0x1e7cq", 1);
      const int devnull = open("/dev/null", O_WRONLY);
      if (devnull >= 0) dup2(devnull, 2);
      (void)r2d::util::env_u64_strict("R2D_TEST_SEED_TYPO", 0);
      _exit(0);  // reaching here means the strict parse failed to die
    }
    int status = 0;
    waitpid(pid, &status, 0);
    CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT);
#endif
  }
  {
    const auto s = r2d::util::summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                         9.0});
    CHECK_EQ(s.mean, 5.0);
    CHECK_EQ(s.min, 2.0);
    CHECK_EQ(s.max, 9.0);
    CHECK(s.stddev > 2.13 && s.stddev < 2.14);  // sample stddev ~2.1381
    CHECK_EQ(r2d::util::summarize({}).n, std::size_t{0});
    CHECK_EQ(r2d::util::summarize({3.0}).stddev, 0.0);
  }
  {
    r2d::util::Table table({"a", "b"});
    table.add_row({"1", "x,y"});
    table.add_row({"2"});  // short rows pad
    std::ostringstream out;
    table.print(out);
    CHECK(out.str().find("a") != std::string::npos);
    CHECK_EQ(r2d::util::Table::num(1.23456), std::string("1.235"));
    CHECK_EQ(r2d::util::Table::num(1.5, 0), std::string("2"));

    const char* path = "r2d_test_table.csv";
    CHECK(table.write_csv(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    CHECK_EQ(line, std::string("a,b"));
    std::getline(in, line);
    CHECK_EQ(line, std::string("1,\"x,y\""));
    in.close();
    std::remove(path);
  }
  {
    r2d::harness::Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
    CHECK_EQ(h.count(), std::uint64_t{1000});
    CHECK_EQ(h.max(), std::uint64_t{1000});
    const double p50 = h.quantile(0.5);
    CHECK(p50 >= 450 && p50 <= 550);  // bucket resolution ~6%
    const double p999 = h.quantile(0.999);
    CHECK(p999 >= 900 && p999 <= 1000);
    r2d::harness::Histogram other;
    other.add(1u << 20);
    h.merge(other);
    CHECK_EQ(h.count(), std::uint64_t{1001});
    CHECK_EQ(h.max(), std::uint64_t{1} << 20);
  }
  return TEST_MAIN_RESULT();
}
