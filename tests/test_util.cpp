// util/ layer: env parsing, summary statistics, tables, histograms.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/latency.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "check.hpp"

int main() {
  {
    setenv("R2D_TEST_U64", "1234", 1);
    setenv("R2D_TEST_HEX", "0x10", 1);
    setenv("R2D_TEST_BAD", "12abc", 1);
    setenv("R2D_TEST_STR", "hello", 1);
    CHECK_EQ(r2d::util::env_u64("R2D_TEST_U64", 7), std::uint64_t{1234});
    CHECK_EQ(r2d::util::env_u64("R2D_TEST_HEX", 7), std::uint64_t{16});
    CHECK_EQ(r2d::util::env_u64("R2D_TEST_BAD", 7), std::uint64_t{7});
    setenv("R2D_TEST_NEG", "-1", 1);
    CHECK_EQ(r2d::util::env_u64("R2D_TEST_NEG", 7), std::uint64_t{7});
    CHECK_EQ(r2d::util::env_u64("R2D_TEST_UNSET", 7), std::uint64_t{7});
    CHECK_EQ(r2d::util::env_str("R2D_TEST_STR", "x"), std::string("hello"));
    CHECK_EQ(r2d::util::env_str("R2D_TEST_UNSET", "x"), std::string("x"));
  }
  {
    const auto s = r2d::util::summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                         9.0});
    CHECK_EQ(s.mean, 5.0);
    CHECK_EQ(s.min, 2.0);
    CHECK_EQ(s.max, 9.0);
    CHECK(s.stddev > 2.13 && s.stddev < 2.14);  // sample stddev ~2.1381
    CHECK_EQ(r2d::util::summarize({}).n, std::size_t{0});
    CHECK_EQ(r2d::util::summarize({3.0}).stddev, 0.0);
  }
  {
    r2d::util::Table table({"a", "b"});
    table.add_row({"1", "x,y"});
    table.add_row({"2"});  // short rows pad
    std::ostringstream out;
    table.print(out);
    CHECK(out.str().find("a") != std::string::npos);
    CHECK_EQ(r2d::util::Table::num(1.23456), std::string("1.235"));
    CHECK_EQ(r2d::util::Table::num(1.5, 0), std::string("2"));

    const char* path = "r2d_test_table.csv";
    CHECK(table.write_csv(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    CHECK_EQ(line, std::string("a,b"));
    std::getline(in, line);
    CHECK_EQ(line, std::string("1,\"x,y\""));
    in.close();
    std::remove(path);
  }
  {
    r2d::harness::Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
    CHECK_EQ(h.count(), std::uint64_t{1000});
    CHECK_EQ(h.max(), std::uint64_t{1000});
    const double p50 = h.quantile(0.5);
    CHECK(p50 >= 450 && p50 <= 550);  // bucket resolution ~6%
    const double p999 = h.quantile(0.999);
    CHECK(p999 >= 900 && p999 <= 1000);
    r2d::harness::Histogram other;
    other.add(1u << 20);
    h.merge(other);
    CHECK_EQ(h.count(), std::uint64_t{1001});
    CHECK_EQ(h.max(), std::uint64_t{1} << 20);
  }
  return TEST_MAIN_RESULT();
}
