// Allocation-policy tests: the slab Pool + magazine PoolAlloc layer
// (reclaim/alloc.hpp) and containers mounted on it.
//
// Covers the batch splice machinery (magazine -> spare -> depot and back:
// no block lost or duplicated across refill/flush), cross-thread release
// (acquire on T1, release + reuse on T2), an ABA tag hammer that shuttles
// blocks between threads through an exchange slot (the TSan configuration
// of this test is what would catch a torn free-list splice), coexisting
// pools of one node type (the instance-keyed shard fix), and end-to-end
// no-loss/no-dup runs of the stack, queue, and deque on PoolAlloc —
// including the destruction-order contract: the allocator member outlives
// the reclaimer whose destructor drains deferred retires into it.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_deque.hpp"
#include "core/two_d_queue.hpp"
#include "core/two_d_stack.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/pool.hpp"
#include "stacks/elimination_stack.hpp"
#include "stacks/ksegment_stack.hpp"
#include "stacks/treiber_stack.hpp"
#include "check.hpp"

namespace {

struct Tracked {
  static std::atomic<int> live;
  std::uint64_t payload;
  explicit Tracked(std::uint64_t p) : payload(p) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

/// Acquire `n` blocks, release them all, re-acquire `n`: the second round
/// must hand back exactly the first round's blocks — every magazine park,
/// depot flush, and refill splice conserved the set.
void splice_round_trip(r2d::reclaim::PoolAlloc<Tracked>& alloc,
                       std::size_t n) {
  std::vector<Tracked*> batch;
  batch.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) batch.push_back(alloc.acquire(i));
  CHECK_EQ(Tracked::live.load(), static_cast<int>(n));
  const std::set<Tracked*> first_round(batch.begin(), batch.end());
  CHECK_EQ(first_round.size(), n);  // all distinct
  for (Tracked* p : batch) alloc.release(p);
  CHECK_EQ(Tracked::live.load(), 0);
  batch.clear();
  for (std::uint64_t i = 0; i < n; ++i) batch.push_back(alloc.acquire(i));
  const std::set<Tracked*> second_round(batch.begin(), batch.end());
  CHECK(first_round == second_round);
  for (Tracked* p : batch) alloc.release(p);
  CHECK_EQ(Tracked::live.load(), 0);
}

/// No-loss/no-dup hammer, shared with the container-on-PoolAlloc suites:
/// the popped + drained multiset must equal the pushed multiset.
template <typename PushFn, typename PopFn>
void hammer(const char* name, unsigned threads, std::uint64_t per_thread,
            PushFn push, PopFn pop) {
  std::vector<std::vector<std::uint64_t>> popped(threads);
  std::vector<std::thread> workers;
  std::atomic<unsigned> ready{0};
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < threads) {
      }
      std::uint64_t label = (static_cast<std::uint64_t>(t) << 32) + 1;
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        push(label++);
        if (i % 2 == 1) {
          if (const auto v = pop()) popped[t].push_back(*v);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<std::uint64_t> seen;
  for (const auto& p : popped) seen.insert(seen.end(), p.begin(), p.end());
  while (const auto v = pop()) seen.push_back(*v);

  std::vector<std::uint64_t> expected;
  expected.reserve(threads * per_thread);
  for (unsigned t = 0; t < threads; ++t) {
    for (std::uint64_t i = 1; i <= per_thread; ++i) {
      expected.push_back((static_cast<std::uint64_t>(t) << 32) + i);
    }
  }
  std::sort(seen.begin(), seen.end());
  std::sort(expected.begin(), expected.end());
  if (seen != expected) {
    std::fprintf(stderr, "FAIL: %s lost, duplicated, or invented labels\n",
                 name);
    ++r2d::test::failures();
  }
}

}  // namespace

int main() {
  {
    // R2D_MAGAZINE is read per instance; a tiny magazine makes every few
    // operations cross a park/flush/refill boundary.
    setenv("R2D_MAGAZINE", "4", 1);
    r2d::reclaim::PoolAlloc<Tracked> alloc;
    CHECK_EQ(alloc.magazine_size(), 4u);
    splice_round_trip(alloc, 3);    // inside one magazine
    splice_round_trip(alloc, 4);    // exactly one magazine
    splice_round_trip(alloc, 9);    // mag + spare + depot
    splice_round_trip(alloc, 64);   // many depot magazines
    unsetenv("R2D_MAGAZINE");
  }
  {
    // Default magazine size, large batch: splices cross slab boundaries.
    r2d::reclaim::PoolAlloc<Tracked> alloc;
    CHECK_EQ(alloc.magazine_size(), 32u);
    splice_round_trip(alloc, 500);
  }

  {
    // Cross-thread release: blocks acquired on the main thread, released
    // AND reused on a second thread — release feeds the releasing
    // thread's own magazines, so the reuse set must still be conserved.
    setenv("R2D_MAGAZINE", "4", 1);
    r2d::reclaim::PoolAlloc<Tracked> alloc;
    constexpr std::size_t kBlocks = 40;
    std::vector<Tracked*> batch;
    for (std::uint64_t i = 0; i < kBlocks; ++i) {
      batch.push_back(alloc.acquire(i));
    }
    const std::set<Tracked*> acquired(batch.begin(), batch.end());
    std::thread other([&] {
      for (Tracked* p : batch) alloc.release(p);
      CHECK_EQ(Tracked::live.load(), 0);
      std::vector<Tracked*> reused;
      for (std::uint64_t i = 0; i < kBlocks; ++i) {
        reused.push_back(alloc.acquire(i));
      }
      const std::set<Tracked*> second(reused.begin(), reused.end());
      CHECK(acquired == second);
      for (Tracked* p : reused) alloc.release(p);
    });
    other.join();
    CHECK_EQ(Tracked::live.load(), 0);
    unsetenv("R2D_MAGAZINE");
  }

  {
    // ABA tag hammer: four threads shuttle blocks through one exchange
    // slot while churning acquire/release, so free lists and depots see
    // concurrent pop/push of recycled blocks with interleaved owners. A
    // missing tag bump or torn splice shows up as a duplicate handout
    // (live-count drift) or a sanitizer report.
    setenv("R2D_MAGAZINE", "4", 1);  // maximal depot traffic
    r2d::reclaim::PoolAlloc<Tracked> alloc;
    std::atomic<Tracked*> swap_slot{nullptr};
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kOps = 20000;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        for (std::uint64_t i = 0; i < kOps; ++i) {
          Tracked* mine = alloc.acquire(i);
          Tracked* theirs = swap_slot.exchange(mine);
          if (theirs != nullptr) alloc.release(theirs);
        }
      });
    }
    for (auto& w : workers) w.join();
    if (Tracked* last = swap_slot.exchange(nullptr)) alloc.release(last);
    CHECK_EQ(Tracked::live.load(), 0);
    unsetenv("R2D_MAGAZINE");
  }

  {
    // Two pools of the same T must recycle independently: shard
    // assignment is keyed per instance, so interleaved use on one thread
    // cannot cross-wire their free lists.
    r2d::reclaim::Pool<Tracked> a;
    r2d::reclaim::Pool<Tracked> b;
    Tracked* pa = a.acquire(std::uint64_t{1});
    Tracked* pb = b.acquire(std::uint64_t{2});
    CHECK(pa != pb);
    a.release(pa);
    b.release(pb);
    Tracked* pa2 = a.acquire(std::uint64_t{3});
    Tracked* pb2 = b.acquire(std::uint64_t{4});
    CHECK(pa2 == pa);
    CHECK(pb2 == pb);
    a.release(pa2);
    b.release(pb2);
    CHECK_EQ(Tracked::live.load(), 0);
  }

  // Containers end-to-end on the pool policy (epoch default + one hazard
  // configuration): no operation lost or duplicated, and teardown obeys
  // the §10 destruction order — the reclaimer's deferred frees (all of
  // them, under TSan's deferred-EBR mode) drain into the pool before the
  // pool itself dies.
  {
    r2d::TwoDStack<std::uint64_t, r2d::reclaim::EpochReclaimer,
                   r2d::reclaim::PoolAlloc>
        stack(r2d::core::TwoDParams::for_k(256, 4));
    hammer(
        "2d-stack/epoch/pool", 4, 20000,
        [&](std::uint64_t v) { stack.push(v); }, [&] { return stack.pop(); });
  }
  {
    r2d::TwoDStack<std::uint64_t, r2d::reclaim::HazardReclaimer,
                   r2d::reclaim::PoolAlloc>
        stack(r2d::core::TwoDParams::for_k(256, 4));
    hammer(
        "2d-stack/hazard/pool", 4, 10000,
        [&](std::uint64_t v) { stack.push(v); }, [&] { return stack.pop(); });
  }
  {
    r2d::stacks::TreiberStack<std::uint64_t, r2d::reclaim::EpochReclaimer,
                              r2d::reclaim::PoolAlloc>
        stack;
    hammer(
        "treiber/epoch/pool", 4, 20000,
        [&](std::uint64_t v) { stack.push(v); }, [&] { return stack.pop(); });
  }
  {
    // Two PoolAlloc instances of different block sizes (items + segments);
    // the segment-retire path must release into the segment pool, never
    // the item pool, and teardown must drain leftover cell items.
    r2d::stacks::KSegmentStack<std::uint64_t, r2d::reclaim::EpochReclaimer,
                               r2d::reclaim::PoolAlloc>
        stack(16);
    hammer(
        "k-segment/epoch/pool", 4, 10000,
        [&](std::uint64_t v) { stack.push(v); }, [&] { return stack.pop(); });
  }
  {
    // The eliminated-push path releases a never-shared node straight back
    // to the pool, next to retires flowing through the reclaimer.
    r2d::stacks::EliminationStack<std::uint64_t, r2d::reclaim::EpochReclaimer,
                                  r2d::reclaim::PoolAlloc>
        stack(r2d::stacks::EliminationParams{8, 128, 1});
    hammer(
        "elimination/epoch/pool", 4, 10000,
        [&](std::uint64_t v) { stack.push(v); }, [&] { return stack.pop(); });
  }
  {
    r2d::core::TwoDParams p;
    p.width = 8;
    p.depth = 8;
    p.shift = 4;
    r2d::TwoDQueue<std::uint64_t, r2d::reclaim::EpochReclaimer,
                   r2d::reclaim::PoolAlloc>
        queue(p);
    hammer(
        "2d-queue/epoch/pool", 4, 20000,
        [&](std::uint64_t v) { queue.enqueue(v); },
        [&] { return queue.dequeue(); });
  }
  {
    // Both deque ends, steered by label parity; pops retire through the
    // reclaimer back into the pool on either column backend (DESIGN.md
    // §10/§11).
    r2d::core::TwoDParams p;
    p.width = 8;
    p.depth = 8;
    p.shift = 4;
    r2d::TwoDDeque<std::uint64_t, r2d::reclaim::EpochReclaimer,
                   r2d::reclaim::PoolAlloc>
        deque(p);
    hammer(
        "2d-deque/pool", 4, 20000,
        [&](std::uint64_t v) {
          if (v & 1) {
            deque.push_front(v);
          } else {
            deque.push_back(v);
          }
        },
        [&]() -> std::optional<std::uint64_t> {
          if (auto v = deque.pop_back()) return v;
          return deque.pop_front();
        });
  }
  {
    // Destruction-order regression: retire nodes and destroy the
    // container while frees are still deferred inside the reclaimer (the
    // TSan build defers every EBR free to the reclaimer destructor). The
    // member order must hand them to a still-live pool.
    r2d::stacks::TreiberStack<std::uint64_t, r2d::reclaim::EpochReclaimer,
                              r2d::reclaim::PoolAlloc>
        stack;
    for (std::uint64_t i = 0; i < 1000; ++i) stack.push(i);
    for (std::uint64_t i = 0; i < 500; ++i) stack.pop();
    // 500 nodes still linked, up to 500 retired-but-not-freed; scope exit
    // runs ~stack (drains the column), then ~EpochReclaimer (deferred
    // frees -> pool), then ~PoolAlloc/~Pool (slabs).
  }

  return TEST_MAIN_RESULT();
}
