// r2d::obs tier-1 tests (DESIGN.md §14): the counters must be *accurate*
// (conservation invariants and exact op accounting at quiescence), *churn-
// proof* (a thread's counts survive its exit via the fold-on-release path
// and its slot is reused, not leaked), *stable* (snapshots taken while
// counting runs are monotone per counter as long as no thread exits), and
// *honest when off* (the disabled specialization has the same API, no
// state, and a zero snapshot). The shift-trace ring must wrap keeping the
// newest events, and the latency histogram must tally top-bucket
// saturation instead of silently clamping.
//
// Counting expectations are guarded by obs::kCompiled so this same binary
// is green in an R2D_OBS=0 build, where the API must still compile and
// every snapshot reads zero.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_stack.hpp"
#include "harness/latency.hpp"
#include "obs/metrics.hpp"
#include "check.hpp"

namespace {

namespace obs = r2d::obs;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// The disabled specialization: full API parity, no state, zero snapshot.
void disabled_parity() {
  obs::Metrics<false>& off = obs::Metrics<false>::get();
  off.add(obs::Counter::kProbes, 3);
  off.record_shift(1, 2, true, obs::ShiftCause::kStackPush);
  const obs::Snapshot s = off.snapshot();
  for (unsigned i = 0; i < obs::kCounterCount; ++i) CHECK_EQ(s.c[i], 0u);
  CHECK(sizeof(obs::Metrics<false>) <= sizeof(void*));
  CHECK_EQ(off.slot_hwm(), 0u);
  CHECK_EQ(off.trace_capacity(), 0u);
  std::size_t events = 0;
  off.visit_trace([&](const obs::ShiftEvent&) { ++events; });
  CHECK_EQ(events, 0u);
}

/// Saturating samples land in the top bucket AND the saturated tally;
/// anything below the threshold does not.
void histogram_saturation() {
  using r2d::harness::Histogram;
  Histogram h;
  h.add(100);
  h.add(Histogram::kSaturateNs - 1);
  CHECK_EQ(h.saturated(), 0u);
  h.add(Histogram::kSaturateNs);
  h.add(Histogram::kSaturateNs * 2);
  CHECK_EQ(h.saturated(), 2u);
  CHECK_EQ(h.count(), 4u);
  Histogram other;
  other.add(Histogram::kSaturateNs + 5);
  h.merge(other);
  CHECK_EQ(h.saturated(), 3u);
  CHECK(h.quantile(0.999) > 0.0);

  r2d::harness::LatencyResult r;
  r.histogram.add(Histogram::kSaturateNs);
  CHECK_EQ(r.saturated(), 1u);
}

/// A thread's counts survive its exit: the exit walk folds the slot into
/// the global array, and sequential churn reuses the freed slot.
void fold_on_thread_exit() {
  obs::Metrics<true> m(0);  // local instance, tracing off
  std::thread([&m] { m.add(obs::Counter::kProbes, 41); }).join();
  if constexpr (obs::kCompiled) {
    CHECK_EQ(m.snapshot()[obs::Counter::kProbes], 41u);
    for (int i = 0; i < 32; ++i) {
      std::thread([&m] { m.add(obs::Counter::kProbes, 1); }).join();
    }
    CHECK_EQ(m.snapshot()[obs::Counter::kProbes], 41u + 32u);
    // Leases, not bindings: 33 sequential threads, bounded slot use.
    CHECK(m.slot_hwm() <= 2);
  } else {
    CHECK_EQ(m.snapshot()[obs::Counter::kProbes], 0u);
  }
}

/// The trace ring wraps keeping the newest trace_capacity() events,
/// oldest-first within the ring.
void ring_wrap() {
  obs::Metrics<true> m(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    m.record_shift(i, i + 1, (i & 1) != 0, obs::ShiftCause::kBagPut);
  }
  std::vector<obs::ShiftEvent> events;
  m.visit_trace([&](const obs::ShiftEvent& e) { events.push_back(e); });
  if constexpr (obs::kCompiled) {
    CHECK_EQ(m.trace_capacity(), 8u);
    CHECK_EQ(events.size(), 8u);
    for (std::size_t k = 0; k < events.size(); ++k) {
      CHECK_EQ(events[k].old_max, 12 + k);
      CHECK_EQ(events[k].new_max, 13 + k);
      CHECK(events[k].cause == obs::ShiftCause::kBagPut);
      CHECK_EQ(events[k].won, (12 + k) % 2 != 0);
    }
    std::ostringstream os;
    m.dump_trace(os);
    CHECK(os.str().find("bag-put") != std::string::npos);
  } else {
    CHECK_EQ(events.size(), 0u);
  }
}

/// 4 threads hammer one stack; at quiescence the delta snapshot must
/// satisfy every conservation invariant and account for each operation
/// exactly once (ops == fast hits + sweep successes + sweep stops).
void conservation_hammer() {
  const obs::Snapshot before = obs::metrics().snapshot();
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kIters = kSanitized ? 2000 : 20000;
  r2d::core::TwoDParams p;
  p.width = 8;
  p.depth = 16;
  p.shift = 8;
  {
    r2d::TwoDStack<std::uint64_t> stack(p);
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back([&stack, &go] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::uint64_t i = 0; i < kIters; ++i) {
          stack.push(i);
          stack.pop();
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
  }
  const obs::Snapshot delta = obs::metrics().snapshot() - before;
  if constexpr (obs::kCompiled) {
    CHECK(delta.conserved());
    CHECK_EQ(delta.ops(), std::uint64_t{kThreads} * kIters * 2);
    CHECK(delta[obs::Counter::kEpochPins] > 0);
  } else {
    CHECK_EQ(delta.ops(), 0u);
  }
}

/// Snapshots taken while counting runs are monotone per counter as long
/// as no thread exits between them (exits fold, which can transiently
/// lower a raw-slot read; nothing exits here until sampling stops).
void snapshot_monotone_while_running() {
  r2d::core::TwoDParams p;
  p.width = 4;
  p.depth = 8;
  p.shift = 4;
  r2d::TwoDStack<std::uint64_t> stack(p);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 4; ++t) {
    workers.emplace_back([&stack, &stop] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        stack.push(i++);
        stack.pop();
      }
    });
  }
  obs::Snapshot prev = obs::metrics().snapshot();
  for (int round = 0; round < 50; ++round) {
    const obs::Snapshot cur = obs::metrics().snapshot();
    for (unsigned i = 0; i < obs::kCounterCount; ++i) {
      CHECK(cur.c[i] >= prev.c[i]);
    }
    prev = cur;
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
}

/// The JSON exporter carries the derived rates and the raw counter map in
/// both builds (zeros when compiled out).
void json_export() {
  std::ostringstream os;
  obs::append_json(os, obs::metrics().snapshot());
  const std::string j = os.str();
  CHECK(j.find("\"ops\"") != std::string::npos);
  CHECK(j.find("\"hops_per_op\"") != std::string::npos);
  CHECK(j.find("\"cert_fail_rate\"") != std::string::npos);
  CHECK(j.find("\"shift_race_rate\"") != std::string::npos);
  CHECK(j.find("\"counters\"") != std::string::npos);
}

}  // namespace

int main() {
  // Pin the runtime switch before anything caches it: these tests assert
  // counts, so they must run with metrics on regardless of ambient env.
  setenv("R2D_METRICS", "1", 1);
  disabled_parity();
  histogram_saturation();
  fold_on_thread_exit();
  ring_wrap();
  conservation_hammer();
  snapshot_monotone_while_running();
  json_export();
  return TEST_MAIN_RESULT();
}
