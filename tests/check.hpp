// Minimal assertion macros for the tier-1 tests (no framework dependency).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace r2d::test {
inline int& failures() {
  static int count = 0;
  return count;
}
}  // namespace r2d::test

#define CHECK(cond)                                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      ++r2d::test::failures();                                             \
    }                                                                      \
  } while (0)

#define CHECK_EQ(a, b)                                                 \
  do {                                                                 \
    const auto va = (a);                                               \
    const auto vb = (b);                                               \
    if (!(va == vb)) {                                                 \
      std::ostringstream oss;                                          \
      oss << va << " vs " << vb;                                       \
      std::fprintf(stderr, "FAIL %s:%d: %s == %s (%s)\n", __FILE__,    \
                   __LINE__, #a, #b, oss.str().c_str());               \
      ++r2d::test::failures();                                         \
    }                                                                  \
  } while (0)

#define TEST_MAIN_RESULT()                                          \
  (r2d::test::failures() == 0                                       \
       ? (std::puts("OK"), 0)                                       \
       : (std::fprintf(stderr, "%d check(s) failed\n",              \
                       r2d::test::failures()),                      \
          1))
