// TwoDDeque tier-1: sequential both-ends semantics (width 1 is a strict
// deque, checked against std::deque), multiset no-loss/no-dup sequentially
// and under concurrency, and the deque rank-error oracle mode.
#include <atomic>
#include <cstdint>
#include <deque>
#include <set>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_deque.hpp"
#include "harness/quality.hpp"
#include "harness/runner.hpp"
#include "check.hpp"

namespace {

constexpr std::uint64_t kN = 5000;

r2d::core::TwoDParams shape(std::size_t width, std::uint64_t depth,
                            std::uint64_t shift) {
  r2d::core::TwoDParams p;
  p.width = width;
  p.depth = depth;
  p.shift = shift;
  return p;
}

/// Width-1: every operation must agree with std::deque exactly.
void check_strict_deque() {
  r2d::TwoDDeque<std::uint64_t> deque(shape(1, 16, 8));
  CHECK(deque.empty());
  CHECK(!deque.pop_front().has_value());
  CHECK(!deque.pop_back().has_value());

  // push_back then pop_front: FIFO.
  for (std::uint64_t i = 0; i < kN; ++i) deque.push_back(i);
  CHECK_EQ(deque.approx_size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto v = deque.pop_front();
    CHECK(v.has_value());
    CHECK_EQ(*v, i);
  }
  CHECK(deque.empty());

  // push_back then pop_back: LIFO.
  for (std::uint64_t i = 0; i < kN; ++i) deque.push_back(i);
  for (std::uint64_t i = kN; i-- > 0;) {
    const auto v = deque.pop_back();
    CHECK(v.has_value());
    CHECK_EQ(*v, i);
  }
  CHECK(deque.empty());

  // push_front then pop_back drains in insertion order.
  for (std::uint64_t i = 0; i < kN; ++i) deque.push_front(i);
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto v = deque.pop_back();
    CHECK(v.has_value());
    CHECK_EQ(*v, i);
  }
  CHECK(deque.empty());
  CHECK(!deque.pop_back().has_value());

  // Mixed deterministic sequence against the reference model.
  std::deque<std::uint64_t> model;
  std::uint64_t label = 0;
  for (std::uint64_t round = 0; round < 4000; ++round) {
    switch ((round * 2654435761u) % 7) {
      case 0:
      case 1:
        deque.push_front(label);
        model.push_front(label);
        ++label;
        break;
      case 2:
      case 3:
        deque.push_back(label);
        model.push_back(label);
        ++label;
        break;
      case 4:
      case 5: {
        const auto v = deque.pop_front();
        CHECK_EQ(v.has_value(), !model.empty());
        if (v) {
          CHECK_EQ(*v, model.front());
          model.pop_front();
        }
        break;
      }
      default: {
        const auto v = deque.pop_back();
        CHECK_EQ(v.has_value(), !model.empty());
        if (v) {
          CHECK_EQ(*v, model.back());
          model.pop_back();
        }
        break;
      }
    }
    CHECK_EQ(deque.approx_size(), model.size());
  }
  while (!model.empty()) {
    const auto v = deque.pop_front();
    CHECK(v.has_value());
    CHECK_EQ(*v, model.front());
    model.pop_front();
  }
  CHECK(deque.empty());
}

/// Wide shapes sequentially: no loss, no duplication, no invention — from
/// either end.
void check_multiset_semantics() {
  r2d::TwoDDeque<std::uint64_t> deque(shape(8, 4, 2));
  std::set<std::uint64_t> outstanding;
  for (std::uint64_t i = 0; i < kN; ++i) {
    if (i % 2 == 0) {
      deque.push_back(i);
    } else {
      deque.push_front(i);
    }
    outstanding.insert(i);
  }
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto v = i % 2 == 0 ? deque.pop_front() : deque.pop_back();
    CHECK(v.has_value());
    CHECK(outstanding.erase(*v) == 1);  // known and not yet popped
  }
  CHECK(outstanding.empty());
  CHECK(!deque.pop_front().has_value());
  CHECK(!deque.pop_back().has_value());
  CHECK(deque.empty());
}

/// Concurrent hammer across both ends; afterwards the multiset of popped +
/// drained labels must equal the multiset pushed.
void check_concurrent() {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  r2d::TwoDDeque<std::uint64_t> deque(shape(2 * kThreads, 8, 4));

  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> workers;
  std::atomic<unsigned> ready{0};
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      std::uint64_t label = (static_cast<std::uint64_t>(t) << 32) + 1;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        if (i % 2 == 0) {
          deque.push_back(label++);
        } else {
          deque.push_front(label++);
        }
        // Pop roughly every other op, alternating ends, so the structure
        // stays populated but every path sees contention.
        if (i % 2 == 1) {
          const auto v = i % 4 == 1 ? deque.pop_front() : deque.pop_back();
          if (v) popped[t].push_back(*v);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<std::uint64_t> seen;
  for (const auto& p : popped) seen.insert(seen.end(), p.begin(), p.end());
  bool front = true;
  while (true) {  // drain alternating ends
    const auto v = front ? deque.pop_front() : deque.pop_back();
    if (!v) break;
    seen.push_back(*v);
    front = !front;
  }
  CHECK(deque.empty());

  CHECK_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::sort(seen.begin(), seen.end());
  CHECK(std::adjacent_find(seen.begin(), seen.end()) == seen.end());  // dups
  std::vector<std::uint64_t> expected;
  expected.reserve(seen.size());
  for (unsigned t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 1; i <= kPerThread; ++i) {
      expected.push_back((static_cast<std::uint64_t>(t) << 32) + i);
    }
  }
  std::sort(expected.begin(), expected.end());
  CHECK(seen == expected);
}

/// Hand-built logs replay to known deque rank errors.
void check_replay_unit() {
  using r2d::quality::Event;
  using r2d::quality::Order;
  using r2d::quality::replay;
  {
    // Strict history: push_back a, b; push_front c — line is c a b.
    // pop_front c, pop_back b, pop_front a: zero error throughout.
    std::vector<Event> log = {{0, 1, true, false}, {1, 2, true, false},
                              {2, 3, true, true},  {3, 3, false, true},
                              {4, 2, false, false}, {5, 1, false, true}};
    const auto r = replay(log, Order::kDeque);
    CHECK_EQ(r.errors.count(), std::uint64_t{3});
    CHECK_EQ(r.errors.mean(), 0.0);
    CHECK_EQ(r.errors.max(), 0.0);
    CHECK_EQ(r.unknown_labels, std::uint64_t{0});
  }
  {
    // Relaxed history: push_back a, b, c — line a b c. pop_front b skips a
    // (error 1); pop_back a skips c (error 1); pop_front c (error 0).
    std::vector<Event> log = {{0, 1, true, false}, {1, 2, true, false},
                              {2, 3, true, false}, {3, 2, false, true},
                              {4, 1, false, false}, {5, 3, false, true}};
    const auto r = replay(log, Order::kDeque);
    CHECK_EQ(r.errors.max(), 1.0);
    CHECK_EQ(r.errors.count(), std::uint64_t{3});
    CHECK_EQ(r.errors.mean(), 2.0 / 3.0);
  }
  {
    // A back-only history scored as a deque equals its LIFO score, and a
    // back-push/front-pop history equals its FIFO score.
    std::vector<Event> lifo = {{0, 1, true, false}, {1, 2, true, false},
                               {2, 1, false, false}, {3, 2, false, false}};
    CHECK_EQ(replay(lifo, Order::kDeque).errors.mean(),
             replay(lifo, Order::kLifo).errors.mean());
    std::vector<Event> fifo = {{0, 1, true, false}, {1, 2, true, false},
                               {2, 2, false, true}, {3, 1, false, true}};
    CHECK_EQ(replay(fifo, Order::kDeque).errors.mean(),
             replay(fifo, Order::kFifo).errors.mean());
    CHECK_EQ(replay(fifo, Order::kDeque).errors.max(), 1.0);
  }
  {
    // Unknown labels are counted (and not scored) unless truncated.
    std::vector<Event> log = {{0, 1, true, false}, {1, 9, false, true},
                              {2, 1, false, true}};
    CHECK_EQ(replay(log, Order::kDeque).unknown_labels, std::uint64_t{1});
    CHECK_EQ(replay(log, Order::kDeque, true).unknown_labels,
             std::uint64_t{0});
  }
}

/// End-to-end oracle: a strict (width-1) deque measured single-threaded
/// reports exactly zero error; a wide relaxed one under concurrency
/// reports nonzero error (the oracle detects both-end relaxation).
void check_oracle_end_to_end() {
  {
    r2d::TwoDDeque<std::uint64_t> deque(shape(1, 16, 8));
    r2d::harness::Workload w;
    w.threads = 1;
    w.duration_ms = 50;
    w.prefill = 1024;
    const auto q = r2d::harness::run_quality_deque(deque, w);
    CHECK(q.samples > 0);
    CHECK_EQ(q.mean_error, 0.0);
    CHECK_EQ(q.max_error, 0.0);
    CHECK_EQ(q.unknown_labels, std::uint64_t{0});
  }
  {
    r2d::TwoDDeque<std::uint64_t> deque(shape(16, 16, 8));
    r2d::harness::Workload w;
    w.threads = 4;
    w.duration_ms = 50;
    w.prefill = 4096;
    const auto q = r2d::harness::run_quality_deque(deque, w);
    CHECK(q.samples > 0);
    CHECK(q.mean_error > 0.0);
    CHECK_EQ(q.unknown_labels, std::uint64_t{0});
  }
}

}  // namespace

int main() {
  check_strict_deque();
  check_multiset_semantics();
  check_concurrent();
  check_replay_unit();
  check_oracle_end_to_end();
  return TEST_MAIN_RESULT();
}
