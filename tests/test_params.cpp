// TwoDParams::for_k mapping invariants (DESIGN.md §4).
#include <cstdint>
#include <stdexcept>

#include "core/params.hpp"
#include "check.hpp"

using r2d::core::TwoDParams;

int main() {
  // k = 0 is the strict degenerate shape.
  for (unsigned threads : {1u, 2u, 8u, 16u}) {
    const TwoDParams p = TwoDParams::for_k(0, threads);
    CHECK_EQ(p.width, std::size_t{1});
    CHECK_EQ(p.k_bound(), std::uint64_t{0});
    p.validate();
  }

  // The bound never exceeds the request, shapes are always valid, width
  // respects the 4P ceiling, and the bound is monotone in k.
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u, 64u}) {
    std::uint64_t prev_bound = 0;
    std::size_t prev_width = 0;
    std::uint64_t prev_depth = 0;
    for (std::uint64_t k = 0; k < 100000; k = k * 3 + 1) {
      const TwoDParams p = TwoDParams::for_k(k, threads);
      p.validate();
      CHECK(p.k_bound() <= k);
      CHECK(p.width <= TwoDParams::max_width_for(threads));
      CHECK(p.shift >= 1 && p.shift <= p.depth);
      CHECK(p.k_bound() >= prev_bound);
      CHECK(p.width >= prev_width);
      CHECK(p.depth >= prev_depth);
      prev_bound = p.k_bound();
      prev_width = p.width;
      prev_depth = p.depth;
    }
  }

  // The Figure-2 budget k = 32*(4P-1) must land on the paper's
  // high-throughput shape: width 4P, depth 16, shift 8.
  for (unsigned threads : {1u, 2u, 8u, 16u}) {
    const std::uint64_t k = 32ull * (4ull * threads - 1);
    const TwoDParams p = TwoDParams::for_k(k, threads);
    CHECK_EQ(p.width, std::size_t{4} * threads);
    CHECK_EQ(p.depth, std::uint64_t{16});
    CHECK_EQ(p.shift, std::uint64_t{8});
    CHECK_EQ(p.k_bound(), k);
  }

  // validate() rejects malformed shapes, including windows deeper than the
  // packed column-count ceiling (see core/substack.hpp).
  for (const TwoDParams bad :
       {TwoDParams{0, 1, 1},                                  // zero width
        TwoDParams{1, 0, 1},                                  // zero depth
        TwoDParams{1, 4, 0},                                  // zero shift
        TwoDParams{1, 4, 5},                                  // shift > depth
        TwoDParams{4, r2d::core::kMaxWindowDepth + 1, 1},     // depth overflow
        TwoDParams{4, r2d::core::kPackedCountMax + 100, 1}}) {
    bool threw = false;
    try {
      bad.validate();
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    CHECK(threw);
  }

  // An outsized relaxation budget clamps onto the deepest valid window
  // instead of an invalid shape.
  for (unsigned threads : {1u, 4u}) {
    const TwoDParams p = TwoDParams::for_k(std::uint64_t{1} << 40, threads);
    p.validate();
    CHECK_EQ(p.depth, r2d::core::kMaxWindowDepth);
    CHECK(p.k_bound() <= std::uint64_t{1} << 40);
  }

  return TEST_MAIN_RESULT();
}
