// Quality-oracle sanity: hand-built logs replay to known rank errors, and
// a strict stack measured end-to-end reports zero error.
#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_stack.hpp"
#include "harness/quality.hpp"
#include "harness/runner.hpp"
#include "stacks/treiber_stack.hpp"
#include "check.hpp"

using r2d::quality::Event;
using r2d::quality::Order;
using r2d::quality::replay;

int main() {
  {
    // Strict LIFO history: push a, b, c; pop c, b, a — zero error.
    std::vector<Event> log = {{0, 10, true}, {1, 20, true}, {2, 30, true},
                              {3, 30, false}, {4, 20, false}, {5, 10, false}};
    const auto r = replay(log, Order::kLifo);
    CHECK_EQ(r.errors.count(), std::uint64_t{3});
    CHECK_EQ(r.errors.mean(), 0.0);
    CHECK_EQ(r.errors.max(), 0.0);
    CHECK_EQ(r.unknown_labels, std::uint64_t{0});
  }
  {
    // Worst-case LIFO history: push a, b, c; pop a (2 newer live), b (1),
    // c (0) — errors 2, 1, 0.
    std::vector<Event> log = {{0, 10, true}, {1, 20, true}, {2, 30, true},
                              {3, 10, false}, {4, 20, false}, {5, 30, false}};
    const auto r = replay(log, Order::kLifo);
    CHECK_EQ(r.errors.max(), 2.0);
    CHECK_EQ(r.errors.mean(), 1.0);
  }
  {
    // Same history judged as a queue is perfect FIFO.
    std::vector<Event> log = {{0, 10, true}, {1, 20, true}, {2, 30, true},
                              {3, 10, false}, {4, 20, false}, {5, 30, false}};
    const auto r = replay(log, Order::kFifo);
    CHECK_EQ(r.errors.mean(), 0.0);
    CHECK_EQ(r.errors.max(), 0.0);
  }
  {
    // Unknown labels are counted (and not scored)...
    std::vector<Event> log = {{0, 10, true}, {1, 99, false}, {2, 10, false}};
    const auto r = replay(log, Order::kLifo);
    CHECK_EQ(r.unknown_labels, std::uint64_t{1});
    CHECK_EQ(r.errors.count(), std::uint64_t{1});
    // ...unless the log is marked truncated.
    const auto rt = replay(log, Order::kLifo, /*truncated=*/true);
    CHECK_EQ(rt.unknown_labels, std::uint64_t{0});
  }
  {
    // Out-of-order interleavings still score: push a, b; pop b; push c;
    // pop a (1 newer live: c); pop c.
    std::vector<Event> log = {{0, 1, true},  {1, 2, true},  {2, 2, false},
                              {3, 3, true},  {4, 1, false}, {5, 3, false}};
    const auto r = replay(log, Order::kLifo);
    CHECK_EQ(r.errors.max(), 1.0);
    CHECK_EQ(r.errors.count(), std::uint64_t{3});
  }

  // End-to-end: single-threaded, tickets are the exact linearization, so a
  // strict stack must measure exactly zero rank error.
  {
    r2d::stacks::TreiberStack<std::uint64_t> stack;
    r2d::harness::Workload w;
    w.threads = 1;
    w.duration_ms = 50;
    w.prefill = 1024;
    const auto q = r2d::harness::run_quality(stack, w);
    CHECK(q.samples > 0);
    CHECK_EQ(q.mean_error, 0.0);
    CHECK_EQ(q.max_error, 0.0);
    CHECK_EQ(q.unknown_labels, std::uint64_t{0});
  }
  // And the k=0 2D-stack, which degenerates to strict, likewise.
  {
    r2d::TwoDStack<std::uint64_t> stack(r2d::core::TwoDParams::for_k(0, 4));
    r2d::harness::Workload w;
    w.threads = 1;
    w.duration_ms = 50;
    w.prefill = 1024;
    const auto q = r2d::harness::run_quality(stack, w);
    CHECK(q.samples > 0);
    CHECK_EQ(q.mean_error, 0.0);
    CHECK_EQ(q.unknown_labels, std::uint64_t{0});
  }
  // Concurrent strict stack: ticket skew (tickets approximate the
  // linearization) may contribute noise, but it stays far below the error
  // a genuinely relaxed structure shows.
  {
    r2d::stacks::TreiberStack<std::uint64_t> stack;
    r2d::harness::Workload w;
    w.threads = 4;
    w.duration_ms = 50;
    w.prefill = 1024;
    const auto q = r2d::harness::run_quality(stack, w);
    CHECK(q.samples > 0);
    CHECK(q.mean_error < 1.0);
    CHECK_EQ(q.unknown_labels, std::uint64_t{0});
  }
  // A deliberately relaxed 2D-stack must show nonzero error under
  // multi-threaded load (sanity that the oracle detects relaxation).
  {
    r2d::core::TwoDParams p;
    p.width = 16;
    p.depth = 16;
    p.shift = 8;
    r2d::TwoDStack<std::uint64_t> stack(p);
    r2d::harness::Workload w;
    w.threads = 4;
    w.duration_ms = 50;
    w.prefill = 4096;
    const auto q = r2d::harness::run_quality(stack, w);
    CHECK(q.samples > 0);
    CHECK(q.mean_error > 0.0);
    CHECK_EQ(q.unknown_labels, std::uint64_t{0});
  }
  return TEST_MAIN_RESULT();
}
