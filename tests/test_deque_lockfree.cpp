// Lock-free deque columns tier-1: the column-backend matrix.
//
// Covers both backends (DwcasDequeColumn and LockedDequeColumn — on hosts
// without a 16-byte CAS the former aliases the latter and the dwcas arms
// simply re-exercise the lock) with: a width-1 model check against
// std::deque, both-end multiset conservation, a 4-thread two-end ABA
// hammer on a single column (every operation contends on one two-word
// head — the TSan configuration of this test is the race check for the
// DWCAS protocol), and a reclaimer x allocator e2e matrix
// (Epoch/Hazard x Heap/Pool) including a destruction-order regression
// that destroys the deque while retires are still deferred.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check.hpp"
#include "core/params.hpp"
#include "core/two_d_deque.hpp"
#include "harness/runner.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/hazard.hpp"

// Both column backends satisfy the harness concept, so every runner and
// bench is generic over the backend choice.
static_assert(r2d::harness::RelaxedDeque<
              r2d::TwoDDeque<std::uint64_t, r2d::reclaim::EpochReclaimer,
                             r2d::reclaim::HeapAlloc,
                             r2d::core::DwcasDequeColumn>>);
static_assert(r2d::harness::RelaxedDeque<
              r2d::TwoDDeque<std::uint64_t, r2d::reclaim::EpochReclaimer,
                             r2d::reclaim::HeapAlloc,
                             r2d::core::LockedDequeColumn>>);

namespace {

using r2d::reclaim::EpochReclaimer;
using r2d::reclaim::HazardReclaimer;
using r2d::reclaim::HeapAlloc;
using r2d::reclaim::PoolAlloc;

template <typename T>
using Locked = r2d::core::LockedDequeColumn<T>;
template <typename T>
using Dwcas = r2d::core::DwcasDequeColumn<T>;

r2d::core::TwoDParams shape(std::size_t width, std::uint64_t depth,
                            std::uint64_t shift) {
  r2d::core::TwoDParams p;
  p.width = width;
  p.depth = depth;
  p.shift = shift;
  return p;
}

/// Width-1: every operation must agree with std::deque exactly, through
/// enough operations to shift both windows many times.
template <typename Deque>
void check_model() {
  Deque deque(shape(1, 16, 8));
  CHECK(deque.empty());
  CHECK(!deque.pop_front().has_value());
  CHECK(!deque.pop_back().has_value());

  std::deque<std::uint64_t> model;
  std::uint64_t label = 0;
  for (std::uint64_t round = 0; round < 6000; ++round) {
    switch ((round * 2654435761u) % 7) {
      case 0:
      case 1:
        deque.push_front(label);
        model.push_front(label);
        ++label;
        break;
      case 2:
      case 3:
        deque.push_back(label);
        model.push_back(label);
        ++label;
        break;
      case 4:
      case 5: {
        const auto v = deque.pop_front();
        CHECK_EQ(v.has_value(), !model.empty());
        if (v) {
          CHECK_EQ(*v, model.front());
          model.pop_front();
        }
        break;
      }
      default: {
        const auto v = deque.pop_back();
        CHECK_EQ(v.has_value(), !model.empty());
        if (v) {
          CHECK_EQ(*v, model.back());
          model.pop_back();
        }
        break;
      }
    }
    CHECK_EQ(deque.approx_size(), model.size());
  }
  while (!model.empty()) {
    const auto v = deque.pop_back();
    CHECK(v.has_value());
    CHECK_EQ(*v, model.back());
    model.pop_back();
  }
  CHECK(deque.empty());
}

/// Wide shape sequentially: no loss, no duplication, no invention — from
/// either end.
template <typename Deque>
void check_multiset() {
  constexpr std::uint64_t kN = 4000;
  Deque deque(shape(8, 4, 2));
  std::set<std::uint64_t> outstanding;
  for (std::uint64_t i = 0; i < kN; ++i) {
    if (i % 2 == 0) {
      deque.push_back(i);
    } else {
      deque.push_front(i);
    }
    outstanding.insert(i);
  }
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto v = i % 2 == 0 ? deque.pop_front() : deque.pop_back();
    CHECK(v.has_value());
    CHECK(outstanding.erase(*v) == 1);
  }
  CHECK(outstanding.empty());
  CHECK(deque.empty());
}

/// Concurrent hammer: `threads` workers mixing both ends on a `width`-column
/// deque; afterwards popped + drained labels must equal the pushed multiset.
/// width 1 aims every operation at one two-word head — the ABA hammer.
template <typename Deque>
void check_hammer(std::size_t width, std::uint64_t depth, unsigned threads,
                  std::uint64_t per_thread) {
  Deque deque(shape(width, depth, std::max<std::uint64_t>(1, depth / 2)));
  std::vector<std::vector<std::uint64_t>> popped(threads);
  std::vector<std::thread> workers;
  std::atomic<unsigned> ready{0};
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < threads) {
      }
      std::uint64_t label = (static_cast<std::uint64_t>(t) << 32) + 1;
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        if (i % 2 == 0) {
          deque.push_back(label++);
        } else {
          deque.push_front(label++);
        }
        if (i % 2 == 1) {
          const auto v = i % 4 == 1 ? deque.pop_front() : deque.pop_back();
          if (v) popped[t].push_back(*v);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::vector<std::uint64_t> seen;
  for (const auto& p : popped) seen.insert(seen.end(), p.begin(), p.end());
  bool front = true;
  while (true) {
    const auto v = front ? deque.pop_front() : deque.pop_back();
    if (!v) break;
    seen.push_back(*v);
    front = !front;
  }
  CHECK(deque.empty());

  CHECK_EQ(seen.size(),
           static_cast<std::size_t>(threads) * per_thread);
  std::sort(seen.begin(), seen.end());
  CHECK(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
  std::vector<std::uint64_t> expected;
  expected.reserve(seen.size());
  for (unsigned t = 0; t < threads; ++t) {
    for (std::uint64_t i = 1; i <= per_thread; ++i) {
      expected.push_back((static_cast<std::uint64_t>(t) << 32) + i);
    }
  }
  std::sort(expected.begin(), expected.end());
  CHECK(seen == expected);
}

/// Destruction-order regression: destroy the deque while retires are still
/// deferred inside the reclaimer — its destructor must hand them to a
/// still-live allocator (alloc declared before reclaimer; ASan catches the
/// wrong order, TSan the deferred-EBR flavor of it).
template <typename Deque>
void check_destruction_order() {
  Deque deque(shape(4, 8, 4));
  for (std::uint64_t i = 0; i < 2000; ++i) {
    if (i % 2 == 0) {
      deque.push_back(i);
    } else {
      deque.push_front(i);
    }
  }
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto v = i % 2 == 0 ? deque.pop_front() : deque.pop_back();
    CHECK(v.has_value());
  }
  // ~1000 nodes still linked, ~1000 retired (possibly still deferred):
  // teardown must free both populations exactly once.
}

}  // namespace

int main() {
  std::printf("deque column backends: dwcas=%s (hardware 16-byte CAS: %s)\n",
              Dwcas<std::uint64_t>::kBackendName,
              r2d::core::kHasDwcas ? "yes" : "no — locked fallback");

  // Model + multiset on both backends, default reclaimer/allocator.
  check_model<r2d::TwoDDeque<std::uint64_t, EpochReclaimer, HeapAlloc, Dwcas>>();
  check_model<r2d::TwoDDeque<std::uint64_t, EpochReclaimer, HeapAlloc, Locked>>();
  check_model<r2d::TwoDDeque<std::uint64_t, HazardReclaimer, HeapAlloc, Dwcas>>();
  check_multiset<r2d::TwoDDeque<std::uint64_t, EpochReclaimer, HeapAlloc, Dwcas>>();
  check_multiset<r2d::TwoDDeque<std::uint64_t, EpochReclaimer, HeapAlloc, Locked>>();

  // Two-end ABA hammer: 4 threads on a single column — every push/pop is
  // a CAS (or lock) on the same two-word head, with the window machinery
  // shifting underneath. Run on both backends and both precise/epoch
  // reclaimers.
  check_hammer<r2d::TwoDDeque<std::uint64_t, EpochReclaimer, HeapAlloc, Dwcas>>(
      1, 16, 4, 20000);
  check_hammer<r2d::TwoDDeque<std::uint64_t, HazardReclaimer, HeapAlloc, Dwcas>>(
      1, 16, 4, 20000);
  check_hammer<r2d::TwoDDeque<std::uint64_t, EpochReclaimer, HeapAlloc, Locked>>(
      1, 16, 4, 20000);

  // Reclaimer x allocator e2e matrix on the lock-free backend (and the
  // locked backend's pool arm), wide shape under concurrency.
  check_hammer<r2d::TwoDDeque<std::uint64_t, EpochReclaimer, HeapAlloc, Dwcas>>(
      8, 8, 4, 10000);
  check_hammer<r2d::TwoDDeque<std::uint64_t, EpochReclaimer, PoolAlloc, Dwcas>>(
      8, 8, 4, 10000);
  check_hammer<r2d::TwoDDeque<std::uint64_t, HazardReclaimer, HeapAlloc, Dwcas>>(
      8, 8, 4, 10000);
  check_hammer<r2d::TwoDDeque<std::uint64_t, HazardReclaimer, PoolAlloc, Dwcas>>(
      8, 8, 4, 10000);
  check_hammer<r2d::TwoDDeque<std::uint64_t, HazardReclaimer, PoolAlloc, Locked>>(
      8, 8, 4, 10000);

  // Destruction-order across the matrix corners.
  check_destruction_order<
      r2d::TwoDDeque<std::uint64_t, EpochReclaimer, PoolAlloc, Dwcas>>();
  check_destruction_order<
      r2d::TwoDDeque<std::uint64_t, HazardReclaimer, PoolAlloc, Dwcas>>();
  check_destruction_order<
      r2d::TwoDDeque<std::uint64_t, EpochReclaimer, PoolAlloc, Locked>>();

  return TEST_MAIN_RESULT();
}
