// Sequential correctness: strict LIFO for Treiber and the k=0 2D-stack,
// plus basic push/pop sanity for every other structure in the library.
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_queue.hpp"
#include "core/two_d_stack.hpp"
#include "stacks/distributed_stack.hpp"
#include "stacks/elimination_stack.hpp"
#include "stacks/ksegment_stack.hpp"
#include "stacks/treiber_stack.hpp"
#include "check.hpp"

namespace {

constexpr std::uint64_t kN = 5000;

template <typename Stack>
void check_strict_lifo(Stack& stack) {
  CHECK(stack.empty());
  CHECK(!stack.pop().has_value());
  for (std::uint64_t i = 0; i < kN; ++i) stack.push(i);
  CHECK(!stack.empty());
  for (std::uint64_t i = kN; i-- > 0;) {
    const auto v = stack.pop();
    CHECK(v.has_value());
    CHECK_EQ(*v, i);
  }
  CHECK(stack.empty());
  CHECK(!stack.pop().has_value());

  // Interleaved: every pop must return the most recent unpopped push.
  for (std::uint64_t round = 0; round < 100; ++round) {
    stack.push(2 * round);
    stack.push(2 * round + 1);
    const auto v = stack.pop();
    CHECK(v.has_value());
    CHECK_EQ(*v, 2 * round + 1);
  }
  for (std::uint64_t round = 100; round-- > 0;) {
    const auto v = stack.pop();
    CHECK(v.has_value());
    CHECK_EQ(*v, 2 * round);
  }
  CHECK(stack.empty());
}

/// Relaxed structures sequentially: no loss, no duplication, no invention.
template <typename Stack>
void check_multiset_semantics(Stack& stack) {
  CHECK(!stack.pop().has_value());
  std::set<std::uint64_t> outstanding;
  for (std::uint64_t i = 0; i < kN; ++i) {
    stack.push(i);
    outstanding.insert(i);
  }
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto v = stack.pop();
    CHECK(v.has_value());
    CHECK(outstanding.erase(*v) == 1);  // known and not yet popped
  }
  CHECK(outstanding.empty());
  CHECK(!stack.pop().has_value());
  CHECK(stack.empty());
}

}  // namespace

int main() {
  {
    r2d::stacks::TreiberStack<std::uint64_t> stack;
    check_strict_lifo(stack);
  }
  {
    // k = 0 shape: the 2D-stack degenerates to one strict column.
    r2d::TwoDStack<std::uint64_t> stack(r2d::core::TwoDParams::for_k(0, 4));
    check_strict_lifo(stack);
  }
  {
    // Elimination without contention never takes the collision path, but
    // exercise it through the same strict checks.
    r2d::stacks::EliminationStack<std::uint64_t> stack;
    check_strict_lifo(stack);
  }
  {
    r2d::core::TwoDParams p;
    p.width = 8;
    p.depth = 4;
    p.shift = 2;
    r2d::TwoDStack<std::uint64_t> stack(p);
    check_multiset_semantics(stack);
  }
  {
    r2d::stacks::KSegmentStack<std::uint64_t> stack(8);
    check_multiset_semantics(stack);
  }
  {
    r2d::stacks::RandomStack<std::uint64_t> stack(8);
    check_multiset_semantics(stack);
  }
  {
    r2d::stacks::RandomC2Stack<std::uint64_t> stack(8);
    check_multiset_semantics(stack);
  }
  {
    r2d::stacks::KRobinStack<std::uint64_t> stack(8);
    check_multiset_semantics(stack);
  }
  {
    // Width-1 2D-queue is a strict FIFO queue.
    r2d::core::TwoDParams p;
    p.width = 1;
    p.depth = 16;
    p.shift = 8;
    r2d::TwoDQueue<std::uint64_t> queue(p);
    CHECK(queue.empty());
    CHECK(!queue.dequeue().has_value());
    for (std::uint64_t i = 0; i < kN; ++i) queue.enqueue(i);
    CHECK_EQ(queue.approx_size(), kN);
    for (std::uint64_t i = 0; i < kN; ++i) {
      const auto v = queue.dequeue();
      CHECK(v.has_value());
      CHECK_EQ(*v, i);
    }
    CHECK(queue.empty());
    CHECK(!queue.dequeue().has_value());
  }
  {
    // Wide 2D-queue: multiset semantics.
    r2d::core::TwoDParams p;
    p.width = 4;
    p.depth = 4;
    p.shift = 2;
    r2d::TwoDQueue<std::uint64_t> queue(p);
    std::set<std::uint64_t> outstanding;
    for (std::uint64_t i = 0; i < kN; ++i) {
      queue.enqueue(i);
      outstanding.insert(i);
    }
    for (std::uint64_t i = 0; i < kN; ++i) {
      const auto v = queue.dequeue();
      CHECK(v.has_value());
      CHECK(outstanding.erase(*v) == 1);
    }
    CHECK(!queue.dequeue().has_value());
  }
  return TEST_MAIN_RESULT();
}
