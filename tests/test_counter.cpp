// TwoDCounter model tests: exact sequential value (including negative),
// the windowed drift bound across the cells, and concurrent conservation.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_counter.hpp"
#include "check.hpp"

namespace {

std::uint64_t rng(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dull;
}

/// Sequential model: read() is exact after every operation, the counter
/// goes negative without ceremony, and the cells never drift apart by
/// more than the documented bound.
void check_sequential() {
  r2d::core::TwoDParams p;
  p.width = 8;
  p.depth = 4;
  p.shift = 2;
  r2d::TwoDCounter counter(p);
  CHECK_EQ(counter.read(), 0);

  std::int64_t model = 0;
  std::uint64_t state = 0xc017ull;
  const std::int64_t drift_bound =
      static_cast<std::int64_t>(p.depth + 2 * p.shift);
  for (int op = 0; op < 50000; ++op) {
    // Bias toward inc for a while, then toward dec, so both window
    // directions get certified sweeps (including through zero).
    const bool up = op < 15000 ? rng(state) % 4 != 0 : rng(state) % 8 == 0;
    if (up) {
      counter.inc();
      ++model;
    } else {
      counter.dec();
      --model;
    }
    CHECK_EQ(counter.read(), model);
    std::int64_t lo = counter.cell(0), hi = counter.cell(0);
    for (std::size_t i = 1; i < p.width; ++i) {
      const std::int64_t c = counter.cell(i);
      lo = c < lo ? c : lo;
      hi = c > hi ? c : hi;
    }
    CHECK(hi - lo <= drift_bound);
  }
  CHECK(model < 0);  // the dec phase drove it negative
  CHECK_EQ(counter.read(), model);
}

/// Width-1: a single cell under a window is just a counter.
void check_width1() {
  r2d::core::TwoDParams p;
  p.width = 1;
  p.depth = 4;
  p.shift = 2;
  r2d::TwoDCounter counter(p);
  for (int i = 0; i < 1000; ++i) counter.inc();
  CHECK_EQ(counter.read(), 1000);
  for (int i = 0; i < 2500; ++i) counter.dec();
  CHECK_EQ(counter.read(), -1500);
}

/// 4-thread hammer: each thread applies a known net; the quiescent sum
/// must be exact (no lost updates through the sweep/shift machinery).
void check_concurrent() {
  r2d::core::TwoDParams p;
  p.width = 8;
  p.depth = 16;
  p.shift = 8;
  r2d::TwoDCounter counter(p);
  constexpr unsigned kThreads = 4;
  constexpr std::int64_t kIncs = 60000;
  constexpr std::int64_t kDecs = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::int64_t i = 0; i < kIncs; ++i) counter.inc();
      for (std::int64_t i = 0; i < kDecs; ++i) counter.dec();
    });
  }
  for (auto& th : threads) th.join();
  CHECK_EQ(counter.read(), kThreads * (kIncs - kDecs));
}

}  // namespace

int main() {
  check_sequential();
  check_width1();
  check_concurrent();
  return TEST_MAIN_RESULT();
}
