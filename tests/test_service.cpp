// Service-harness correctness: seeded arrival reproducibility, admission
// conservation under a 4-thread hammer, and an end-to-end open-loop run
// against the 2D-bag and 2D-queue scheduling cores.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/two_d_bag.hpp"
#include "core/two_d_queue.hpp"
#include "harness/service/arrival.hpp"
#include "harness/service/server.hpp"
#include "harness/service/shed.hpp"
#include "check.hpp"

namespace {

using namespace r2d::harness::service;

/// Same seed => bit-identical schedule; different seed => different one.
/// Both processes, plus strict monotonicity and a loose mean-rate sanity
/// band (the inverse-CDF draws should land near 1/rate on average).
void check_arrival_reproducibility() {
  for (const ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kOnOff}) {
    ArrivalConfig config;
    config.kind = kind;
    config.rate = 100000.0;
    config.seed = 7;
    ArrivalProcess a(config), b(config);
    config.seed = 8;
    ArrivalProcess c(config);

    constexpr int kDraws = 20000;
    std::uint64_t prev = 0;
    std::uint64_t last = 0;
    bool any_differs = false;
    for (int i = 0; i < kDraws; ++i) {
      const std::uint64_t intent = a.next_ns();
      CHECK_EQ(intent, b.next_ns());
      any_differs = any_differs || intent != c.next_ns();
      CHECK(intent > prev);  // strictly monotone intents
      prev = intent;
      last = intent;
    }
    CHECK(any_differs);
    // kDraws arrivals at 1e5/s should span ~0.2 s of schedule time; the
    // ON-OFF variant has the same mean by construction. 2x either way.
    const double seconds = static_cast<double>(last) / 1e9;
    CHECK(seconds > 0.1 && seconds < 0.4);
  }
  // A million virtual clients thinking ~10 s superpose to 1e5/s.
  CHECK(std::abs(ArrivalConfig::rate_from_clients(1e6, 10000.0) - 1e5) <
        1e-6);
}

/// 4-thread admission hammer: every attempt is admitted or shed exactly
/// once, every admitted task is completed, and the cap is never exceeded.
void check_admission_conservation() {
  constexpr std::uint64_t kCap = 64;
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kAttempts = 200000;
  Admission admission(kCap);
  std::atomic<bool> cap_exceeded{false};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t held = 0;
      for (std::uint64_t i = 0; i < kAttempts; ++i) {
        if (admission.try_admit()) {
          if (admission.inflight() > kCap) {
            cap_exceeded.store(true, std::memory_order_relaxed);
          }
          ++held;
          // Hold up to ~half the cap per thread before completing —
          // staggered so the combined demand overshoots the cap and the
          // shed path is actually exercised.
          if (held > kCap / 2 + t) {
            admission.complete();
            --held;
          }
        }
      }
      while (held-- > 0) admission.complete();
    });
  }
  for (auto& th : threads) th.join();

  CHECK(!cap_exceeded.load());
  CHECK_EQ(admission.admitted() + admission.shed(), kThreads * kAttempts);
  CHECK_EQ(admission.admitted(), admission.completed());
  CHECK_EQ(admission.inflight(), 0u);
  CHECK(admission.shed() > 0);  // the cap must have actually bound
}

/// End-to-end open-loop run: conservation, a populated histogram, and
/// monotone quantiles — against both container API surfaces (push/pop
/// via the bag, enqueue/dequeue via the queue).
template <typename Queue>
void check_run_service(Queue& queue, std::uint64_t shed_cap) {
  ServiceConfig config;
  config.arrival.kind = ArrivalKind::kPoisson;
  config.arrival.rate = 50000.0;
  config.arrival.seed = 11;
  config.workers = 2;
  config.duration_ms = 50;
  config.shed_cap = shed_cap;
  config.slo_us = 500;
  config.service_ns = 200;

  const ServiceResult result = run_service(queue, config);
  CHECK(result.conserved());
  CHECK(result.generated > 0);
  CHECK(result.completed > 0);
  CHECK_EQ(result.generated, result.admitted + result.shed);
  CHECK_EQ(result.admitted, result.completed);
  CHECK_EQ(result.response.count(), result.completed);
  CHECK(result.p50_us() <= result.p99_us());
  CHECK(result.p99_us() <= result.p999_us());
  CHECK(result.seconds > 0.0);
}

}  // namespace

int main() {
  check_arrival_reproducibility();
  check_admission_conservation();
  {
    r2d::core::TwoDParams p;
    p.width = 8;
    p.depth = 16;
    p.shift = 8;
    r2d::TwoDBag<Task> bag(p);
    check_run_service(bag, /*shed_cap=*/1024);
  }
  {
    r2d::core::TwoDParams p;
    p.width = 4;
    p.depth = 16;
    p.shift = 8;
    r2d::TwoDQueue<Task> queue(p);
    check_run_service(queue, /*shed_cap=*/1024);
  }
  {
    // Deliberate overload: a tiny admission cap under the same offered
    // load must shed (and still conserve — shed.hpp's whole contract).
    r2d::core::TwoDParams p;
    p.width = 4;
    p.depth = 16;
    p.shift = 8;
    r2d::TwoDBag<Task> bag(p);
    ServiceConfig config;
    config.arrival.kind = ArrivalKind::kOnOff;
    config.arrival.rate = 100000.0;
    config.arrival.seed = 13;
    config.workers = 2;
    config.duration_ms = 50;
    config.shed_cap = 4;
    config.slo_us = 500;
    config.service_ns = 5000;
    const ServiceResult result = run_service(bag, config);
    CHECK(result.conserved());
    CHECK(result.shed > 0);
    CHECK(result.shed_rate() > 0.0);
  }
  return TEST_MAIN_RESULT();
}
