// sched/ deterministic-scheduler suite.
//
// Always-on here: the history checkers (linearizability + the quality
// bridge) and the stub's API parity. Under -DR2D_SCHED=1 the real work:
// bit-identical replay of seeded schedules, linearizability of the
// strict baselines under adversarial interleavings, and the k / per-end
// rank-error bound of TwoDStack / TwoDDeque checked per schedule across
// a seed sweep (R2D_SCHED_SWEEP_SEEDS seeds x 3 policies; the ci.sh
// sched arm raises the sweep past 1000 schedules).
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "check.hpp"
#include "core/two_d_deque.hpp"
#include "core/two_d_queue.hpp"
#include "core/two_d_stack.hpp"
#include "core/two_d_bag.hpp"
#include "harness/quality.hpp"
#include "sched/dst.hpp"
#include "sched/history.hpp"
#include "stacks/treiber_stack.hpp"
#include "util/env.hpp"

namespace {

using r2d::sched::History;
using r2d::sched::Op;
using r2d::sched::OpKind;
using r2d::sched::Semantics;

Op push_op(std::uint64_t v, std::uint64_t inv, std::uint64_t rsp) {
  return Op{0, OpKind::kPush, v, true, false, inv, rsp};
}
Op pop_op(std::uint64_t v, bool ok, std::uint64_t inv, std::uint64_t rsp) {
  return Op{0, OpKind::kPop, v, ok, false, inv, rsp};
}

/// The checkers are pure functions of the history — exercise them on
/// hand-built histories before trusting them on scheduled ones.
void check_linearizability_checker() {
  using r2d::sched::linearizable;
  // Sequential LIFO / FIFO histories.
  CHECK(linearizable({}, Semantics::kLifo));
  CHECK(linearizable({push_op(1, 1, 2), push_op(2, 3, 4),
                      pop_op(2, true, 5, 6), pop_op(1, true, 7, 8)},
                     Semantics::kLifo));
  CHECK(linearizable({push_op(1, 1, 2), push_op(2, 3, 4),
                      pop_op(1, true, 5, 6), pop_op(2, true, 7, 8)},
                     Semantics::kFifo));
  // Sequential violations: the pop takes the wrong element.
  CHECK(!linearizable({push_op(1, 1, 2), push_op(2, 3, 4),
                       pop_op(1, true, 5, 6)},
                      Semantics::kLifo));
  CHECK(!linearizable({push_op(1, 1, 2), push_op(2, 3, 4),
                       pop_op(2, true, 5, 6)},
                      Semantics::kFifo));
  // Overlapping pushes may linearize in either order, legalizing the
  // "wrong" pop.
  CHECK(linearizable({push_op(1, 1, 10), push_op(2, 2, 11),
                      pop_op(1, true, 12, 13)},
                     Semantics::kLifo));
  // Empty pop is legal only against an empty state: after a completed
  // push with no intervening pop it cannot linearize.
  CHECK(linearizable({pop_op(0, false, 1, 2), push_op(1, 3, 4)},
                     Semantics::kLifo));
  CHECK(!linearizable({push_op(1, 1, 2), pop_op(0, false, 3, 4)},
                      Semantics::kLifo));
  // A value popped twice can never linearize.
  CHECK(!linearizable({push_op(1, 1, 2), pop_op(1, true, 3, 4),
                       pop_op(1, true, 5, 6)},
                      Semantics::kLifo));
}

void check_quality_bridge() {
  // push tickets at invoke, pop tickets at response; failed ops dropped.
  History h(2);
  const auto i1 = h.stamp();
  const auto r1 = h.stamp();
  h.push(0, 7, true, i1, r1);
  const auto i2 = h.stamp();
  const auto r2 = h.stamp();
  h.pop(1, std::optional<std::uint64_t>{7}, i2, r2);
  const auto i3 = h.stamp();
  const auto r3 = h.stamp();
  h.pop(1, std::nullopt, i3, r3);  // empty pop: no quality event
  const auto events = r2d::sched::to_quality_events(h.merged());
  CHECK_EQ(events.size(), std::size_t{2});
  CHECK(events[0].is_push);
  CHECK_EQ(events[0].ticket, i1);
  CHECK(!events[1].is_push);
  CHECK_EQ(events[1].ticket, r2);
  const auto replayed =
      r2d::quality::replay(events, r2d::quality::Order::kLifo);
  CHECK_EQ(replayed.errors.max(), 0.0);
  CHECK_EQ(replayed.unknown_labels, std::uint64_t{0});
}

void check_api_parity() {
  auto& sched = r2d::sched::Scheduler::get();
  sched.configure("off", 0, 0);
  CHECK(sched.reproducer().find("R2D_SCHED=") != std::string::npos);
  CHECK(!sched.perturbed());
  r2d::sched::preempt_point();  // callable in every build
  CHECK_EQ(r2d::sched::hop_seed(42u), std::uint64_t{42});
#if !R2D_SCHED
  static_assert(!r2d::sched::kCompiled);
  CHECK_EQ(sched.steps_taken(), std::uint64_t{0});
  // run() still executes bodies (free-running) in the stub build.
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> bodies;
  for (int i = 0; i < 3; ++i) bodies.push_back([&ran] { ++ran; });
  sched.run(std::move(bodies));
  CHECK_EQ(ran.load(), 3);
#else
  static_assert(r2d::sched::kCompiled);
#endif
}

#if R2D_SCHED

struct SweepStats {
  std::uint64_t schedules = 0;
  std::uint64_t failures_printed = 0;
};
SweepStats g_sweep;

/// Run `body(tid)` on `threads` scheduled threads under (spec, seed).
/// Asserts the run stayed deterministic (no escape hatch, no budget
/// blowout) so every checker verdict below is a replayable fact.
template <typename Body>
void run_schedule(const std::string& spec, std::uint64_t seed,
                  unsigned threads, Body&& body) {
  auto& sched = r2d::sched::Scheduler::get();
  sched.configure(spec, seed, 0);
  std::vector<std::function<void()>> bodies;
  for (unsigned t = 0; t < threads; ++t) {
    bodies.push_back([t, &body] { body(t); });
  }
  sched.run(std::move(bodies));
  ++g_sweep.schedules;
  CHECK(!sched.perturbed());
}

/// Guard that prints the one-line reproducer when a schedule's checks
/// failed — the contract the ISSUE asks for: any failing run is
/// replayable from its printed line.
class ReproducerOnFailure {
 public:
  ReproducerOnFailure() : before_(r2d::test::failures()) {}
  ~ReproducerOnFailure() {
    if (r2d::test::failures() != before_) {
      std::fprintf(stderr, "reproduce with: %s\n",
                   r2d::sched::Scheduler::get().reproducer().c_str());
      ++g_sweep.failures_printed;
    }
  }

 private:
  int before_;
};

const std::vector<std::string> kPolicies = {"random", "pct:1", "pct:3"};

/// Treiber under adversarial schedules must stay linearizable.
void check_treiber_linearizable(const std::string& spec, std::uint64_t seed) {
  ReproducerOnFailure guard;
  r2d::stacks::TreiberStack<std::uint64_t> stack;
  History h(3);
  run_schedule(spec, seed, 3, [&](unsigned tid) {
    for (unsigned i = 0; i < 2; ++i) {
      const std::uint64_t v = tid * 1000 + i + 1;
      const auto inv = h.stamp();
      stack.push(v);
      h.push(tid, v, true, inv, h.stamp());
    }
    for (unsigned i = 0; i < 2; ++i) {
      const auto inv = h.stamp();
      const auto v = stack.pop();
      h.pop(tid, v, inv, h.stamp());
    }
  });
  CHECK(r2d::sched::linearizable(h.merged(), Semantics::kLifo));
}

/// Width-1 TwoDQueue is strict FIFO (k_bound == 0): linearizable.
void check_strict_queue_linearizable(const std::string& spec,
                                     std::uint64_t seed) {
  ReproducerOnFailure guard;
  r2d::core::TwoDParams params{1, 4, 1};
  CHECK_EQ(params.k_bound(), std::uint64_t{0});
  r2d::TwoDQueue<std::uint64_t> queue(params);
  History h(3);
  run_schedule(spec, seed, 3, [&](unsigned tid) {
    for (unsigned i = 0; i < 2; ++i) {
      const std::uint64_t v = tid * 1000 + i + 1;
      const auto inv = h.stamp();
      queue.enqueue(v);
      h.push(tid, v, true, inv, h.stamp());
    }
    for (unsigned i = 0; i < 2; ++i) {
      const auto inv = h.stamp();
      const auto v = queue.dequeue();
      h.pop(tid, v, inv, h.stamp());
    }
  });
  CHECK(r2d::sched::linearizable(h.merged(), Semantics::kFifo));
}

/// TwoDStack: rank error of every schedule bounded by Theorem 1's k.
void check_stack_k_bound(const std::string& spec, std::uint64_t seed) {
  ReproducerOnFailure guard;
  const r2d::core::TwoDParams params{4, 4, 2};  // k = (2*2+4)*3 = 24
  r2d::TwoDStack<std::uint64_t> stack(params);
  History h(3);
  run_schedule(spec, seed, 3, [&](unsigned tid) {
    for (unsigned i = 0; i < 6; ++i) {
      const std::uint64_t v = tid * 1000 + i + 1;
      const auto inv = h.stamp();
      stack.push(v);
      h.push(tid, v, true, inv, h.stamp());
    }
    for (unsigned i = 0; i < 6; ++i) {
      const auto inv = h.stamp();
      const auto v = stack.pop();
      h.pop(tid, v, inv, h.stamp());
    }
  });
  const auto replayed = r2d::quality::replay(
      r2d::sched::to_quality_events(h.merged()), r2d::quality::Order::kLifo);
  CHECK_EQ(replayed.unknown_labels, std::uint64_t{0});
  CHECK(replayed.errors.max() <= static_cast<double>(params.k_bound()));
}

/// TwoDDeque: per-end rank error bounded by (2*shift+depth)*(width-1)
/// — the E12 per-end target, machine-checked per schedule.
void check_deque_per_end_bound(const std::string& spec, std::uint64_t seed) {
  ReproducerOnFailure guard;
  const r2d::core::TwoDParams params{4, 4, 2};
  r2d::TwoDDeque<std::uint64_t> deque(params);
  History h(4);
  run_schedule(spec, seed, 4, [&](unsigned tid) {
    const bool front = (tid % 2) == 0;
    for (unsigned i = 0; i < 5; ++i) {
      const std::uint64_t v = tid * 1000 + i + 1;
      const auto inv = h.stamp();
      if (front) {
        deque.push_front(v);
      } else {
        deque.push_back(v);
      }
      h.push(tid, v, true, inv, h.stamp(), front);
    }
    for (unsigned i = 0; i < 5; ++i) {
      const auto inv = h.stamp();
      const auto v = front ? deque.pop_front() : deque.pop_back();
      h.pop(tid, v, inv, h.stamp(), front);
    }
  });
  const auto replayed = r2d::quality::replay(
      r2d::sched::to_quality_events(h.merged()), r2d::quality::Order::kDeque);
  CHECK_EQ(replayed.unknown_labels, std::uint64_t{0});
  CHECK(replayed.errors.max() <= static_cast<double>(params.k_bound()));
}

/// TwoDBag under schedules: pure conservation (every pushed value comes
/// out exactly once across scheduled pops + the post-run drain).
void check_bag_conservation(const std::string& spec, std::uint64_t seed) {
  ReproducerOnFailure guard;
  r2d::TwoDBag<std::uint64_t> bag(r2d::core::TwoDParams{4, 4, 2});
  History h(3);
  run_schedule(spec, seed, 3, [&](unsigned tid) {
    for (unsigned i = 0; i < 8; ++i) {
      const std::uint64_t v = tid * 1000 + i + 1;
      const auto inv = h.stamp();
      bag.put(v);
      h.push(tid, v, true, inv, h.stamp());
    }
    for (unsigned i = 0; i < 4; ++i) {
      const auto inv = h.stamp();
      const auto v = bag.take();
      h.pop(tid, v, inv, h.stamp());
    }
  });
  std::map<std::uint64_t, int> balance;
  for (const Op& op : h.merged()) {
    if (!op.ok) continue;
    balance[op.value] += op.kind == OpKind::kPush ? 1 : -1;
  }
  while (auto v = bag.take()) balance[*v] -= 1;
  for (const auto& [value, count] : balance) {
    if (count != 0) {
      std::fprintf(stderr, "bag conservation broken at value %llu (%d)\n",
                   static_cast<unsigned long long>(value), count);
    }
    CHECK_EQ(count, 0);
  }
}

/// Same policy + seed ==> byte-identical history, twice over. This IS
/// the bit-replayability acceptance criterion.
void check_replay_determinism() {
  for (const std::string& spec : kPolicies) {
    std::vector<std::string> serialized;
    for (int attempt = 0; attempt < 2; ++attempt) {
      r2d::TwoDStack<std::uint64_t> stack(
          r2d::core::TwoDParams{4, 4, 2});
      History h(3);
      run_schedule(spec, 0xfeedc0de, 3, [&](unsigned tid) {
        for (unsigned i = 0; i < 5; ++i) {
          const std::uint64_t v = tid * 1000 + i + 1;
          const auto inv = h.stamp();
          stack.push(v);
          h.push(tid, v, true, inv, h.stamp());
          const auto pinv = h.stamp();
          const auto p = stack.pop();
          h.pop(tid, p, pinv, h.stamp());
        }
      });
      serialized.push_back(h.serialize());
    }
    if (serialized[0] != serialized[1]) {
      std::fprintf(stderr, "replay diverged under %s\n", spec.c_str());
    }
    CHECK(serialized[0] == serialized[1]);
  }
}

/// A tiny step budget must terminate the run (free-run escape), and the
/// scheduler must say so via perturbed().
void check_budget_termination() {
  auto& sched = r2d::sched::Scheduler::get();
  sched.configure("pct:2", 0xabc, 16);
  r2d::TwoDStack<std::uint64_t> stack(r2d::core::TwoDParams{4, 4, 2});
  std::vector<std::function<void()>> bodies;
  for (unsigned t = 0; t < 3; ++t) {
    bodies.push_back([&stack, t] {
      for (unsigned i = 0; i < 50; ++i) {
        stack.push(t * 1000 + i);
        stack.pop();
      }
    });
  }
  const std::uint64_t steps = sched.run(std::move(bodies));
  CHECK(steps >= 16);
  CHECK(sched.perturbed());
}

void run_sweep() {
  // ctest default stays quick; the ci.sh sched arm raises the seed count
  // so policies x seeds x suites crosses the 1000-schedule criterion.
  const std::uint64_t seeds =
      r2d::util::env_u64("R2D_SCHED_SWEEP_SEEDS", 8);
  for (const std::string& spec : kPolicies) {
    for (std::uint64_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = 0x51ed5eed + s * 0x9e37;
      check_treiber_linearizable(spec, seed);
      check_strict_queue_linearizable(spec, seed);
      check_stack_k_bound(spec, seed);
      check_deque_per_end_bound(spec, seed);
      check_bag_conservation(spec, seed);
    }
  }
  std::printf("sched sweep: %llu schedules explored\n",
              static_cast<unsigned long long>(g_sweep.schedules));
}

#endif  // R2D_SCHED

}  // namespace

int main() {
  check_linearizability_checker();
  check_quality_bridge();
  check_api_parity();
#if R2D_SCHED
  check_replay_determinism();
  run_sweep();
  check_budget_termination();
#else
  std::puts("sched compiled out (R2D_SCHED=0): checker + parity tests only");
#endif
  return TEST_MAIN_RESULT();
}
