// Reclamation-layer tests: Pool recycling, and the epoch / hazard /
// leaky policies driven through a contended stack (the ASan configuration
// of this test is what would catch a use-after-free or double-free). The
// epoch policy is exercised under both fence modes — membarrier-based
// asymmetric pin() and the symmetric seq_cst fallback forced by
// R2D_MEMBARRIER=0.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"
#include "reclaim/pool.hpp"
#include "stacks/treiber_stack.hpp"
#include "check.hpp"

namespace {

struct Tracked {
  static std::atomic<int> live;
  std::uint64_t payload;
  explicit Tracked(std::uint64_t p) : payload(p) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

template <typename Reclaimer>
void hammer_with_reclaimer(const char* name) {
  r2d::stacks::TreiberStack<std::uint64_t, Reclaimer> stack;
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOps = 20000;
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        stack.push((static_cast<std::uint64_t>(t) << 32) | i);
        if (i % 2 == 0 && stack.pop()) popped.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t drained = 0;
  while (stack.pop()) ++drained;
  if (popped.load() + drained != kThreads * kOps) {
    std::fprintf(stderr, "FAIL: %s dropped operations\n", name);
    ++r2d::test::failures();
  }
}

}  // namespace

int main() {
  {
    // The pool constructs/destroys exactly once per acquire/release and
    // recycles memory.
    r2d::reclaim::Pool<Tracked> pool;
    Tracked* a = pool.acquire(std::uint64_t{1});
    CHECK_EQ(Tracked::live.load(), 1);
    CHECK_EQ(a->payload, std::uint64_t{1});
    pool.release(a);
    CHECK_EQ(Tracked::live.load(), 0);
    Tracked* b = pool.acquire(std::uint64_t{2});
    CHECK(b == a);  // same-thread recycle hits the same shard
    pool.release(b);

    // Burst: everything released is reusable.
    std::vector<Tracked*> batch;
    for (std::uint64_t i = 0; i < 512; ++i) {
      batch.push_back(pool.acquire(i));
    }
    CHECK_EQ(Tracked::live.load(), 512);
    std::set<Tracked*> first_round(batch.begin(), batch.end());
    for (Tracked* p : batch) pool.release(p);
    CHECK_EQ(Tracked::live.load(), 0);
    batch.clear();
    for (std::uint64_t i = 0; i < 512; ++i) batch.push_back(pool.acquire(i));
    for (Tracked* p : batch) CHECK(first_round.count(p) == 1);
    for (Tracked* p : batch) pool.release(p);
  }
  {
    // Concurrent pool hammer.
    r2d::reclaim::Pool<Tracked> pool;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < 4; ++t) {
      workers.emplace_back([&] {
        for (std::uint64_t i = 0; i < 50000; ++i) {
          Tracked* p = pool.acquire(i);
          pool.release(p);
        }
      });
    }
    for (auto& w : workers) w.join();
    CHECK_EQ(Tracked::live.load(), 0);
  }

  {
    // Default mode: membarrier-based asymmetric fencing wherever the
    // kernel supports it, the symmetric fence elsewhere.
    r2d::reclaim::EpochReclaimer r;
    std::fprintf(stderr, "epoch pin fence mode: %s\n",
                 r.uses_membarrier() ? "membarrier" : "seq_cst fallback");
  }
  hammer_with_reclaimer<r2d::reclaim::EpochReclaimer>("epoch/auto");

  // R2D_MEMBARRIER=0 must force the symmetric fallback (the knob is read
  // per reclaimer construction), and the policy must stay correct on it.
  setenv("R2D_MEMBARRIER", "0", 1);
  {
    r2d::reclaim::EpochReclaimer r;
    CHECK(!r.uses_membarrier());
  }
  hammer_with_reclaimer<r2d::reclaim::EpochReclaimer>("epoch/fallback");
  unsetenv("R2D_MEMBARRIER");

  hammer_with_reclaimer<r2d::reclaim::HazardReclaimer>("hazard");
#if !defined(__SANITIZE_ADDRESS__)
  // The leaky policy leaks by design; skip it under LeakSanitizer.
  hammer_with_reclaimer<r2d::reclaim::LeakyReclaimer>("leaky");
#endif

  return TEST_MAIN_RESULT();
}
