// Slot-lease lifecycle tests (DESIGN.md §13): per-thread slots must be a
// renewable resource under unbounded thread churn, safe in both
// destruction orders.
//
// Covers: bounded slot high-water mark across thousands of sequential
// spawn-join threads against one instance of each lessor flavour (epoch,
// hazard, pool allocator) and against long-lived containers (the ISSUE 7
// acceptance loop: TwoDStack<.., EpochReclaimer, PoolAlloc>); thread
// exiting AFTER its instance was destroyed (exit walk must skip it);
// instance destroyed WHILE exited threads' retirees sit in its orphan
// queue (destructor drains them — the leak check); orphan draining while
// the instance stays live (try_advance frees them after the grace
// period); and revenant/steal arbitration — threads abandoned without
// exit hooks have their slots stolen, then come back and must re-enter
// safely. The TSan configuration of this test is the steal-hammer race
// check; the ASan configuration is the orphan leak check.
//
// R2D_MAX_SLOTS is pinned to 8 before anything claims, so every bounded-
// HWM check also proves no silent fallback to "just take another slot".
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_stack.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/slot_registry.hpp"
#include "check.hpp"

namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Sequential spawn-join churn: `threads` short-lived threads each run
/// `body` once against a shared instance. With leases, every exiting
/// thread frees its slot and the next claimant re-takes the lowest free
/// index, so the high-water mark must stay at one active claimant + O(1).
void churn(unsigned threads, const std::function<void()>& body) {
  for (unsigned t = 0; t < threads; ++t) std::thread(body).join();
}

struct Tracked {
  static std::atomic<int> live;
  std::uint64_t payload;
  explicit Tracked(std::uint64_t p) : payload(p) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

/// Each lessor flavour alone: N exits, N re-claims, HWM stays ~1.
void per_lessor_churn() {
  const unsigned n = kSanitized ? 300 : 2000;
  {
    r2d::reclaim::EpochReclaimer reclaimer;
    churn(n, [&] { auto guard = reclaimer.pin(); });
    CHECK(reclaimer.slot_hwm() <= 2);
  }
  {
    r2d::reclaim::HazardReclaimer reclaimer;
    churn(n, [&] { auto guard = reclaimer.pin(); });
    CHECK(reclaimer.slot_hwm() <= 2);
  }
  {
    r2d::reclaim::PoolAlloc<std::uint64_t> alloc;
    churn(n, [&] {
      std::uint64_t* p = alloc.acquire(3ull);
      alloc.release(p);
    });
    CHECK(alloc.slot_hwm() <= 2);
  }
}

/// The ISSUE 7 acceptance loop: tens of thousands of short-lived threads
/// against one long-lived TwoDStack<.., EpochReclaimer, PoolAlloc>, each
/// doing real pushes and pops (claiming BOTH the reclaimer's and the
/// allocator's slot), with the cap pinned at 8 — no SlotsExhausted, HWM
/// bounded by one active thread + O(1), and the stack conserved.
void acceptance_churn() {
  const unsigned n = kSanitized ? 1500 : 10000;
  {
    r2d::TwoDStack<std::uint64_t, r2d::reclaim::EpochReclaimer,
                   r2d::reclaim::PoolAlloc>
        stack(r2d::core::TwoDParams::for_k(64, 2));
    std::atomic<std::uint64_t> popped{0};
    churn(n, [&] {
      stack.push(7);
      if (stack.pop().has_value()) popped.fetch_add(1);
    });
    CHECK(stack.slot_hwm() <= 3);
    std::uint64_t drained = 0;
    while (stack.pop().has_value()) ++drained;
    CHECK_EQ(popped.load() + drained, static_cast<std::uint64_t>(n));
  }
  {
    r2d::TwoDStack<std::uint64_t, r2d::reclaim::HazardReclaimer,
                   r2d::reclaim::HeapAlloc>
        stack(r2d::core::TwoDParams::for_k(64, 2));
    churn(kSanitized ? 300 : 2000, [&] {
      stack.push(9);
      stack.pop();
    });
    CHECK(stack.slot_hwm() <= 3);
  }
}

/// Destruction order A: the instance dies while a thread that leased a
/// slot on it is still parked. The thread's later exit walk must skip the
/// unregistered instance instead of touching freed memory.
void instance_dies_first() {
  std::mutex mu;
  std::condition_variable cv;
  int state = 0;  // 1 = worker claimed, 2 = instance destroyed
  auto wait_for = [&](int v) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return state >= v; });
  };
  auto advance = [&](int v) {
    {
      std::lock_guard<std::mutex> lock(mu);
      state = v;
    }
    cv.notify_all();
  };

  auto* reclaimer = new r2d::reclaim::EpochReclaimer;
  std::thread worker([&] {
    { auto guard = reclaimer->pin(); }
    advance(1);
    wait_for(2);  // outlive the instance, then exit
  });
  wait_for(1);
  delete reclaimer;
  advance(2);
  worker.join();
}

/// Destruction order B: threads retire nodes and exit, parking their
/// retirees in the instance's orphan queue; the instance is destroyed
/// before any scan/advance adopted them. The destructor must drain the
/// queue — Tracked::live returning to zero is the leak check (and ASan
/// double-checks the frees).
void instance_dies_with_orphans() {
  CHECK_EQ(Tracked::live.load(), 0);
  {
    r2d::reclaim::EpochReclaimer reclaimer;
    churn(4, [&] {
      auto guard = reclaimer.pin();
      guard.retire(new Tracked{11});
    });
  }
  CHECK_EQ(Tracked::live.load(), 0);
  {
    r2d::reclaim::HazardReclaimer reclaimer;
    churn(4, [&] {
      auto guard = reclaimer.pin();
      guard.retire(new Tracked{13});
    });
  }
  CHECK_EQ(Tracked::live.load(), 0);
}

/// Orphans must also drain while the instance LIVES: a long-lived
/// container may never be destroyed, so exited threads' retirees have to
/// come back through try_advance once their grace epoch passes. (Deferred
/// under TSan, where all EBR frees wait for the destructor.)
void orphans_drain_while_live() {
#if !R2D_EBR_DEFER_FREES
  r2d::reclaim::EpochReclaimer reclaimer;
  churn(4, [&] {
    auto guard = reclaimer.pin();
    guard.retire(new Tracked{17});
  });
  CHECK_EQ(Tracked::live.load(), 4);
  // Keep the instance busy from the main thread with plain (un-Tracked)
  // retires: every retire ticks the advance cadence, epochs advance (no
  // stragglers left), the orphans' grace periods pass, and try_advance
  // drains them. 4096 retires = at least 16 advance attempts.
  for (int i = 0; i < 4096; ++i) {
    auto guard = reclaimer.pin();
    guard.retire(new std::uint64_t{19});
  }
  CHECK_EQ(Tracked::live.load(), 0);  // drained live, not by the dtor
#endif
}

/// Revenant/steal arbitration. Eight holders claim every slot, then are
/// marked dead WITHOUT releasing (a thread killed before its TLS
/// destructors). A fresh claimant must steal a quiesced dead slot instead
/// of throwing. When the holders come back (revenants), each claim must
/// re-enter through the registry: retake its still-owned slot, or — for
/// the one whose slot was stolen — claim the stealer's freed slot. No
/// thread may ever write through a slot it lost.
void revenant_steal() {
  r2d::reclaim::EpochReclaimer reclaimer;
  std::mutex mu;
  std::condition_variable cv;
  int parked = 0, go = 0;
  std::atomic<int> failures{0};

  std::vector<std::thread> holders;
  for (int t = 0; t < 8; ++t) {
    holders.emplace_back([&] {
      { auto guard = reclaimer.pin(); }
      r2d::reclaim::detail::ChurnRegistry::get().abandon_current_thread();
      {
        std::lock_guard<std::mutex> lock(mu);
        ++parked;
      }
      cv.notify_all();
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return go != 0; });
      }
      // Revenant: this pin must resurrect the thread and re-arbitrate its
      // slot (or claim a fresh one) — never throw, never alias a live
      // thread's slot.
      try {
        auto guard = reclaimer.pin();
      } catch (const r2d::reclaim::SlotsExhausted&) {
        failures.fetch_add(1);
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return parked == 8; });
  }
  CHECK_EQ(reclaimer.slot_hwm(), 8u);

  // All 8 slots owned by dead tokens: a fresh thread must steal, and its
  // exit must release the stolen slot again.
  churn(2, [&] { auto guard = reclaimer.pin(); });

  {
    std::lock_guard<std::mutex> lock(mu);
    go = 1;
  }
  cv.notify_all();
  for (auto& t : holders) t.join();
  CHECK_EQ(failures.load(), 0);
  CHECK_EQ(reclaimer.slot_hwm(), 8u);  // never grew past the cap

  // Steal hammer: two live pinners loop while churners claim, abandon,
  // and exit concurrently — every claim/steal/exit-walk interleaving runs
  // under TSan. The pinners are live, so their slots must never be stolen
  // out from under them.
  std::atomic<bool> stop{false};
  std::atomic<int> hammer_failures{0};
  std::vector<std::thread> pinners;
  for (int t = 0; t < 2; ++t) {
    pinners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto guard = reclaimer.pin();
      }
    });
  }
  const int rounds = kSanitized ? 60 : 200;
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::thread> churners;
    for (int t = 0; t < 3; ++t) {
      churners.emplace_back([&] {
        try {
          { auto guard = reclaimer.pin(); }
          r2d::reclaim::detail::ChurnRegistry::get()
              .abandon_current_thread();
          { auto guard = reclaimer.pin(); }  // immediate revenant
        } catch (const r2d::reclaim::SlotsExhausted&) {
          hammer_failures.fetch_add(1);
        }
      });
    }
    for (auto& t : churners) t.join();
  }
  stop.store(true);
  for (auto& t : pinners) t.join();
  CHECK_EQ(hammer_failures.load(), 0);
}

}  // namespace

int main() {
  // Must precede the first detail::max_slots() call anywhere in the
  // process (the knob is cached once). Stealing stays at its default (on).
  setenv("R2D_MAX_SLOTS", "8", 1);
  CHECK_EQ(r2d::reclaim::detail::max_slots(), 8u);

  per_lessor_churn();
  acceptance_churn();
  instance_dies_first();
  instance_dies_with_orphans();
  orphans_drain_while_live();
  revenant_steal();
  return TEST_MAIN_RESULT();
}
