// Fault-injection correctness (DESIGN.md §15): injector policy semantics
// and API parity across the R2D_FAULT on/off builds, the deterministic
// nth-site OOM sweep (fail exactly the Nth resource acquisition, for every
// N the scripted run reaches, and prove multiset conservation after each),
// a forced-DWCAS helping hammer, and the 4-thread retry/backoff/deadline
// service smoke with the extended conservation identity.
//
// Two modes: when the R2D_FAULT env var selects a live policy (ci.sh's
// rate-torture stage), the process-wide injector self-configures from the
// environment and this binary runs only the concurrent hammers under it.
// Otherwise it runs the full deterministic suite; in an -DR2D_FAULT=0
// build the injection-dependent checks degenerate to single clean passes
// through the same code paths (API parity is still asserted).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/two_d_bag.hpp"
#include "core/two_d_deque.hpp"
#include "core/two_d_queue.hpp"
#include "core/two_d_stack.hpp"
#include "fault/inject.hpp"
#include "harness/service/server.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "check.hpp"

namespace {

using r2d::fault::Site;
using r2d::reclaim::EpochReclaimer;
using r2d::reclaim::HazardReclaimer;
using r2d::reclaim::HeapAlloc;
using r2d::reclaim::PoolAlloc;

r2d::core::TwoDParams small_params() {
  r2d::core::TwoDParams p;
  p.width = 4;
  p.depth = 16;
  p.shift = 4;
  return p;
}

// ---- generic container surface -------------------------------------------

/// Insert via the non-throwing status API (the surface under test);
/// true when the element actually entered the container.
template <typename C>
bool checked_insert(C& c, std::uint64_t v) {
  if constexpr (requires { c.try_push_front(v); }) {
    return c.try_push_front(v) == r2d::core::OpStatus::kOk;
  } else if constexpr (requires { c.try_push(v); }) {
    return c.try_push(v) == r2d::core::OpStatus::kOk;
  } else {
    return c.try_enqueue(v) == r2d::core::OpStatus::kOk;
  }
}

/// Remove with resource failures absorbed: nullopt means "nothing came
/// out" — empty, contended-and-gave-up, or a SlotsExhausted pin. The
/// strong guarantee makes all three equivalent for conservation.
template <typename C>
std::optional<std::uint64_t> checked_remove(C& c) {
  try {
    if constexpr (requires { c.pop_back(); }) {
      return c.pop_back();
    } else if constexpr (requires { c.pop(); }) {
      return c.pop();
    } else {
      return c.dequeue();
    }
  } catch (const std::bad_alloc&) {
    return std::nullopt;
  } catch (const r2d::reclaim::SlotsExhausted&) {
    return std::nullopt;
  }
}

// ---- injector policy + parity --------------------------------------------

void check_api_parity() {
  auto& inj = r2d::fault::injector();
  inj.configure("off", 0);
  CHECK(!inj.evaluate(Site::kHeapAlloc));
  CHECK_EQ(inj.evals(), std::uint64_t{0});
  CHECK_EQ(inj.injected(), std::uint64_t{0});
  CHECK_EQ(inj.injected(Site::kHeapAlloc), std::uint64_t{0});
  inj.reset_counts();
  CHECK(!R2D_FAULT_POINT(kHeapAlloc));
#if !R2D_FAULT
  // Off-build parity: the stub is stateless and the fault point folds to
  // a compile-time constant at every call site.
  static_assert(sizeof(r2d::fault::Injector<>) <= sizeof(void*));
  static_assert(!r2d::fault::should_fail<Site::kShiftCas>());
#endif
  // The site name table is total and invertible.
  for (unsigned i = 0; i < r2d::fault::kSiteCount; ++i) {
    const Site s = static_cast<Site>(i);
    CHECK(r2d::fault::site_from_name(r2d::fault::site_name(s)) == s);
  }
  CHECK(r2d::fault::site_from_name("no-such-site") == Site::kCount);
}

void check_policies() {
  auto& inj = r2d::fault::injector();
  if constexpr (r2d::fault::kCompiled) {
    // nth:K fires exactly once, at the Kth evaluation, deterministically.
    inj.configure("nth:3", 1);
    int fired = -1;
    for (int i = 0; i < 5; ++i) {
      if (inj.evaluate(Site::kHeapAlloc)) fired = i;
    }
    CHECK_EQ(fired, 2);
    CHECK_EQ(inj.injected(), std::uint64_t{1});
    CHECK_EQ(inj.injected(Site::kHeapAlloc), std::uint64_t{1});

    // site:NAME:K ignores other sites and fires once on the Kth of NAME.
    inj.configure("site:shift-cas:2", 1);
    CHECK(!inj.evaluate(Site::kShiftCas));
    CHECK(!inj.evaluate(Site::kHeapAlloc));
    CHECK(inj.evaluate(Site::kShiftCas));
    CHECK(!inj.evaluate(Site::kShiftCas));
    CHECK_EQ(inj.injected(), std::uint64_t{1});
    CHECK_EQ(inj.injected(Site::kShiftCas), std::uint64_t{1});

    // rate:1.0 fires every evaluation; rate:0 and junk parse to off.
    inj.configure("rate:1.0", 99);
    CHECK(inj.evaluate(Site::kDwcasHead));
    CHECK(inj.evaluate(Site::kSlotClaim));
    inj.configure("rate:0", 99);
    CHECK(!inj.evaluate(Site::kDwcasHead));
    inj.configure("bogus:policy", 3);
    CHECK(!inj.evaluate(Site::kHeapAlloc));
    inj.configure("off", 0);
  } else {
    // Disabled build: the same calls compile and never fire.
    inj.configure("nth:1", 1);
    CHECK(!inj.evaluate(Site::kHeapAlloc));
    CHECK_EQ(inj.injected(), std::uint64_t{0});
    inj.configure("off", 0);
  }
}

// ---- deterministic nth OOM sweep -----------------------------------------

/// For N = 1, 2, ... run one scripted single-threaded workload with the
/// Nth fault-point evaluation forced to fail, then disable injection,
/// drain, and assert multiset conservation: every element that entered
/// came out exactly once, nothing duplicated, nothing lost. The sweep
/// ends at the first N no evaluation reaches (the script's last site).
template <typename C>
void oom_sweep(const char* label) {
  auto& inj = r2d::fault::injector();
  std::uint64_t injected_runs = 0;
  std::uint64_t n = 1;
  constexpr std::uint64_t kMaxN = 4000;  // terminates long before this
  for (; n <= kMaxN; ++n) {
    inj.configure("nth:" + std::to_string(n), 42);
    std::multiset<std::uint64_t> expect;
    std::unique_ptr<C> c;
    try {
      c = std::make_unique<C>(small_params());
    } catch (const std::bad_alloc&) {
    } catch (const r2d::reclaim::SlotsExhausted&) {
    }
    if (c) {
      for (std::uint64_t v = 0; v < 24; ++v) {
        if (checked_insert(*c, v)) expect.insert(v);
      }
      for (int i = 0; i < 8; ++i) {
        if (const auto v = checked_remove(*c)) {
          CHECK(expect.count(*v) > 0);
          expect.erase(expect.find(*v));
        }
      }
      for (std::uint64_t v = 100; v < 108; ++v) {
        if (checked_insert(*c, v)) expect.insert(v);
      }
    }
    const std::uint64_t fired = inj.injected();
    inj.configure("off", 0);
    if (c) {
      while (const auto v = checked_remove(*c)) {
        CHECK(expect.count(*v) > 0);
        expect.erase(expect.find(*v));
      }
      CHECK(expect.empty());
      CHECK(c->empty());
    } else {
      CHECK(fired > 0);  // construction only fails when injection fired
    }
    c.reset();  // destroy with injection off
    if (fired == 0) break;  // N is past the script's last evaluation
    ++injected_runs;
  }
  if constexpr (r2d::fault::kCompiled) {
    CHECK(injected_runs > 0);
    CHECK(n <= kMaxN);
  }
  std::printf("  oom sweep %-40s sites=%llu\n", label,
              static_cast<unsigned long long>(injected_runs));
}

void check_oom_sweeps() {
  oom_sweep<r2d::TwoDStack<std::uint64_t, EpochReclaimer, HeapAlloc>>(
      "stack/epoch/heap");
  oom_sweep<r2d::TwoDStack<std::uint64_t, HazardReclaimer, PoolAlloc>>(
      "stack/hazard/pool");
  oom_sweep<r2d::TwoDQueue<std::uint64_t, EpochReclaimer, HeapAlloc>>(
      "queue/epoch/heap");
  oom_sweep<r2d::TwoDQueue<std::uint64_t, HazardReclaimer, PoolAlloc>>(
      "queue/hazard/pool");
  oom_sweep<r2d::TwoDDeque<std::uint64_t, EpochReclaimer, HeapAlloc>>(
      "deque/epoch/heap");
  oom_sweep<r2d::TwoDDeque<std::uint64_t, HazardReclaimer, PoolAlloc>>(
      "deque/hazard/pool");
}

// ---- concurrent hammers ---------------------------------------------------

/// 4 threads hammer `c` with inserts and removes while the current
/// injection policy fires; then injection is disabled, the container is
/// drained, and the union of everything popped plus everything drained
/// must equal — as a multiset — everything successfully pushed.
template <typename C>
void conservation_hammer(C& c, const char* label) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kOps = 20000;
  std::vector<std::vector<std::uint64_t>> pushed(kThreads);
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        const std::uint64_t v = t * 1'000'000'000ull + i;
        if (i % 3 != 2) {
          if (checked_insert(c, v)) pushed[t].push_back(v);
        } else if (const auto got = checked_remove(c)) {
          popped[t].push_back(*got);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  r2d::fault::injector().configure("off", 0);

  std::multiset<std::uint64_t> expect;
  std::multiset<std::uint64_t> got;
  for (unsigned t = 0; t < kThreads; ++t) {
    expect.insert(pushed[t].begin(), pushed[t].end());
    got.insert(popped[t].begin(), popped[t].end());
  }
  while (const auto v = checked_remove(c)) got.insert(*v);
  CHECK(c.empty());
  CHECK_EQ(expect.size(), got.size());
  CHECK(expect == got);
  std::printf("  hammer %-30s pushed=%zu\n", label, expect.size());
}

/// Forced-DWCAS failures drive the deque's helping/bridge machinery far
/// more often than contention alone would; conservation must survive it.
void check_dwcas_helping_hammer() {
  if constexpr (!r2d::fault::kCompiled) return;
  r2d::TwoDDeque<std::uint64_t> deque(small_params());
  r2d::fault::injector().configure("rate:0.05", 7);
  conservation_hammer(deque, "deque forced-dwcas");
}

/// ci.sh rate-torture entry: the injector already self-configured from
/// the R2D_FAULT env var; hammer a stack and a deque under it.
void run_env_torture() {
  {
    r2d::TwoDStack<std::uint64_t, EpochReclaimer, HeapAlloc> stack(
        small_params());
    conservation_hammer(stack, "stack env-policy");
  }
  // Reinstate the env policy (the hammer leaves injection off).
  r2d::fault::injector().configure(
      r2d::util::env_str("R2D_FAULT", "off"),
      r2d::util::env_u64("R2D_FAULT_SEED", 0));
  {
    r2d::TwoDDeque<std::uint64_t, HazardReclaimer, PoolAlloc> deque(
        small_params());
    conservation_hammer(deque, "deque env-policy");
  }
}

// ---- service degradation --------------------------------------------------

/// 4-worker overload smoke: a tiny admission cap under 5x offered load
/// with bounded retries, per-request deadlines, and the degrade
/// controller enabled. The extended conservation identity must hold
/// exactly, and every degradation mechanism must actually engage.
void check_service_degradation() {
  using namespace r2d::harness::service;
  r2d::TwoDBag<Task> bag(small_params());
  ServiceConfig config;
  config.arrival.kind = ArrivalKind::kPoisson;
  config.arrival.rate = 100000.0;
  config.arrival.seed = 17;
  config.workers = 4;
  config.duration_ms = 60;
  config.shed_cap = 2;
  config.slo_us = 500;
  config.service_ns = 100000;
  config.retry.max_retries = 50;
  config.retry.backoff_ns = 2000;
  config.retry.deadline_us = 2000;
  config.degrade_factor = 4;
  config.degrade_window = 64;

  const ServiceResult r = run_service(bag, config);
  CHECK(r.conserved());
  CHECK(r.generated > 0);
  CHECK_EQ(r.generated, r.admitted + r.shed + r.timed_out);
  CHECK_EQ(r.admitted, r.completed);
  CHECK_EQ(r.response.count(), r.completed);
  CHECK(r.completed > 0);
  CHECK(r.shed + r.timed_out > 0);  // the cap must have actually bound
  CHECK(r.retries > 0);             // the retry loop ran
  CHECK(r.timed_out > 0);           // deadlines actually fired
  CHECK(r.degraded);                // sustained pressure entered degraded
  CHECK(r.degraded_entries >= 1);
  std::printf(
      "  service: gen=%llu adm=%llu shed=%llu timeout=%llu retries=%llu "
      "degraded_entries=%llu\n",
      static_cast<unsigned long long>(r.generated),
      static_cast<unsigned long long>(r.admitted),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.timed_out),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.degraded_entries));
}

}  // namespace

int main() {
  const char* env = std::getenv("R2D_FAULT");
  if (r2d::fault::kCompiled && env != nullptr &&
      std::string(env) != "off" && std::string(env) != "") {
    run_env_torture();
    return TEST_MAIN_RESULT();
  }
  check_api_parity();
  check_policies();
  check_oom_sweeps();
  check_dwcas_helping_hammer();
  check_service_degradation();
  return TEST_MAIN_RESULT();
}
