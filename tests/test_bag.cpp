// TwoDBag correctness: multiset model checks (width-1 vs std::multiset,
// per the service-harness issue), window snap-down behavior, concurrent
// no-loss/no-duplication, and the §10 alloc/reclaimer policy matrix.
#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_bag.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/hazard.hpp"
#include "check.hpp"

namespace {

constexpr std::uint64_t kN = 5000;

/// Deterministic test PRNG (xorshift64*), independent of the hop PRNG.
std::uint64_t rng(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dull;
}

/// Width-1 bag against a std::multiset model: a random put/take sequence
/// where every take must return some element the model still holds, and
/// a drain at the end must return exactly the model's residue.
void check_width1_model() {
  r2d::core::TwoDParams p;
  p.width = 1;
  p.depth = 16;
  p.shift = 8;
  r2d::TwoDBag<std::uint64_t> bag(p);
  std::multiset<std::uint64_t> model;
  std::uint64_t state = 0x5eedu;
  std::uint64_t label = 0;
  for (std::uint64_t op = 0; op < 20000; ++op) {
    if (rng(state) % 2 == 0) {
      // Duplicate labels on purpose: a multiset model must cope.
      const std::uint64_t v = label++ % 97;
      bag.put(v);
      model.insert(v);
    } else {
      const auto v = bag.take();
      if (model.empty()) {
        CHECK(!v.has_value());
      } else {
        CHECK(v.has_value());
        const auto it = model.find(*v);
        CHECK(it != model.end());
        if (it != model.end()) model.erase(it);
      }
    }
  }
  std::multiset<std::uint64_t> drained;
  while (auto v = bag.take()) drained.insert(*v);
  CHECK(drained == model);
  CHECK(bag.empty());
  CHECK(!bag.take().has_value());
}

/// Wide bag, sequential: no loss, no duplication, no invention — and the
/// window invariants (never below depth; the take-side snap-down brings
/// it back down after a drain instead of leaving it at the put-side
/// high-water mark).
void check_wide_sequential() {
  r2d::core::TwoDParams p;
  p.width = 8;
  p.depth = 4;
  p.shift = 2;
  r2d::TwoDBag<std::uint64_t> bag(p);
  CHECK(!bag.take().has_value());
  CHECK_EQ(bag.window(), p.depth);

  std::set<std::uint64_t> outstanding;
  for (std::uint64_t i = 0; i < kN; ++i) {
    bag.put(i);
    outstanding.insert(i);
  }
  CHECK_EQ(bag.approx_size(), kN);
  const std::uint64_t high_window = bag.window();
  CHECK(high_window >= p.depth);

  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto v = bag.take();
    CHECK(v.has_value());
    CHECK(outstanding.erase(*v) == 1);
    CHECK(bag.window() >= p.depth);
  }
  CHECK(outstanding.empty());
  CHECK(!bag.take().has_value());
  CHECK(bag.empty());
  // Draining kN items through a depth-4 band forces certified take
  // sweeps; the snap-down must have moved the window well below the
  // put-side high-water mark by the time the bag is empty.
  CHECK(bag.window() < high_window);
}

/// 4-thread hammer: 2 producers push disjoint label ranges, 2 consumers
/// pop; afterwards every label must have been seen exactly once across
/// consumers + residue.
template <typename Bag>
void check_concurrent(Bag& bag) {
  constexpr unsigned kProducers = 2;
  constexpr unsigned kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 40000;
  std::atomic<unsigned> producers_live{kProducers};
  std::vector<std::vector<std::uint64_t>> taken(kConsumers);

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kProducers; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        bag.put((std::uint64_t{t} << 32) | i);
      }
      producers_live.fetch_sub(1, std::memory_order_release);
    });
  }
  for (unsigned t = 0; t < kConsumers; ++t) {
    threads.emplace_back([&, t] {
      taken[t].reserve(kPerProducer);
      while (true) {
        auto v = bag.take();
        if (v) {
          taken[t].push_back(*v);
        } else if (producers_live.load(std::memory_order_acquire) == 0) {
          if (!(v = bag.take())) break;
          taken[t].push_back(*v);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<std::uint64_t> seen;
  std::uint64_t total = 0;
  for (const auto& list : taken) {
    for (const std::uint64_t v : list) {
      CHECK(seen.insert(v).second);  // no duplication
      ++total;
    }
  }
  CHECK_EQ(total, kProducers * kPerProducer);  // no loss
  CHECK(bag.empty());
}

}  // namespace

int main() {
  check_width1_model();
  check_wide_sequential();
  {
    r2d::core::TwoDParams p;
    p.width = 8;
    p.depth = 16;
    p.shift = 8;
    r2d::TwoDBag<std::uint64_t> bag(p);
    check_concurrent(bag);
  }
  {
    // Policy matrix corner: hazard pointers + pooled nodes.
    r2d::core::TwoDParams p;
    p.width = 4;
    p.depth = 8;
    p.shift = 4;
    r2d::TwoDBag<std::uint64_t, r2d::reclaim::HazardReclaimer,
                 r2d::reclaim::PoolAlloc>
        bag(p);
    check_concurrent(bag);
  }
  {
    // Destruction with live items: the drain path must return every node
    // to its allocator (ASan would flag a leak or double free).
    r2d::core::TwoDParams p;
    p.width = 4;
    p.depth = 4;
    p.shift = 2;
    r2d::TwoDBag<std::uint64_t, r2d::reclaim::EpochReclaimer,
                 r2d::reclaim::PoolAlloc>
        bag(p);
    for (std::uint64_t i = 0; i < 1000; ++i) bag.put(i);
    const auto v = bag.take();
    CHECK(v.has_value());
  }
  return TEST_MAIN_RESULT();
}
