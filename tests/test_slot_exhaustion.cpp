// Regression test for graceful slot exhaustion: when an instance's
// per-thread slot registry (R2D_MAX_SLOTS) fills, the claiming operation
// must throw reclaim::SlotsExhausted whose message names the knob — not
// abort the process, which is what it used to do.
//
// The cap is read once per process, so this test pins it to 2 via setenv
// before constructing anything, then drives a third thread into each
// registry flavour (epoch, hazard, pool allocator).
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>

#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/slot_registry.hpp"
#include "check.hpp"

namespace {

/// Run `claim` on `n` fresh threads sequentially; returns how many threw
/// SlotsExhausted with a message naming the R2D_MAX_SLOTS knob.
template <typename Claim>
unsigned exhaust(unsigned n, Claim claim) {
  std::atomic<unsigned> diagnostic_throws{0};
  for (unsigned t = 0; t < n; ++t) {
    std::thread([&] {
      try {
        claim();
      } catch (const r2d::reclaim::SlotsExhausted& e) {
        const std::string what = e.what();
        if (what.find("R2D_MAX_SLOTS") != std::string::npos) {
          diagnostic_throws.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }).join();
  }
  return diagnostic_throws.load();
}

}  // namespace

int main() {
  // Must precede the first detail::max_slots() call anywhere in the
  // process (the knob is cached once).
  setenv("R2D_MAX_SLOTS", "2", 1);
  CHECK_EQ(r2d::reclaim::detail::max_slots(), 2u);

  {
    // Epoch: slots are claimed by pin(); threads 1–2 fit, 3–4 must throw
    // the diagnostic (slots stay bound to exited threads — the churn
    // limitation the exception text documents).
    r2d::reclaim::EpochReclaimer reclaimer;
    CHECK_EQ(exhaust(4, [&] { auto guard = reclaimer.pin(); }), 2u);
  }
  {
    // Hazard: same protocol, same registry machinery.
    r2d::reclaim::HazardReclaimer reclaimer;
    CHECK_EQ(exhaust(4, [&] { auto guard = reclaimer.pin(); }), 2u);
  }
  {
    // PoolAlloc: the magazine layer claims a slot on first acquire. The
    // two successful threads hand their block straight back.
    r2d::reclaim::PoolAlloc<std::uint64_t> alloc;
    CHECK_EQ(exhaust(4,
                     [&] {
                       std::uint64_t* p = alloc.acquire(7ull);
                       alloc.release(p);
                     }),
             2u);
  }
  return TEST_MAIN_RESULT();
}
