// Regression test for graceful slot exhaustion: when an instance's
// per-thread slot registry (R2D_MAX_SLOTS) fills with *live* claimants,
// the claiming operation must throw reclaim::SlotsExhausted whose message
// names the knobs — not abort the process, which is what it used to do.
//
// Slots are leases (DESIGN.md §13): an exited thread's slot is released by
// its exit hook, and a dead-without-hook thread's slot is stealable unless
// R2D_SLOT_STEAL=0. So exhaustion is only reachable while the claimants
// are actually alive (phase 1), or abandoned with stealing disabled
// (phase 2); once they exit, a fresh thread claims again (phase 3).
//
// The caps are read once per process, so this test pins R2D_MAX_SLOTS=2
// and R2D_SLOT_STEAL=0 via setenv before constructing anything.
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "reclaim/alloc.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/slot_registry.hpp"
#include "check.hpp"

namespace {

/// Two holder threads that claim a slot (via `claim`), signal readiness,
/// and park until released — so their slots stay leased while the main
/// thread probes for exhaustion.
class Holders {
 public:
  explicit Holders(const std::function<void()>& claim) {
    for (int t = 0; t < 2; ++t) {
      threads_.emplace_back([this, claim] {
        claim();
        step(ready_, 1);
        wait(go_, 1);
        claim();  // still live: the lease must still be ours
        step(done_, 1);
        wait(go_, 2);
        if (abandon_) {
          r2d::reclaim::detail::ChurnRegistry::get().abandon_current_thread();
        }
        step(parked_, 1);
        wait(go_, 3);
      });
    }
    wait(ready_, 2);
  }

  /// Re-claim on both holders (proves lease stability), optionally
  /// abandoning their liveness afterwards, then park them again.
  void reclaim_and_park(bool abandon) {
    abandon_ = abandon;
    step(go_, 1);  // go_ = 1: re-claim
    wait(done_, 2);
    step(go_, 1);  // go_ = 2: abandon + park
    wait(parked_, 2);
  }

  void release() {
    step(go_, 1);  // go_ = 3: exit
    for (auto& t : threads_) t.join();
  }

 private:
  void wait(int& var, int target) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return var >= target; });
  }
  void step(int& var, int inc) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      var += inc;
    }
    cv_.notify_all();
  }

  std::mutex mu_;
  std::condition_variable cv_;
  int ready_ = 0, go_ = 0, done_ = 0, parked_ = 0;
  bool abandon_ = false;
  std::vector<std::thread> threads_;
};

/// Run `claim` on a fresh thread; returns the SlotsExhausted message, or
/// empty when the claim succeeded.
std::string probe(const std::function<void()>& claim) {
  std::string message;
  std::thread([&] {
    try {
      claim();
    } catch (const r2d::reclaim::SlotsExhausted& e) {
      message = e.what();
    }
  }).join();
  return message;
}

void expect_mentions(const std::string& what, const char* needle) {
  if (what.find(needle) == std::string::npos) {
    std::fprintf(stderr, "FAIL: message lacks \"%s\": %s\n", needle,
                 what.c_str());
    ++r2d::test::failures();
  }
}

/// Drive one registry flavour through live exhaustion, abandoned (but
/// unstealable) exhaustion, and post-exit recovery.
void exercise(const std::function<void()>& claim) {
  Holders holders(claim);

  // Phase 1: both slots held by live, parked threads — a third must get
  // the diagnostic naming both knobs and the live count.
  std::string what = probe(claim);
  CHECK(!what.empty());
  expect_mentions(what, "R2D_MAX_SLOTS");
  expect_mentions(what, "R2D_SLOT_STEAL");
  expect_mentions(what, "2 by live threads");

  // Phase 2: holders re-claim (lease stability) then abandon their
  // liveness. With stealing disabled their slots stay parked, so the
  // probe still throws — but now reports them stealable.
  holders.reclaim_and_park(/*abandon=*/true);
  what = probe(claim);
  CHECK(!what.empty());
  expect_mentions(what, "2 stealable");

  // Phase 3: holders exit; their exit hooks release the leases, so a
  // fresh thread claims without throwing.
  holders.release();
  CHECK_EQ(probe(claim), std::string());
}

}  // namespace

int main() {
  // Must precede the first detail::max_slots() / slot_steal_enabled()
  // call anywhere in the process (both knobs are cached once).
  setenv("R2D_MAX_SLOTS", "2", 1);
  setenv("R2D_SLOT_STEAL", "0", 1);
  CHECK_EQ(r2d::reclaim::detail::max_slots(), 2u);

  {
    r2d::reclaim::EpochReclaimer reclaimer;
    exercise([&] { auto guard = reclaimer.pin(); });
  }
  {
    r2d::reclaim::HazardReclaimer reclaimer;
    exercise([&] { auto guard = reclaimer.pin(); });
  }
  {
    // PoolAlloc: the magazine layer claims a slot on first acquire. The
    // successful claimants hand their block straight back.
    r2d::reclaim::PoolAlloc<std::uint64_t> alloc;
    exercise([&] {
      std::uint64_t* p = alloc.acquire(7ull);
      alloc.release(p);
    });
  }
  return TEST_MAIN_RESULT();
}
