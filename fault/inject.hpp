// Deterministic, seeded fault injection (DESIGN.md §15).
//
// Every resource acquisition and CAS-retry loop in the library names a
// *site* and asks `R2D_FAULT_POINT(site)` whether this evaluation should
// fail. What "fail" means is the site's business — throw `bad_alloc`
// before the allocation, pretend the magazine was empty, lose a shift
// CAS without executing it — the injector only decides *when*, and it
// decides deterministically: the same policy string, seed, and thread
// schedule replay the same injections, which is what lets the OOM sweep
// in tests/test_fault.cpp walk "fail exactly the Nth acquisition" for
// every N and assert conservation after each.
//
// Policies (env `R2D_FAULT`, seed `R2D_FAULT_SEED`):
//   off          — never inject (the default).
//   nth:K        — the Kth fault-point evaluation process-wide fails,
//                  exactly once (K is 1-based; the global ordinal is a
//                  single atomic, so single-threaded runs are exactly
//                  reproducible and multi-threaded runs fail exactly one
//                  evaluation).
//   rate:P       — each evaluation fails with probability P, drawn from
//                  a per-thread xorshift stream seeded by
//                  R2D_FAULT_SEED ^ thread ordinal (no shared RNG state,
//                  no cross-thread coupling).
//   site:NAME:K  — the Kth evaluation of site NAME fails, exactly once
//                  (per-site ordinal); other sites never fire.
//
// Two-level off switch mirroring obs/ (DESIGN.md §14): `-DR2D_FAULT=0`
// (the DEFAULT) compiles `should_fail` to a constant false with full API
// parity — every call site folds to nothing, verified by the ci.sh
// overhead guard — while `-DR2D_FAULT=1` builds the real injector, which
// still costs only one relaxed load per site when the policy is `off`.
//
// Layering: this header includes only util/env.hpp and the standard
// library. obs/ counts injections through the `detail::on_inject` hook
// it installs (never the other way around), so reclaim/ and core/ can
// include this header without cycles.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/env.hpp"

#ifndef R2D_FAULT
#define R2D_FAULT 0
#endif

namespace r2d::fault {

/// The site catalogue: one name per distinct failure the library can
/// absorb. Throwing sites (kHeapAlloc, kSlabGrow, kSlotClaim) sit only
/// on the *acquire* side of operations — release/retire paths get
/// deferral sites (kEpochOrphanDrain, kHazardScan) that never throw, so
/// injection can't detonate inside a destructor.
enum class Site : std::uint8_t {
  kHeapAlloc = 0,     ///< HeapAlloc::acquire — bad_alloc before `new`
  kMagazineTake,      ///< PoolAlloc::take_block — forced magazine miss
  kDepotPop,          ///< PoolAlloc::take_block — forced depot miss
  kSlabGrow,          ///< Pool::grow — simulated slab allocation failure
  kSlotClaim,         ///< detail::claim_slot — SlotsExhausted at entry
  kSlotSteal,         ///< claim_slot — steal pass skipped this attempt
  kEpochOrphanDrain,  ///< EpochReclaimer — orphan drain deferred once
  kHazardScan,        ///< HazardReclaimer — scan deferred once
  kSweepStall,        ///< drive_window_sweep — forced yield at loop top
  kShiftCas,          ///< window shift CAS — counted as lost, not run
  kDwcasHead,         ///< DWCAS column head — forced failure → helping
  kStackCas,          ///< Treiber/Elimination central CAS — forced retry
  kElimExchange,      ///< Elimination collision layer — forced miss →
                      ///< fall through to the central stack
  kSegmentCell,       ///< KSegment cell scan — probe skipped this cell
  kColumnPick,        ///< Random/RandomC2/KRobin pick loop — forced
                      ///< re-pick / probe consumed
  kCount,
};

inline constexpr unsigned kSiteCount = static_cast<unsigned>(Site::kCount);

constexpr const char* site_name(Site s) {
  switch (s) {
    case Site::kHeapAlloc: return "heap-alloc";
    case Site::kMagazineTake: return "magazine-take";
    case Site::kDepotPop: return "depot-pop";
    case Site::kSlabGrow: return "slab-grow";
    case Site::kSlotClaim: return "slot-claim";
    case Site::kSlotSteal: return "slot-steal";
    case Site::kEpochOrphanDrain: return "epoch-orphan-drain";
    case Site::kHazardScan: return "hazard-scan";
    case Site::kSweepStall: return "sweep-stall";
    case Site::kShiftCas: return "shift-cas";
    case Site::kDwcasHead: return "dwcas-head";
    case Site::kStackCas: return "stack-cas";
    case Site::kElimExchange: return "elim-exchange";
    case Site::kSegmentCell: return "segment-cell";
    case Site::kColumnPick: return "column-pick";
    case Site::kCount: break;
  }
  return "?";
}

/// Reverse lookup for `site:NAME:K` specs; returns kCount when unknown.
inline Site site_from_name(const std::string& name) {
  for (unsigned i = 0; i < kSiteCount; ++i) {
    const Site s = static_cast<Site>(i);
    if (name == site_name(s)) return s;
  }
  return Site::kCount;
}

namespace detail {

/// Counting hook: obs/metrics.hpp installs a function here (pre-main,
/// via an inline variable's dynamic initializer) that bumps
/// Counter::kFaultsInjected. Raw function pointer, same shape as
/// reclaim's slots_exhausted_annotator — fault/ stays ignorant of obs/.
inline std::atomic<void (*)()> on_inject{nullptr};

/// splitmix64: turns any seed (including 0) into a full-entropy xorshift
/// state; also used to decorrelate per-thread streams.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace detail

#if R2D_FAULT

inline constexpr bool kCompiled = true;

template <bool Enabled>
class Injector;

/// The real injector: one process-wide instance configured from the
/// environment at first use, reconfigurable at quiescence by tests.
template <>
class Injector<true> {
 public:
  static Injector& get() {
    static Injector instance;
    return instance;
  }

  /// (Re)configure policy and seed. NOT safe against concurrent
  /// `evaluate` calls — call at quiescence (tests do, between phases).
  /// Also resets all ordinal/injection counters so `nth:K` restarts
  /// from evaluation 1.
  void configure(const std::string& spec, std::uint64_t seed) {
    seed_ = seed != 0 ? seed : 0x2545f4914f6cdd1dull;
    reset_counts();
    policy_.store(Policy::kOff, std::memory_order_relaxed);
    if (spec.empty() || spec == "off") return;
    if (spec.rfind("nth:", 0) == 0) {
      nth_k_ = parse_u64(spec.substr(4));
      if (nth_k_ != 0) policy_.store(Policy::kNth, std::memory_order_relaxed);
    } else if (spec.rfind("rate:", 0) == 0) {
      const double p = parse_f64(spec.substr(5));
      if (p > 0.0) {
        // Probability as a 64-bit threshold: fail when draw < p * 2^64.
        rate_threshold_ = p >= 1.0
                              ? ~std::uint64_t{0}
                              : static_cast<std::uint64_t>(
                                    p * 18446744073709551616.0);
        policy_.store(Policy::kRate, std::memory_order_relaxed);
      }
    } else if (spec.rfind("site:", 0) == 0) {
      const std::string rest = spec.substr(5);
      const std::size_t colon = rest.rfind(':');
      if (colon != std::string::npos) {
        const Site s = site_from_name(rest.substr(0, colon));
        const std::uint64_t k = parse_u64(rest.substr(colon + 1));
        if (s != Site::kCount && k != 0) {
          site_ = s;
          site_k_ = k;
          policy_.store(Policy::kSite, std::memory_order_relaxed);
        }
      }
    }
  }

  /// The fault point. Returns true when this evaluation should fail.
  /// One relaxed load when the policy is off; never throws.
  bool evaluate(Site s) noexcept {
    const Policy p = policy_.load(std::memory_order_relaxed);
    if (p == Policy::kOff) return false;
    switch (p) {
      case Policy::kNth: {
        const std::uint64_t ordinal =
            global_evals_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (ordinal != nth_k_) return false;
        break;
      }
      case Policy::kRate: {
        if (next_draw() >= rate_threshold_) return false;
        break;
      }
      case Policy::kSite: {
        if (s != site_) return false;
        const std::uint64_t ordinal =
            site_evals_[static_cast<unsigned>(s)].fetch_add(
                1, std::memory_order_relaxed) +
            1;
        if (ordinal != site_k_) return false;
        break;
      }
      case Policy::kOff:
        return false;
    }
    injected_total_.fetch_add(1, std::memory_order_relaxed);
    site_injected_[static_cast<unsigned>(s)].fetch_add(
        1, std::memory_order_relaxed);
    if (void (*hook)() = detail::on_inject.load(std::memory_order_relaxed)) {
      hook();
    }
    return true;
  }

  void reset_counts() {
    global_evals_.store(0, std::memory_order_relaxed);
    injected_total_.store(0, std::memory_order_relaxed);
    for (auto& c : site_evals_) c.store(0, std::memory_order_relaxed);
    for (auto& c : site_injected_) c.store(0, std::memory_order_relaxed);
  }

  /// Evaluations consumed by the nth-policy global ordinal (0 under
  /// other policies — rate draws are per-thread, site ordinals per-site).
  std::uint64_t evals() const {
    return global_evals_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected() const {
    return injected_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected(Site s) const {
    return site_injected_[static_cast<unsigned>(s)].load(
        std::memory_order_relaxed);
  }

 private:
  enum class Policy : std::uint8_t { kOff, kNth, kRate, kSite };

  Injector() {
    // Strict seed parse: a typo'd reproducer line must abort loudly, not
    // silently replay seed 0 (util::env_u64_strict, shared with sched/).
    configure(util::env_str("R2D_FAULT", "off"),
              util::env_u64_strict("R2D_FAULT_SEED", 0));
  }

  static std::uint64_t parse_u64(const std::string& s) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    return (end == s.c_str()) ? 0 : static_cast<std::uint64_t>(v);
  }
  static double parse_f64(const std::string& s) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    return (end == s.c_str()) ? 0.0 : v;
  }

  /// Per-thread xorshift64* stream for the rate policy; the state is
  /// seeded from the configured seed XOR a process-wide thread ordinal
  /// at the thread's first draw (reconfiguring the seed mid-run only
  /// affects threads that have not drawn yet — tests reconfigure at
  /// quiescence, where every hammer thread is new).
  std::uint64_t next_draw() noexcept {
    thread_local std::uint64_t state = detail::mix64(
        seed_ ^ thread_ordinal_.fetch_add(1, std::memory_order_relaxed));
    std::uint64_t x = state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  std::atomic<Policy> policy_{Policy::kOff};
  std::uint64_t nth_k_ = 0;
  std::uint64_t rate_threshold_ = 0;
  Site site_ = Site::kCount;
  std::uint64_t site_k_ = 0;
  std::uint64_t seed_ = 0x2545f4914f6cdd1dull;
  std::atomic<std::uint64_t> thread_ordinal_{0};
  std::atomic<std::uint64_t> global_evals_{0};
  std::atomic<std::uint64_t> injected_total_{0};
  std::array<std::atomic<std::uint64_t>, kSiteCount> site_evals_{};
  std::array<std::atomic<std::uint64_t>, kSiteCount> site_injected_{};
};

/// Disabled specialization: full API, no state, never fires. Exists so
/// tests can assert parity in the SAME binary that has the real one.
template <>
class Injector<false> {
 public:
  static Injector& get() {
    static Injector instance;
    return instance;
  }
  void configure(const std::string&, std::uint64_t) {}
  bool evaluate(Site) noexcept { return false; }
  void reset_counts() {}
  std::uint64_t evals() const { return 0; }
  std::uint64_t injected() const { return 0; }
  std::uint64_t injected(Site) const { return 0; }
};

inline Injector<true>& injector() { return Injector<true>::get(); }

template <Site S>
inline bool should_fail() noexcept {
  return injector().evaluate(S);
}

#else  // R2D_FAULT == 0: the default — injection compiles to nothing.

inline constexpr bool kCompiled = false;

/// API-parity stub: same members as the enabled injector, no state
/// (sizeof == 1), every query zero. `should_fail` is a constant false,
/// so `if (R2D_FAULT_POINT(...))` dead-code-eliminates at every site.
template <bool Enabled = false>
class Injector {
 public:
  static Injector& get() {
    static Injector instance;
    return instance;
  }
  void configure(const std::string&, std::uint64_t) {}
  bool evaluate(Site) noexcept { return false; }
  void reset_counts() {}
  std::uint64_t evals() const { return 0; }
  std::uint64_t injected() const { return 0; }
  std::uint64_t injected(Site) const { return 0; }
};

inline Injector<>& injector() { return Injector<>::get(); }

template <Site S>
constexpr bool should_fail() noexcept {
  return false;
}

#endif  // R2D_FAULT

}  // namespace r2d::fault

/// The site marker threaded through the library. Reads as a predicate:
///   if (R2D_FAULT_POINT(kHeapAlloc)) throw std::bad_alloc{};
#define R2D_FAULT_POINT(site) \
  (::r2d::fault::should_fail<::r2d::fault::Site::site>())
