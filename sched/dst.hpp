// Seeded deterministic concurrency testing (DST) — DESIGN.md §16.
//
// A cooperative scheduler that serializes registered threads through a
// single run token and makes a *seeded* preemption decision at every
// `R2D_HOOK_POINT()` in the library. The hook layer (sched/hook.hpp)
// already threads through every resource acquisition and CAS-retry loop
// in core/, reclaim/ and stacks/, so under the scheduler those become
// the exact points where one thread can be descheduled mid-protocol —
// between a DWCAS publish and its help step, between a failed sweep and
// the shift CAS, between a slot steal and the revenant's return. The
// same policy string and seed replay the same schedule bit-identically,
// which turns any failing run into a one-line reproducer:
//
//   R2D_SCHED=pct:3 R2D_SCHED_SEED=0x1e7c... ./tests/test_sched
//
// Policies (env `R2D_SCHED`, seed `R2D_SCHED_SEED`, budget
// `R2D_SCHED_STEPS`):
//   off      — scheduler compiled in but dormant; run() executes bodies
//              on free-running threads (this arm feeds the ci.sh
//              overhead guard for the R2D_SCHED=1 build).
//   random   — at every hook point, pick the next runnable thread
//              uniformly at random (classic rapos-style random walk).
//   pct:D    — probabilistic concurrency testing: threads get random
//              distinct priorities, the highest-priority runnable thread
//              always runs, and D priority-change points sampled from
//              [1, steps] demote whoever is running when they trigger.
//              PCT finds any bug of depth ≤ D+1 with probability
//              ≥ 1/(n·k^D) per run (Burckhardt et al., ASPLOS'10).
//
// Termination guarantee: the step budget bounds every schedule. When it
// is exhausted — or when a 1s no-progress escape hatch fires because a
// thread blocked somewhere the scheduler cannot see (an OS mutex held
// by a descheduled peer) — the run degrades to free-running threads and
// sets `perturbed()`, which tells the harness the tail of this history
// is no longer replay-comparable. CI budgets are sized so perturbation
// never happens on a clean library; the hatch exists so a genuine
// deadlock fails a test in seconds instead of hanging the job.
//
// What this does NOT model (DESIGN.md §16): weak-memory reordering.
// Threads are serialized, so every execution the scheduler explores is
// sequentially consistent; TSan + the real-time hammers remain the
// defense for relaxed-memory bugs. Preemption happens only at hook
// points, not between arbitrary instructions — coverage is exactly as
// good as the site list.
//
// Two-level off switch mirroring fault/ and obs/: `-DR2D_SCHED=0` (the
// DEFAULT) compiles `preempt_point()` to nothing and the Scheduler to a
// full-API-parity stub; `-DR2D_SCHED=1` builds the real scheduler,
// which costs one relaxed load per hook point while dormant.
//
// Layering: includes only util/env.hpp and the standard library, so
// core/ and reclaim/ (via sched/hook.hpp) can include it without
// cycles. obs/ and fault/ are unaware of sched/.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/env.hpp"

#ifndef R2D_SCHED
#define R2D_SCHED 0
#endif

namespace r2d::sched {

enum class Policy : std::uint8_t { kOff, kRandom, kPct };

namespace detail {

/// splitmix64 (same constants as fault::detail::mix64, duplicated to
/// keep sched/ ← fault/ out of the include graph).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace detail

#if R2D_SCHED

inline constexpr bool kCompiled = true;

namespace detail {
/// True only while a run() with a non-off policy is in flight; the first
/// (and usually only) cost of a hook point in a dormant R2D_SCHED=1
/// build is this relaxed load.
inline std::atomic<bool> active{false};
}  // namespace detail

/// The cooperative scheduler: one process-wide instance. Threads attach
/// inside run(), after which exactly one attached thread executes at a
/// time; every preempt() is a seeded decision about who runs next.
class Scheduler {
 public:
  static Scheduler& get() {
    static Scheduler instance;
    return instance;
  }

  /// (Re)configure policy/seed/step budget. NOT safe against a run in
  /// flight — call at quiescence (tests do, between schedules).
  /// spec: "off" | "random" | "pct:D". Unknown specs mean off.
  void configure(const std::string& spec, std::uint64_t seed,
                 std::uint64_t steps) {
    policy_ = Policy::kOff;
    pct_depth_ = 0;
    spec_ = spec.empty() ? "off" : spec;
    if (spec == "random") {
      policy_ = Policy::kRandom;
    } else if (spec.rfind("pct:", 0) == 0) {
      std::uint64_t d = 0;
      if (util::parse_u64_strict(spec.c_str() + 4, d) && d > 0 && d <= 64) {
        policy_ = Policy::kPct;
        pct_depth_ = static_cast<unsigned>(d);
      }
    }
    seed_ = seed != 0 ? seed : 0x2545f4914f6cdd1dull;
    step_budget_ = steps != 0 ? steps : kDefaultSteps;
  }

  Policy policy() const { return policy_; }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t step_budget() const { return step_budget_; }

  /// Steps taken by the most recent run().
  std::uint64_t steps_taken() const { return step_; }

  /// True when the most recent run() left deterministic mode — budget
  /// exhausted or the no-progress escape hatch fired. Such a run is not
  /// bit-replayable past the perturbation point.
  bool perturbed() const { return perturbed_; }

  /// The one-line reproducer for the configured schedule.
  std::string reproducer() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "R2D_SCHED=%s R2D_SCHED_SEED=0x%llx R2D_SCHED_STEPS=%llu",
                  spec_.c_str(),
                  static_cast<unsigned long long>(seed_),
                  static_cast<unsigned long long>(step_budget_));
    return std::string(buf);
  }

  /// Run `bodies` to completion under the configured schedule. Each body
  /// executes on a fresh std::thread with deterministic ordinal i (the
  /// index in `bodies`), so thread identity — and with it every
  /// per-thread stream in the library — does not depend on OS spawn
  /// order. With policy off the bodies simply free-run. Returns the
  /// number of scheduling steps taken.
  std::uint64_t run(std::vector<std::function<void()>> bodies) {
    const unsigned n = static_cast<unsigned>(bodies.size());
    if (n == 0) return 0;
    reset_run(n);
    const bool scheduling = policy_ != Policy::kOff;
    if (scheduling) detail::active.store(true, std::memory_order_relaxed);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      threads.emplace_back([this, scheduling, i, body = std::move(bodies[i])] {
        if (scheduling) attach(i);
        body();
        if (scheduling) detach(i);
      });
    }
    for (auto& t : threads) t.join();
    if (scheduling) detail::active.store(false, std::memory_order_relaxed);
    return step_;
  }

  /// The preemption point body — called via sched::preempt_point() from
  /// R2D_HOOK_POINT. Only the token holder can be here (everyone else
  /// is waiting in wait_for_token), so the seeded decision sequence is
  /// consumed in schedule order and replays exactly.
  void preempt() {
    ThreadRec* me = tls_rec();
    if (me == nullptr) return;  // unattached thread (main, watchdog, ...)
    std::unique_lock<std::mutex> lk(mu_);
    if (free_run_) return;
    advance(lk, me, /*exiting=*/false);
  }

  /// Deterministic per-thread seed for the library's thread-local RNG
  /// streams (core::hop_rand). While a seeded run is in flight, attached
  /// threads get a stream derived from (schedule seed, ordinal) so hop
  /// sequences replay; everyone else keeps `fallback` (address entropy).
  std::uint64_t stream_seed(std::uint64_t fallback) {
    if (!detail::active.load(std::memory_order_relaxed)) return fallback;
    ThreadRec* me = tls_rec();
    if (me == nullptr) return fallback;
    return detail::mix64(seed_ ^ (0x100000001b3ull * (me->ordinal + 1)));
  }

 private:
  static constexpr std::uint64_t kDefaultSteps = 200000;

  struct ThreadRec {
    unsigned ordinal = 0;
    std::uint64_t priority = 0;  // pct: higher runs first
    bool runnable = false;       // false once the body returned
  };

  Scheduler() {
    configure(util::env_str("R2D_SCHED", "off"),
              util::env_u64_strict("R2D_SCHED_SEED", 0),
              util::env_u64_strict("R2D_SCHED_STEPS", 0));
  }

  static ThreadRec*& tls_rec() {
    static thread_local ThreadRec* rec = nullptr;
    return rec;
  }

  std::uint64_t next_rand() {  // xorshift64*; only the token holder draws
    std::uint64_t x = rng_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rng_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  void reset_run(unsigned n) {
    std::lock_guard<std::mutex> lk(mu_);
    recs_.assign(n, ThreadRec{});
    for (unsigned i = 0; i < n; ++i) recs_[i].ordinal = i;
    rng_ = detail::mix64(seed_);
    step_ = 0;
    attached_ = 0;
    started_ = false;
    free_run_ = false;
    perturbed_ = false;
    change_steps_.clear();
    if (policy_ == Policy::kPct) {
      // Random distinct priorities via Fisher–Yates over [n, 2n); the
      // demotion counter hands out values below n, so a demoted thread
      // always ranks under every never-demoted one.
      std::vector<std::uint64_t> prio(n);
      for (unsigned i = 0; i < n; ++i) prio[i] = n + i;
      for (unsigned i = n; i > 1; --i) {
        const unsigned j = static_cast<unsigned>(next_rand() % i);
        std::swap(prio[i - 1], prio[j]);
      }
      for (unsigned i = 0; i < n; ++i) recs_[i].priority = prio[i];
      next_demotion_ = n;  // counts down: n-1, n-2, ... (then wraps huge;
                           // D ≤ 64 demotions never get near that)
      for (unsigned d = 0; d < pct_depth_; ++d) {
        change_steps_.push_back(1 + next_rand() % step_budget_);
      }
    }
    current_ = pick_next(nullptr);
  }

  /// Seeded choice of the next thread to run among runnable ones,
  /// excluding `except` (used when the current thread is exiting).
  /// Returns the chosen ordinal, or n when none are runnable.
  unsigned pick_next(const ThreadRec* except) {
    unsigned runnable = 0;
    for (const auto& r : recs_) {
      if (&r != except && (r.runnable || !started_)) ++runnable;
    }
    if (runnable == 0) return static_cast<unsigned>(recs_.size());
    if (policy_ == Policy::kPct) {
      const ThreadRec* best = nullptr;
      for (const auto& r : recs_) {
        if (&r == except || (started_ && !r.runnable)) continue;
        if (best == nullptr || r.priority > best->priority) best = &r;
      }
      return best->ordinal;
    }
    // random: uniform among eligible, in ordinal order.
    unsigned idx = static_cast<unsigned>(next_rand() % runnable);
    for (const auto& r : recs_) {
      if (&r == except || (started_ && !r.runnable)) continue;
      if (idx == 0) return r.ordinal;
      --idx;
    }
    return static_cast<unsigned>(recs_.size());
  }

  void attach(unsigned ordinal) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* me = &recs_[ordinal];
    me->runnable = true;
    tls_rec() = me;
    if (++attached_ == recs_.size()) {
      started_ = true;  // decisions begin only once every ordinal exists
      cv_.notify_all();
    }
    wait_for_token(lk, me);
  }

  void detach(unsigned ordinal) {
    std::unique_lock<std::mutex> lk(mu_);
    ThreadRec* me = &recs_[ordinal];
    tls_rec() = nullptr;
    if (!free_run_) advance(lk, me, /*exiting=*/true);
    me->runnable = false;
    cv_.notify_all();
  }

  /// One scheduling step: consume a decision, hand the token over, and
  /// (unless exiting) block until it comes back.
  void advance(std::unique_lock<std::mutex>& lk, ThreadRec* me,
               bool exiting) {
    ++step_;
    if (step_ >= step_budget_) {
      enter_free_run("step budget exhausted");
      return;
    }
    if (policy_ == Policy::kPct) {
      for (const std::uint64_t cs : change_steps_) {
        if (cs == step_) me->priority = --next_demotion_;
      }
    }
    const unsigned next = pick_next(exiting ? me : nullptr);
    if (next >= recs_.size()) return;  // last thread standing
    if (next == me->ordinal && !exiting) return;
    current_ = next;
    cv_.notify_all();
    if (!exiting) wait_for_token(lk, me);
  }

  void wait_for_token(std::unique_lock<std::mutex>& lk, ThreadRec* me) {
    const auto pred = [this, me] {
      return free_run_ || (started_ && current_ == me->ordinal);
    };
    while (!pred()) {
      const std::uint64_t step_at_wait = step_;
      if (!cv_.wait_for(lk, std::chrono::seconds(1), pred)) {
        if (step_ == step_at_wait && started_) {
          // Nobody advanced for a full second: the token holder is
          // blocked somewhere the scheduler cannot see. Release
          // everyone rather than deadlock; the run is no longer
          // deterministic past this point.
          enter_free_run("no progress at hook points for 1s");
          return;
        }
      }
    }
  }

  void enter_free_run(const char* why) {
    free_run_ = true;
    perturbed_ = true;
    std::fprintf(stderr, "r2d sched: free-running after step %llu (%s); %s\n",
                 static_cast<unsigned long long>(step_), why,
                 reproducer().c_str());
    cv_.notify_all();
  }

  // Configuration (stable during a run).
  Policy policy_ = Policy::kOff;
  unsigned pct_depth_ = 0;
  std::uint64_t seed_ = 0x2545f4914f6cdd1dull;
  std::uint64_t step_budget_ = kDefaultSteps;
  std::string spec_ = "off";

  // Per-run state, all under mu_.
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ThreadRec> recs_;
  std::vector<std::uint64_t> change_steps_;
  std::uint64_t rng_ = 0;
  std::uint64_t step_ = 0;
  std::uint64_t next_demotion_ = 0;
  unsigned current_ = 0;
  unsigned attached_ = 0;
  bool started_ = false;
  bool free_run_ = false;
  bool perturbed_ = false;
};

/// The hook-point entry: one relaxed load when no seeded run is in
/// flight, a scheduling decision when one is.
inline void preempt_point() {
  if (!detail::active.load(std::memory_order_relaxed)) return;
  Scheduler::get().preempt();
}

/// Deterministic seed hook for the library's thread-local RNG streams.
inline std::uint64_t hop_seed(std::uint64_t fallback) {
  if (!detail::active.load(std::memory_order_relaxed)) return fallback;
  return Scheduler::get().stream_seed(fallback);
}

#else  // R2D_SCHED == 0: the default — the scheduler compiles to nothing.

inline constexpr bool kCompiled = false;

/// API-parity stub (sizeof == 1, no state): tests assert against the
/// same surface in both builds, and every preempt_point() folds away.
class Scheduler {
 public:
  static Scheduler& get() {
    static Scheduler instance;
    return instance;
  }
  void configure(const std::string&, std::uint64_t, std::uint64_t) {}
  Policy policy() const { return Policy::kOff; }
  std::uint64_t seed() const { return 0; }
  std::uint64_t step_budget() const { return 0; }
  std::uint64_t steps_taken() const { return 0; }
  bool perturbed() const { return false; }
  std::string reproducer() const { return "R2D_SCHED=off"; }
  std::uint64_t run(std::vector<std::function<void()>> bodies) {
    std::vector<std::thread> threads;
    threads.reserve(bodies.size());
    for (auto& b : bodies) threads.emplace_back(std::move(b));
    for (auto& t : threads) t.join();
    return 0;
  }
  void preempt() {}
  std::uint64_t stream_seed(std::uint64_t fallback) { return fallback; }
};

constexpr void preempt_point() {}

constexpr std::uint64_t hop_seed(std::uint64_t fallback) { return fallback; }

#endif  // R2D_SCHED

}  // namespace r2d::sched
