// Production stall watchdog (DESIGN.md §16) — the non-DST half of
// sched/: a per-container no-progress detector for real runs.
//
// The DST scheduler finds stalls by exploring schedules; the watchdog
// catches the ones that slip through to production. It samples a
// caller-supplied progress counter (completed ops, obs sweep/shift
// counters — anything monotonic) on a monotonic deadline
// (`R2D_WATCHDOG_MS`). If a whole armed interval passes with no
// progress while work is outstanding, it captures a diagnostic report —
// the obs counter summary plus the newest shift-trace ring entries —
// and lets policy decide what happens next:
//
//   * `check()` throws `StallDetected` carrying the report (tests,
//     batch tools — fail loudly with the forensics attached);
//   * the `on_stall` callback fires on the monitor thread (the service
//     harness uses this to widen degradation — composing with the
//     DegradeController's brownout mode instead of falling over).
//
// The monitor is one background thread per Watchdog, asleep on a
// condition variable between samples; it never touches the container
// and costs nothing on the operation path. It is intentionally NOT a
// hook-point consumer: a livelocked retry loop spins *through* hook
// points, which is exactly why progress must be judged from outside.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace r2d::sched {

/// Thrown by Watchdog::check() after a stall: what() carries the full
/// diagnostic report (counter summary + newest trace entries).
class StallDetected : public std::runtime_error {
 public:
  explicit StallDetected(const std::string& report)
      : std::runtime_error(report) {}
};

/// Build the stall forensics: the obs counter summary plus the newest
/// shift-trace ring entries (the freshest evidence of what the window
/// engine was doing when progress stopped). Public so tests can assert
/// on its shape directly.
inline std::string stall_report(std::uint64_t stuck_at,
                                std::chrono::milliseconds deadline,
                                std::size_t newest = 8) {
  std::ostringstream out;
  out << "=== r2d watchdog: no progress (counter stuck at " << stuck_at
      << ") for " << deadline.count() << "ms ===\n";
  obs::write_text(out, obs::metrics().snapshot());
  std::vector<std::string> entries;
  std::size_t index = 0;
  obs::metrics().visit_trace([&](const obs::ShiftEvent& e) {
    std::ostringstream line;
    line << "shift[" << index++ << "] tsc=" << e.tsc << " cause="
         << obs::to_string(e.cause) << " " << e.old_max << " -> "
         << e.new_max << (e.won ? " (won)" : " (lost)");
    entries.push_back(line.str());
  });
  if (entries.empty()) {
    out << "(no shift events recorded)\n";
  } else {
    const std::size_t first =
        entries.size() > newest ? entries.size() - newest : 0;
    for (std::size_t i = first; i < entries.size(); ++i) {
      out << entries[i] << '\n';
    }
  }
  return out.str();
}

class Watchdog {
 public:
  using ProgressFn = std::function<std::uint64_t()>;

  struct Config {
    std::chrono::milliseconds deadline{1000};
    /// Sampled before each verdict; true suppresses the stall (nothing
    /// outstanding — a quiet container is not a stuck one). Optional.
    std::function<bool()> idle;
    /// Fired once per stall on the monitor thread, with the report.
    std::function<void(const std::string&)> on_stall;
    bool log_stderr = true;
  };

  Watchdog(ProgressFn progress, Config config)
      : progress_(std::move(progress)), config_(std::move(config)) {
    monitor_ = std::thread([this] { loop(); });
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    monitor_.join();
  }

  bool stalled() const { return stalled_.load(std::memory_order_acquire); }

  std::uint64_t stall_count() const {
    return stall_count_.load(std::memory_order_relaxed);
  }

  std::string last_report() const {
    std::lock_guard<std::mutex> lk(mu_);
    return last_report_;
  }

  /// Throw the captured diagnosis on the caller's thread. The flag
  /// stays set — every subsequent check() rethrows until the owner
  /// tears the watchdog down.
  void check() const {
    if (stalled()) throw StallDetected(last_report());
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lk(mu_);
    std::uint64_t last = progress_();
    while (!stop_) {
      cv_.wait_for(lk, config_.deadline, [this] { return stop_; });
      if (stop_) return;
      const std::uint64_t now = progress_();
      const bool idle = config_.idle && config_.idle();
      if (now == last && !idle) {
        const std::string report = stall_report(now, config_.deadline);
        last_report_ = report;
        stalled_.store(true, std::memory_order_release);
        stall_count_.fetch_add(1, std::memory_order_relaxed);
        if (config_.log_stderr) {
          std::fputs(report.c_str(), stderr);
        }
        if (config_.on_stall) {
          lk.unlock();  // user callback must not hold the report lock
          config_.on_stall(report);
          lk.lock();
        }
      }
      last = now;
    }
  }

  ProgressFn progress_;
  Config config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread monitor_;
  std::string last_report_;
  std::atomic<bool> stalled_{false};
  std::atomic<std::uint64_t> stall_count_{0};
  bool stop_ = false;
};

}  // namespace r2d::sched
