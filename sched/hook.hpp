// The shared hook-point layer (DESIGN.md §15/§16).
//
// One site list feeds three consumers: fault injection decides whether
// this evaluation should *fail* (fault/inject.hpp), obs counts what got
// injected (via fault's on_inject hook), and the deterministic
// scheduler treats every hook as a potential *preemption point*
// (sched/dst.hpp). `R2D_HOOK_POINT(site)` reads as the same predicate
// `R2D_FAULT_POINT` always was:
//
//   if (R2D_HOOK_POINT(kHeapAlloc)) throw std::bad_alloc{};
//
// but first gives the scheduler a chance to deschedule the calling
// thread — so the site catalogue in fault/inject.hpp doubles as the
// scheduler's interleaving vocabulary, and a site added for fault
// torture becomes an adversarial schedule point for free.
//
// In the default build (R2D_SCHED=0, R2D_FAULT=0) the whole expression
// folds to `(void)0, false` and dead-code-eliminates; the ci.sh
// overhead guards hold each subsystem to ≤5% when compiled in but off.
#pragma once

#include "fault/inject.hpp"
#include "sched/dst.hpp"

/// Preemption point + fault point, in that order: the scheduler may
/// interleave another thread *before* the fault decision, so the
/// injected failure lands in the freshest adversarial state.
#define R2D_HOOK_POINT(site) \
  (::r2d::sched::preempt_point(), R2D_FAULT_POINT(site))
