// Op-event histories + post-run checkers for DST runs (DESIGN.md §16).
//
// Each scheduled thread records its operations on a private tape —
// invoke/response timestamps from a shared logical clock, op kind,
// value, end flag, outcome. Post-run the tapes merge into one history
// that two oracles consume:
//
//   * `linearizable()` — a Wing & Gong linearizability checker for the
//     strict structures (TreiberStack, width-1 TwoDQueue): DFS over
//     every admissible linearization order (an op may go first only if
//     no other pending op *responded* before it was invoked), memoized
//     on (completed-op mask, abstract state). Exponential in the worst
//     case, fine for the ≤ 48-op histories DST explores.
//   * `to_quality_events()` — bridges to the harness/quality.hpp rank
//     oracle for the relaxed structures: push tickets at invoke, pop
//     tickets at response (the same convention the wall-clock harness
//     uses), so `quality::replay` bounds the rank error against
//     `TwoDParams::k_bound()` per schedule.
//
// Under the scheduler the clock stamps are serialized, so two runs of
// the same seed produce byte-identical `serialize()` output — that
// string equality IS the bit-replayability assertion in test_sched.
//
// This header works in every build (recording needs no scheduler); it
// is harness code, never included by the library proper.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "harness/quality.hpp"

namespace r2d::sched {

enum class OpKind : std::uint8_t { kPush, kPop };

struct Op {
  unsigned thread = 0;
  OpKind kind = OpKind::kPush;
  std::uint64_t value = 0;  ///< pushed value, or popped value when ok
  bool ok = true;           ///< push admitted / pop returned a value
  bool front = false;       ///< which end (deque); ignored otherwise
  std::uint64_t invoke = 0;
  std::uint64_t response = 0;
};

/// One shared logical clock + one lock-free tape per thread.
class History {
 public:
  explicit History(unsigned threads) : tapes_(threads) {}

  /// Draw the next clock stamp; call immediately before (invoke) and
  /// after (response) the container op. Serialized under the scheduler,
  /// merely monotonic under free-running threads.
  std::uint64_t stamp() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void record(unsigned thread, Op op) {
    op.thread = thread;
    tapes_[thread].push_back(op);
  }

  /// Convenience recorders around a completed operation.
  void push(unsigned thread, std::uint64_t value, bool ok,
            std::uint64_t invoke, std::uint64_t response,
            bool front = false) {
    record(thread, Op{thread, OpKind::kPush, value, ok, front, invoke,
                      response});
  }
  void pop(unsigned thread, std::optional<std::uint64_t> value,
           std::uint64_t invoke, std::uint64_t response,
           bool front = false) {
    record(thread, Op{thread, OpKind::kPop, value.value_or(0),
                      value.has_value(), front, invoke, response});
  }

  /// All tapes merged, ordered by invoke stamp (total under the
  /// scheduler — the clock never ties).
  std::vector<Op> merged() const {
    std::vector<Op> all;
    for (const auto& tape : tapes_) {
      all.insert(all.end(), tape.begin(), tape.end());
    }
    std::sort(all.begin(), all.end(), [](const Op& a, const Op& b) {
      return a.invoke < b.invoke;
    });
    return all;
  }

  /// Canonical text form; byte equality across two runs of the same
  /// seed is the replay-determinism assertion.
  std::string serialize() const {
    std::ostringstream out;
    for (const Op& op : merged()) {
      out << 't' << op.thread
          << (op.kind == OpKind::kPush ? " push " : " pop ") << op.value
          << (op.ok ? " ok" : " no") << (op.front ? " front" : " back")
          << " i" << op.invoke << " r" << op.response << '\n';
    }
    return out.str();
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& tape : tapes_) n += tape.size();
    return n;
  }

 private:
  std::atomic<std::uint64_t> clock_{0};
  std::vector<std::vector<Op>> tapes_;
};

enum class Semantics : std::uint8_t { kLifo, kFifo };

namespace detail {

/// Abstract sequential state: live values in container order (back of
/// the vector = most recent push). Push appends; a LIFO pop takes the
/// back, a FIFO pop takes the front; a failed pop requires emptiness.
/// Returns false when the op cannot apply to this state.
inline bool apply(std::vector<std::uint64_t>& state, const Op& op,
                  Semantics sem) {
  if (op.kind == OpKind::kPush) {
    if (op.ok) state.push_back(op.value);  // rejected push = no-op
    return true;
  }
  if (!op.ok) return state.empty();
  if (state.empty()) return false;
  if (sem == Semantics::kLifo) {
    if (state.back() != op.value) return false;
    state.pop_back();
  } else {
    if (state.front() != op.value) return false;
    state.erase(state.begin());
  }
  return true;
}

inline std::uint64_t state_hash(std::uint64_t mask,
                                const std::vector<std::uint64_t>& state) {
  // Multiply the mask in before mixing values: a bare XOR seed cancels
  // against the first value (hash(mask=1,[1]) == hash(mask=2,[2])).
  std::uint64_t h = (1469598103934665603ull ^ mask) * 1099511628211ull;
  for (const std::uint64_t v : state) {
    h = (h ^ v) * 1099511628211ull;
  }
  return h;
}

}  // namespace detail

/// Wing & Gong: is there a linearization order consistent with the
/// real-time partial order (op A precedes op B iff A.response <
/// B.invoke) under which every op's return value is legal? Histories
/// are capped at 64 ops (the completion mask is one word).
inline bool linearizable(const std::vector<Op>& history, Semantics sem) {
  const std::size_t n = history.size();
  assert(n <= 64 && "linearizable(): history longer than the 64-op cap");
  if (n == 0) return true;
  const std::uint64_t full =
      n == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);

  std::unordered_set<std::uint64_t> visited;
  struct Frame {
    std::uint64_t mask;
    std::vector<std::uint64_t> state;
  };
  std::vector<Frame> work;
  work.push_back({0, {}});
  visited.insert(detail::state_hash(0, {}));
  while (!work.empty()) {
    Frame frame = std::move(work.back());
    work.pop_back();
    if (frame.mask == full) return true;
    for (std::size_t i = 0; i < n; ++i) {
      if (frame.mask & (std::uint64_t{1} << i)) continue;
      // i may linearize next only if no other pending op already
      // responded before i was invoked.
      bool minimal = true;
      for (std::size_t j = 0; j < n && minimal; ++j) {
        if (j == i || (frame.mask & (std::uint64_t{1} << j))) continue;
        if (history[j].response < history[i].invoke) minimal = false;
      }
      if (!minimal) continue;
      std::vector<std::uint64_t> next_state = frame.state;
      if (!detail::apply(next_state, history[i], sem)) continue;
      const std::uint64_t next_mask = frame.mask | (std::uint64_t{1} << i);
      if (visited.insert(detail::state_hash(next_mask, next_state)).second) {
        work.push_back({next_mask, std::move(next_state)});
      }
    }
  }
  return false;
}

/// Bridge to the rank-error oracle: push tickets at invoke, pop tickets
/// at response (harness/quality.hpp convention). Failed ops carry no
/// event; values double as labels, so each schedule must push distinct
/// values.
inline std::vector<quality::Event> to_quality_events(
    const std::vector<Op>& history) {
  std::vector<quality::Event> events;
  events.reserve(history.size());
  for (const Op& op : history) {
    if (!op.ok) continue;
    const bool is_push = op.kind == OpKind::kPush;
    events.push_back(quality::Event{is_push ? op.invoke : op.response,
                                    op.value, is_push, op.front});
  }
  return events;
}

}  // namespace r2d::sched
