// EpochReclaimer: three-epoch epoch-based reclamation (EBR).
//
// The default policy for every r2d container. Each operation announces the
// global epoch on entry and goes idle on exit (one store each); retired
// nodes land in the announcing thread's bucket for that epoch and are
// freed once the global epoch has advanced twice past it — at which point
// no thread can still hold a reference (the epoch-(e) bucket is freed when
// the global epoch reaches e+2; every critical section from epochs <= e
// has exited by then and later sections started after the nodes were
// unlinked).
//
// The announcement must be ordered before the critical section's pointer
// loads (a store-load ordering). On kernels with
// membarrier(PRIVATE_EXPEDITED) that ordering is asymmetric: pin() pays
// only a release store plus a compiler barrier, and the epoch advancer
// issues the full barrier process-wide before scanning announcements (see
// reclaim/membarrier.hpp). Elsewhere — or with R2D_MEMBARRIER=0 — pin()
// falls back to the classic per-operation seq_cst fence.
//
// Policy contract: see reclaim/leaky.hpp. Bounded garbage: at most the
// nodes retired across three epochs per thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sched/hook.hpp"
#include "obs/metrics.hpp"
#include "reclaim/membarrier.hpp"
#include "reclaim/slot_registry.hpp"

// EBR's safety argument is temporal — "a thread announcing a recent epoch
// cannot still hold nodes retired two epochs ago" — which no
// happens-before edge expresses, and TSan models neither the symmetric
// seq_cst fence nor membarrier. Recycling node memory under TSan therefore
// produces false data-race reports; TSan builds defer every free to the
// reclaimer destructor instead. ASan builds recycle for real and are the
// configuration that catches genuine use-after-free.
#if defined(__SANITIZE_THREAD__)
#define R2D_EBR_DEFER_FREES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define R2D_EBR_DEFER_FREES 1
#endif
#endif
#ifndef R2D_EBR_DEFER_FREES
#define R2D_EBR_DEFER_FREES 0
#endif

namespace r2d::reclaim {

class EpochReclaimer : private detail::Lessor {
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  // Retires between advance attempts. The membarrier path amortizes its
  // advance-side syscall over a longer cadence; garbage stays bounded by
  // three epochs of retires per thread either way.
  static constexpr std::uint64_t kAdvanceEvery = 64;
  static constexpr std::uint64_t kAdvanceEveryMembarrier = 256;

  struct Retired {
    void* node;
    void* ctx;  ///< owning allocator (nullptr: plain delete)
    void (*destroy)(void*, void*);
  };

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> owner{0};
    std::atomic<std::uint64_t> epoch{kIdle};
    // Owned exclusively by the claiming thread:
    std::vector<Retired> bucket[3];
    std::uint64_t bucket_epoch[3] = {0, 0, 0};
    std::uint64_t retires_since_advance = 0;
  };

 public:
  static constexpr unsigned kMaxProtected = 4;

  EpochReclaimer() {
    detail::ChurnRegistry::get().add_lessor(id_, this);
  }
  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

  ~EpochReclaimer() {
    // Unregister FIRST: after this returns, no thread-exit walk can reach
    // us, so teardown races with nothing. Exited threads' slots were
    // released by their walks; threads exiting later skip us.
    detail::ChurnRegistry::get().remove_lessor(id_);
    // Single-threaded by contract (all guards gone): drain everything —
    // live slots' buckets plus the orphan queue (exited threads' retirees
    // whose grace period had not yet passed).
    const std::size_t n = hwm_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& bucket : slots_[i].bucket) {
        for (const Retired& r : bucket) destroy_retired(r);
        bucket.clear();
      }
    }
    for (const Orphan& o : orphans_) destroy_retired(o.retired);
    orphans_.clear();
  }

  /// Highest slot index ever claimed — the churn harness's bounded-lease
  /// gauge (EXPERIMENTS.md E15).
  std::size_t slot_hwm() const { return hwm_.load(std::memory_order_acquire); }

  class Guard {
   public:
    Guard(EpochReclaimer* r, Slot* s) : r_(r), s_(s) {}
    Guard(Guard&& o) noexcept : r_(o.r_), s_(o.s_) { o.s_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;

    ~Guard() {
      if (s_ != nullptr) s_->epoch.store(kIdle, std::memory_order_release);
    }

    template <typename T>
    T* protect(const std::atomic<T*>& src, unsigned /*slot*/ = 0) {
      // The announcement in pin() already protects every load in this
      // critical section.
      return src.load(std::memory_order_acquire);
    }

    /// Safe load of a packed head word; `unpack` names the node pointer a
    /// policy would have to shield (unused here — the epoch announcement
    /// covers it).
    template <typename Unpack>
    std::uint64_t protect_word(const std::atomic<std::uint64_t>& src,
                               Unpack /*unpack*/, unsigned /*slot*/ = 0) {
      return src.load(std::memory_order_acquire);
    }

    /// Safe snapshot of a two-word (16-byte) head: `load` returns the word
    /// pair, `unpack` the two node pointers a hazard policy would shield.
    /// The epoch announcement covers every load in the critical section,
    /// so one snapshot suffices. Note the stronger guarantee EBR gives the
    /// deque's stabilization step: *no* node retired after this pin can be
    /// recycled while the guard lives, so even unvalidated interior links
    /// read inside the section can never be resurrected addresses
    /// (DESIGN.md §11).
    template <typename Load, typename Unpack>
    auto protect_pair(Load&& load, Unpack&& /*unpack*/,
                      unsigned /*first_slot*/ = 0) {
      return load();
    }

    /// Publish one extra raw pointer — a no-op here; the announcement
    /// already shields it.
    void protect_raw(void* /*node*/, unsigned /*slot*/) {}

    template <typename T>
    void retire(T* node) {
      r_->retire_at(s_, node, nullptr,
                    [](void* p, void*) { delete static_cast<T*>(p); });
    }

    /// Retire a node owned by an allocator policy: the deferred free
    /// returns the block to `alloc` (which must outlive this reclaimer)
    /// instead of heap-deleting it.
    template <typename T, typename Alloc>
    void retire(T* node, Alloc& alloc) {
      r_->retire_at(s_, node, &alloc, [](void* p, void* a) {
        static_cast<Alloc*>(a)->release(static_cast<T*>(p));
      });
    }

   private:
    EpochReclaimer* r_;
    Slot* s_;
  };

  Guard pin() {
    obs::count<obs::Counter::kEpochPins>();
    Slot* s = local_slot();
    const std::uint64_t e = global_epoch_.load(std::memory_order_relaxed);
    if (membarrier_) [[likely]] {
      // Release keeps the happens-before edge to the advancer's acquire
      // scan; the store-load ordering against this critical section's
      // loads comes from the advancer's membarrier, so only a compiler
      // barrier is needed here (see reclaim/membarrier.hpp).
      s->epoch.store(e, std::memory_order_release);
      std::atomic_signal_fence(std::memory_order_seq_cst);
    } else {
      // Order the announcement before any pointer load in the critical
      // section (store-load barrier).
      s->epoch.store(e, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
    }
    return Guard(this, s);
  }

  /// True when pin() runs fence-free and the advance side pays the
  /// membarrier instead.
  bool uses_membarrier() const { return membarrier_; }

 private:
  /// A retiree inherited from an exited thread's slot, stamped with the
  /// epoch its bucket was retiring into: safe to destroy once the global
  /// epoch has advanced twice past it (the same argument as bucket frees).
  struct Orphan {
    Retired retired;
    std::uint64_t epoch;
  };

  /// Release the slot `token` holds on this instance (thread-exit walk).
  /// The arbitration CAS makes this mutually exclusive with a stealer that
  /// sampled the token as dead (abandoned threads); losing means the other
  /// party cleanses, which is equally fine.
  void release_thread(std::uint64_t token) noexcept override {
    const std::size_t n = hwm_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      if (slots_[i].owner.load(std::memory_order_relaxed) != token) continue;
      if (detail::acquire_for_cleanse(slots_[i], token)) {
        obs::count<obs::Counter::kSlotExitReleases>();
        orphan_slot(slots_[i]);
        slots_[i].owner.store(0, std::memory_order_release);
      }
      return;
    }
  }

  /// Hand a quiesced slot's retired buckets to the orphan queue and reset
  /// the slot to fresh-claim state. Caller must hold the slot via the
  /// arbitration CAS (exit walk or steal cleanse).
  void orphan_slot(Slot& s) noexcept {
    {
      std::lock_guard<std::mutex> lock(orphan_mu_);
      const std::size_t incoming =
          s.bucket[0].size() + s.bucket[1].size() + s.bucket[2].size();
      bool room = incoming == 0;
      if (!room) {
        // Reach capacity before queueing anything: runs on the noexcept
        // exit walk, and a half-queued bucket would double-count.
        try {
          orphans_.reserve(orphans_.size() + incoming);
          room = true;
        } catch (const std::bad_alloc&) {
          // Can't queue and can't destroy early (the dead owner's grace
          // period has not passed): leak the retirees, visibly.
          obs::count<obs::Counter::kRetireLeaks>(incoming);
        }
      }
      std::uint64_t queued = 0;
      for (unsigned k = 0; k < 3; ++k) {
        if (room) {
          for (const Retired& r : s.bucket[k]) {
            orphans_.push_back(Orphan{r, s.bucket_epoch[k]});
            ++queued;
          }
        }
        s.bucket[k].clear();
      }
      if (queued != 0) obs::count<obs::Counter::kEpochOrphansQueued>(queued);
      orphan_count_.store(orphans_.size(), std::memory_order_release);
    }
    for (unsigned k = 0; k < 3; ++k) s.bucket_epoch[k] = 0;
    s.retires_since_advance = 0;
    s.epoch.store(kIdle, std::memory_order_release);
  }

  /// Free every orphan whose grace period has passed: nodes retired at
  /// epoch e are unreachable once the global epoch reaches e + 2 (no
  /// thread pinned at <= e remains, later pins began after the unlink).
  /// No-op under deferred-free (TSan) builds; the destructor drains.
  void drain_orphans(std::uint64_t global_e) {
#if !R2D_EBR_DEFER_FREES
    // Injected deferral: skipping a drain is always legal — the queue
    // just waits for the next advance (what a real bad_alloc below does).
    if (R2D_HOOK_POINT(kEpochOrphanDrain)) [[unlikely]] return;
    if (orphan_count_.load(std::memory_order_acquire) == 0) return;
    std::vector<Orphan> ready;
    {
      std::lock_guard<std::mutex> lock(orphan_mu_);
      std::size_t n_ready = 0;
      for (const Orphan& o : orphans_) {
        if (o.epoch + 2 <= global_e) ++n_ready;
      }
      if (n_ready == 0) return;
      // Reserve BEFORE compacting: a bad_alloc here defers the whole
      // drain with the queue untouched; the no-throw push_backs below
      // can then never leave orphans_ half-compacted.
      try {
        ready.reserve(n_ready);
      } catch (const std::bad_alloc&) {
        return;
      }
      std::size_t keep = 0;
      for (Orphan& o : orphans_) {
        if (o.epoch + 2 <= global_e) {
          ready.push_back(o);
        } else {
          orphans_[keep++] = o;
        }
      }
      orphans_.resize(keep);
      orphan_count_.store(keep, std::memory_order_release);
    }
    // Destroys outside the lock: a pooled node's release may claim a slot.
    if (!ready.empty()) {
      obs::count<obs::Counter::kEpochOrphansDrained>(ready.size());
    }
    for (const Orphan& o : ready) destroy_retired(o.retired);
#else
    (void)global_e;
#endif
  }

  /// Destroy one retiree, absorbing resource failure: a pooled release
  /// can throw SlotsExhausted (its slot claim) after the node's
  /// destructor has already run, past the point of repair — the only
  /// consistent outcome is to leak that one block and keep going
  /// (DESIGN.md §15). Counted so leaks are visible, never silent.
  static void destroy_retired(const Retired& r) noexcept {
    try {
      r.destroy(r.node, r.ctx);
    } catch (...) {
      obs::count<obs::Counter::kRetireLeaks>();
    }
  }

  /// Never lets a resource exception escape: retire is called AFTER a
  /// pop has linearized (the value is already moved out), so a throw
  /// here would lose a successfully delivered element. bad_alloc on the
  /// bucket append leaks the single node instead (DESIGN.md §15).
  void retire_at(Slot* s, void* node, void* ctx,
                 void (*destroy)(void*, void*)) noexcept {
    const std::uint64_t e = s->epoch.load(std::memory_order_relaxed);
    auto& bucket = s->bucket[e % 3];
    if (s->bucket_epoch[e % 3] != e) {
#if !R2D_EBR_DEFER_FREES
      // Bucket holds nodes from epoch e-3 or older; the global epoch has
      // since reached at least e >= old+3 > old+2, so they are safe.
      for (const Retired& r : bucket) destroy_retired(r);
      bucket.clear();
#endif
      s->bucket_epoch[e % 3] = e;
    }
    try {
      bucket.push_back(Retired{node, ctx, destroy});
    } catch (const std::bad_alloc&) {
      // Can't track it, can't free it (a concurrent reader may still
      // hold a reference): leak this one node, visibly.
      obs::count<obs::Counter::kRetireLeaks>();
      return;
    }
    if (++s->retires_since_advance >= advance_every_) {
      s->retires_since_advance = 0;
      try_advance();
    }
  }

  void try_advance() {
    obs::count<obs::Counter::kEpochAdvanceTries>();
    // Make every thread's (announce; load) pair ordered with respect to
    // the scan below — the heavy half of pin()'s asymmetric fence.
    detail::asymmetric_heavy_fence(membarrier_);
    const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    const std::size_t n = hwm_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t se = slots_[i].epoch.load(std::memory_order_acquire);
      if (se != kIdle && se != e) return;  // straggler in an older epoch
    }
    std::uint64_t expected = e;
    if (global_epoch_.compare_exchange_strong(expected, e + 1,
                                              std::memory_order_acq_rel)) {
      obs::count<obs::Counter::kEpochAdvances>();
      drain_orphans(e + 1);
    } else {
      drain_orphans(expected);
    }
  }

  Slot* local_slot() {
    thread_local detail::SlotCache<Slot> cache;
    Slot* s = cache.lookup(id_, detail::thread_token());
    if (s == nullptr) {
      s = detail::claim_slot(
          slots_.get(), max_slots_, hwm_, id_,
          static_cast<detail::Lessor*>(this),
          // A dead owner's slot is stealable only outside a critical
          // section: a pinned epoch means it died mid-operation and its
          // protected loads can never be proven finished.
          [](const Slot& slot) {
            return slot.epoch.load(std::memory_order_acquire) == kIdle;
          },
          [this](Slot& slot) {
            obs::count<obs::Counter::kSlotSteals>();
            orphan_slot(slot);
          });
      cache.insert(id_, s);
    }
    return s;
  }

  const std::uint64_t id_ = detail::next_instance_id();
  const bool membarrier_ = detail::use_membarrier();
  const std::uint64_t advance_every_ =
      membarrier_ ? kAdvanceEveryMembarrier : kAdvanceEvery;
  // R2D_MAX_SLOTS, read once per process; declared before slots_ (which
  // it sizes). claim_slot throws SlotsExhausted past this many threads.
  const std::size_t max_slots_ = detail::max_slots();
  std::atomic<std::uint64_t> global_epoch_{0};
  std::atomic<std::size_t> hwm_{0};
  std::unique_ptr<Slot[]> slots_{new Slot[max_slots_]};
  // Orphan queue: retirees inherited from exited threads' slots, drained
  // by try_advance once their grace period passes (and by the destructor).
  // The count is the hot-path gate so retiring threads skip the mutex.
  std::mutex orphan_mu_;
  std::vector<Orphan> orphans_;
  std::atomic<std::size_t> orphan_count_{0};
};

}  // namespace r2d::reclaim
