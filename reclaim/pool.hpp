// Pool: a lock-free, slab-backed recycler of fixed-size blocks.
//
// acquire() constructs a T in a recycled block (or carves a fresh block out
// of a slab when the free lists are dry); release() destroys it and pushes
// the block back. The E10 ablation compares this against raw new/delete —
// node recycling is what the paper's evaluation (and most lock-free stack
// evaluations) use. PoolAlloc (reclaim/alloc.hpp) layers per-thread
// magazines on top via the raw block API below.
//
// Storage is slabs, not per-block heap allocations: blocks are padded and
// aligned to cache lines (a freshly recycled node never false-shares with
// its neighbor), carving a block is one CAS on a packed {slab, index}
// cursor, and the destructor frees the slabs wholesale — so blocks parked
// in a dead thread's magazine or a depot are reclaimed no matter where
// they sit. The contract that buys: every T must be *destroyed* before the
// pool dies (release — or at least ~T — must have run), and no block may
// be touched afterwards.
//
// ABA on the free lists is defended with a 16-bit tag packed into the top
// bits of the head word (x86-64 user pointers fit in 48 bits); shards cut
// contention by assigning each (thread, instance) pair its own list
// round-robin — keyed per instance (core::InstanceLocal), because a
// process-wide counter would give two coexisting pools of the same T
// correlated, skewed assignments.
//
// The two chain words that link free blocks live in the block's *tail*,
// outside the T footprint, and are accessed as relaxed atomics
// (constructed once per slab): an optimistic chain read racing a
// winner's placement-new of T — the load the ABA tag exists to
// invalidate — is then a race on no byte at all, so the lock-free
// splice protocol is exactly as written even under TSan.
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <utility>

#include "core/substack.hpp"  // InstanceLocal
#include "sched/hook.hpp"
#include "reclaim/slot_registry.hpp"  // next_instance_id

namespace r2d::reclaim {

template <typename T>
class Pool {
  static_assert(sizeof(void*) == 8,
                "Pool packs a 16-bit ABA tag above 48-bit pointers");

  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kSlabBlocks = 64;
  static constexpr std::uint64_t kPtrMask = (std::uint64_t{1} << 48) - 1;

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> head{0};
  };

  /// Slab header; blocks start kBlockStride bytes in (header padded to one
  /// block so every block keeps 64-byte alignment).
  struct Slab {
    Slab* next;
  };

 public:
  /// Blocks are cache-line padded and aligned: recycled neighbors never
  /// share a line. The T sits at the block start (64-aligned); the two
  /// chain words occupy the last 16 bytes, disjoint from the T footprint.
  static constexpr std::size_t kBlockStride =
      (sizeof(T) + 2 * sizeof(void*) + 63) / 64 * 64;
  static constexpr std::size_t kBlockAlign = 64;
  static_assert(alignof(T) <= kBlockAlign,
                "Pool blocks are 64-byte aligned; over-aligned T unsupported");

  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    // Single-threaded by contract; every T has been destroyed, so the
    // slabs can go wholesale — free lists, magazines, and depots hold
    // interior pointers only.
    Slab* slab = slabs_.load(std::memory_order_acquire);
    while (slab != nullptr) {
      Slab* next = slab->next;
      ::operator delete(slab, std::align_val_t{kBlockAlign});
      slab = next;
    }
  }

  template <typename... Args>
  T* acquire(Args&&... args) {
    void* block = pop_block(local_shard());
    if (block == nullptr) block = alloc_block();
    return ::new (block) T{std::forward<Args>(args)...};
  }

  void release(T* obj) {
    obj->~T();
    push_block(local_shard(), obj);
  }

  // ---- raw block API (for layered allocators, see reclaim/alloc.hpp) ----

  /// First chain word of a block: links blocks within a magazine or free
  /// list. The atomics are constructed once when the slab is carved and
  /// sit past the T, so chain traffic and object construction never touch
  /// the same bytes; relaxed is enough, ordering comes from the list-head
  /// CASes.
  static std::atomic<void*>& chain_next(void* block) {
    return *reinterpret_cast<std::atomic<void*>*>(
        static_cast<char*>(block) + kBlockStride - 2 * sizeof(void*));
  }

  /// Second chain word: links whole magazines in a depot.
  static std::atomic<void*>& chain_next2(void* block) {
    return *reinterpret_cast<std::atomic<void*>*>(
        static_cast<char*>(block) + kBlockStride - sizeof(void*));
  }

  /// Return a raw block to a free list — the layered allocators' teardown
  /// path for partially-filled magazines (a depot holds only *full*
  /// magazines, so a dying thread's working magazine drains here block by
  /// block).
  void free_block(void* block) { push_block(local_shard(), block); }

  /// Carve a fresh, never-used block. One CAS on the packed {slab, index}
  /// cursor in steady state; losers of a slab-growth race free their
  /// candidate and retry on the winner's slab.
  ///
  /// OOM contract (DESIGN.md §15): when a slab cannot be allocated, the
  /// pool falls back to *recycled* blocks from every shard's free list
  /// before propagating bad_alloc — under memory pressure the pool keeps
  /// serving as long as anything has been released anywhere. The cursor
  /// is never left mid-advance: grow() only ever installs a fully
  /// constructed slab with one CAS, and a failed growth touches no
  /// shared state at all.
  void* alloc_block() {
    std::uint64_t cur = bump_.load(std::memory_order_acquire);
    while (true) {
      Slab* slab = reinterpret_cast<Slab*>(cur & kPtrMask);
      const std::uint64_t index = cur >> 48;
      if (slab != nullptr && index < kSlabBlocks) {
        if (bump_.compare_exchange_weak(
                cur, (cur & kPtrMask) | ((index + 1) << 48),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          return block_at(slab, index);
        }
        continue;
      }
      if (!grow(cur)) {
        if (void* block = scavenge()) return block;
        // A racing thread may have installed a slab while we scavenged;
        // only give up once the cursor is provably unchanged.
        const std::uint64_t latest = bump_.load(std::memory_order_acquire);
        if (latest != cur) {
          cur = latest;
          continue;
        }
        throw std::bad_alloc{};
      }
    }
  }

 private:
  static void* block_at(Slab* slab, std::uint64_t index) {
    return reinterpret_cast<char*>(slab) + kBlockStride * (index + 1);
  }

  /// Drain one recycled block from whichever shard has one — the
  /// can't-grow fallback. Starts from this thread's own shard so the
  /// degraded path keeps what locality it can.
  void* scavenge() {
    const std::size_t start =
        static_cast<std::size_t>(&local_shard() - shards_);
    for (std::size_t k = 0; k < kShards; ++k) {
      if (void* block = pop_block(shards_[(start + k) % kShards])) {
        return block;
      }
    }
    return nullptr;
  }

  /// Install a fresh slab unless someone else did first. Updates `cur` to
  /// the current cursor either way. Returns false when the slab could not
  /// be allocated (real OOM or an injected kSlabGrow fault) — in that
  /// case no shared state has been touched, so the caller can fall back
  /// or retry safely.
  bool grow(std::uint64_t& cur) {
    const std::size_t bytes = kBlockStride * (kSlabBlocks + 1);
    auto* fresh = static_cast<Slab*>(
        R2D_HOOK_POINT(kSlabGrow)
            ? nullptr
            : ::operator new(bytes, std::align_val_t{kBlockAlign},
                             std::nothrow));
    if (fresh == nullptr) [[unlikely]] {
      cur = bump_.load(std::memory_order_acquire);
      return false;
    }
    // Construct every block's chain words before the slab is published —
    // after this the tail 16 bytes of each block are only ever touched
    // through these atomics.
    for (std::uint64_t i = 0; i < kSlabBlocks; ++i) {
      void* block = block_at(fresh, i);
      ::new (static_cast<void*>(&chain_next(block))) std::atomic<void*>(nullptr);
      ::new (static_cast<void*>(&chain_next2(block)))
          std::atomic<void*>(nullptr);
    }
    if (bump_.compare_exchange_strong(
            cur, reinterpret_cast<std::uint64_t>(fresh) & kPtrMask,
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      // Won: publish for the destructor's wholesale free.
      fresh->next = slabs_.load(std::memory_order_relaxed);
      while (!slabs_.compare_exchange_weak(fresh->next, fresh,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
      }
      cur = reinterpret_cast<std::uint64_t>(fresh) & kPtrMask;
    } else {
      ::operator delete(fresh, std::align_val_t{kBlockAlign});
    }
    return true;
  }

  /// The calling thread's shard for *this* pool: assigned round-robin per
  /// instance on first touch, so coexisting pools of one T spread threads
  /// independently instead of sharing one process-wide counter.
  Shard& local_shard() {
    thread_local core::InstanceLocal<std::uint32_t> assigned;
    std::uint32_t& idx = assigned.get(id_);
    if (idx == 0) [[unlikely]] {
      idx = static_cast<std::uint32_t>(
                shard_seq_.fetch_add(1, std::memory_order_relaxed) % kShards) +
            1;
    }
    return shards_[idx - 1];
  }

  void* pop_block(Shard& shard) {
    std::uint64_t head = shard.head.load(std::memory_order_acquire);
    while (true) {
      void* block = reinterpret_cast<void*>(head & kPtrMask);
      if (block == nullptr) return nullptr;
      // The tag makes a recycled-and-repushed block compare unequal, so
      // the chain_next read below cannot be stitched onto the wrong
      // successor (a stale read is of a constructed atomic in mapped slab
      // memory; its value is discarded when the CAS fails).
      const std::uint64_t next =
          (reinterpret_cast<std::uint64_t>(
               chain_next(block).load(std::memory_order_relaxed)) &
           kPtrMask) |
          (((head >> 48) + 1) << 48);
      if (shard.head.compare_exchange_weak(head, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        return block;
      }
    }
  }

  void push_block(Shard& shard, void* block) {
    std::uint64_t head = shard.head.load(std::memory_order_relaxed);
    while (true) {
      chain_next(block).store(reinterpret_cast<void*>(head & kPtrMask),
                              std::memory_order_relaxed);
      const std::uint64_t packed =
          (reinterpret_cast<std::uint64_t>(block) & kPtrMask) |
          (((head >> 48) + 1) << 48);
      if (shard.head.compare_exchange_weak(head, packed,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
        return;
      }
    }
  }

  const std::uint64_t id_ = detail::next_instance_id();
  std::atomic<std::uint64_t> shard_seq_{0};
  /// Packed carve cursor: [next block index : 16][slab pointer : 48].
  std::atomic<std::uint64_t> bump_{0};
  std::atomic<Slab*> slabs_{nullptr};
  Shard shards_[kShards];
};

}  // namespace r2d::reclaim
