// Pool: a lock-free, sharded free list of fixed-size nodes.
//
// acquire() constructs a T in a recycled block (or a fresh heap block when
// the shard is dry); release() destroys it and pushes the block back. The
// E10 ablation compares this against raw new/delete — node recycling is
// what the paper's evaluation (and most lock-free stack evaluations) use.
//
// ABA on the free lists is defended with a 16-bit tag packed into the top
// bits of the head word (x86-64 user pointers fit in 48 bits); shards cut
// contention by hashing threads onto independent lists.
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <utility>

namespace r2d::reclaim {

template <typename T>
class Pool {
  static_assert(sizeof(void*) == 8,
                "Pool packs a 16-bit ABA tag above 48-bit pointers");

  struct FreeNode {
    FreeNode* next;
  };
  static constexpr std::size_t kBlockSize =
      sizeof(T) > sizeof(FreeNode) ? sizeof(T) : sizeof(FreeNode);
  static constexpr std::size_t kBlockAlign =
      alignof(T) > alignof(FreeNode) ? alignof(T) : alignof(FreeNode);
  static constexpr std::size_t kShards = 16;
  static constexpr std::uint64_t kPtrMask = (std::uint64_t{1} << 48) - 1;

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> head{0};
  };

  static FreeNode* unpack(std::uint64_t v) {
    return reinterpret_cast<FreeNode*>(v & kPtrMask);
  }
  static std::uint64_t pack(FreeNode* p, std::uint64_t tag) {
    return (reinterpret_cast<std::uint64_t>(p) & kPtrMask) | (tag << 48);
  }

 public:
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    for (Shard& shard : shards_) {
      FreeNode* node = unpack(shard.head.load(std::memory_order_acquire));
      while (node != nullptr) {
        FreeNode* next = node->next;
        ::operator delete(node, std::align_val_t{kBlockAlign});
        node = next;
      }
    }
  }

  template <typename... Args>
  T* acquire(Args&&... args) {
    void* block = pop_block(local_shard());
    if (block == nullptr) {
      block = ::operator new(kBlockSize, std::align_val_t{kBlockAlign});
    }
    return ::new (block) T{std::forward<Args>(args)...};
  }

  void release(T* obj) {
    obj->~T();
    push_block(local_shard(), obj);
  }

 private:
  Shard& local_shard() {
    static std::atomic<std::uint64_t> counter{0};
    thread_local std::uint64_t idx =
        counter.fetch_add(1, std::memory_order_relaxed);
    return shards_[idx % kShards];
  }

  void* pop_block(Shard& shard) {
    std::uint64_t head = shard.head.load(std::memory_order_acquire);
    while (true) {
      FreeNode* node = unpack(head);
      if (node == nullptr) return nullptr;
      // The tag makes a recycled-and-repushed node compare unequal, so the
      // dereference of node->next below cannot be stitched onto the wrong
      // successor.
      const std::uint64_t next = pack(node->next, (head >> 48) + 1);
      if (shard.head.compare_exchange_weak(head, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        return node;
      }
    }
  }

  void push_block(Shard& shard, void* block) {
    auto* node = ::new (block) FreeNode{nullptr};
    std::uint64_t head = shard.head.load(std::memory_order_relaxed);
    while (true) {
      node->next = unpack(head);
      const std::uint64_t packed = pack(node, (head >> 48) + 1);
      if (shard.head.compare_exchange_weak(head, packed,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
        return;
      }
    }
  }

  Shard shards_[kShards];
};

}  // namespace r2d::reclaim
