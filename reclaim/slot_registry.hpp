// Per-thread slot assignment shared by the epoch and hazard reclaimers.
//
// Each reclaimer instance owns a fixed array of cache-line-sized slots; a
// thread claims one slot per instance on first use and caches the mapping
// in a small thread-local ring keyed by a process-unique instance id (so a
// destroyed instance's cache entry can never be mistaken for a live one,
// even if the allocator reuses the address).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace r2d::reclaim::detail {

inline std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

inline std::uint64_t thread_token() {
  static std::atomic<std::uint64_t> counter{1};
  thread_local std::uint64_t token =
      counter.fetch_add(1, std::memory_order_relaxed);
  return token;
}

/// Claim-or-reuse a slot in `slots[0..max_slots)` for the calling thread.
/// `Slot` must expose `std::atomic<std::uint64_t> owner` (0 = free).
/// `hwm` tracks the number of slots ever claimed so scans stay short.
template <typename Slot>
Slot* claim_slot(Slot* slots, std::size_t max_slots,
                 std::atomic<std::size_t>& hwm) {
  const std::uint64_t token = thread_token();
  const std::size_t seen = hwm.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < seen; ++i) {
    if (slots[i].owner.load(std::memory_order_relaxed) == token) {
      return &slots[i];
    }
  }
  for (std::size_t i = 0; i < max_slots; ++i) {
    std::uint64_t expected = 0;
    if (slots[i].owner.load(std::memory_order_relaxed) == 0 &&
        slots[i].owner.compare_exchange_strong(expected, token,
                                               std::memory_order_acq_rel)) {
      std::size_t cur = hwm.load(std::memory_order_relaxed);
      while (cur < i + 1 &&
             !hwm.compare_exchange_weak(cur, i + 1,
                                        std::memory_order_acq_rel)) {
      }
      return &slots[i];
    }
  }
  std::fprintf(stderr,
               "r2d::reclaim: out of reclaimer slots (%zu); raise kMaxSlots\n",
               max_slots);
  std::abort();
}

/// Thread-local (instance id -> slot) cache. Small ring with LRU-ish
/// eviction; a miss falls back to claim_slot (which reuses the thread's
/// already-claimed slot if it has one).
template <typename Slot, unsigned kWays = 8>
class SlotCache {
 public:
  Slot* lookup(std::uint64_t instance_id) {
    // Last-hit fast path: back-to-back operations on one instance — the
    // per-op common case — pay one compare, no scan.
    if (last_id_ == instance_id) return last_slot_;
    for (unsigned i = 0; i < kWays; ++i) {
      if (entries_[i].id == instance_id) {
        last_id_ = instance_id;
        last_slot_ = entries_[i].slot;
        return last_slot_;
      }
    }
    return nullptr;
  }

  void insert(std::uint64_t instance_id, Slot* slot) {
    entries_[next_] = Entry{instance_id, slot};
    next_ = (next_ + 1) % kWays;
    last_id_ = instance_id;
    last_slot_ = slot;
  }

 private:
  struct Entry {
    std::uint64_t id = 0;
    Slot* slot = nullptr;
  };
  Entry entries_[kWays];
  std::uint64_t last_id_ = 0;
  Slot* last_slot_ = nullptr;
  unsigned next_ = 0;
};

}  // namespace r2d::reclaim::detail
