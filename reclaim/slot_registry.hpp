// Per-thread slot leases shared by the epoch/hazard reclaimers and the
// pool allocator.
//
// Each lessor instance owns a fixed array of cache-line-sized slots; a
// thread claims one slot per instance on first use and caches the mapping
// in a small thread-local ring keyed by a process-unique instance id (so a
// destroyed instance's cache entry can never be mistaken for a live one,
// even if the allocator reuses the address).
//
// Slots are *leases*, not lifetime bindings (DESIGN.md §13). Three layers
// make a slot a renewable resource under unbounded thread churn:
//
//  1. A process-wide ChurnRegistry of live lessor instances plus live
//     thread tokens. A pthread-key exit hook walks the dying thread's
//     leases and releases each slot back to any still-live instance —
//     epoch slots hand their retired buckets to the instance's orphan
//     queue, hazard slots null their protections and transfer retirees,
//     pool slots flush their magazines. Both destruction orders are safe:
//     an instance destroyed first unregisters, so the exit walk skips it;
//     a thread exiting first leaves nothing behind for the instance's
//     destructor to special-case.
//  2. Slot *stealing* in claim_slot (the R2D_SLOT_STEAL knob, default on):
//     before throwing SlotsExhausted, the claimer scans for slots whose
//     owner token is dead (a thread that skipped its exit hook — killed,
//     or claiming past PTHREAD_DESTRUCTOR_ITERATIONS) and quiesced, and
//     reclaims them.
//  3. An owner-arbitration protocol: every transition away from a claimed
//     owner — steal, exit-walk release, or the owner itself retaking a
//     slot after being marked dead — goes through one CAS
//     (owner: token -> kSlotStealing), so exactly one party cleanses the
//     slot and a revenant thread can never write through a stolen slot.
//     The thread-local SlotCache revalidates owner (and the thread's own
//     liveness) on every hit for the same reason.
#pragma once

#include <pthread.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sched/hook.hpp"
#include "util/env.hpp"

namespace r2d::reclaim {

namespace detail {
/// Installed by obs::Metrics<true>::get() (obs/metrics.hpp): returns a
/// metrics-snapshot suffix appended to SlotsExhausted's message (steal /
/// exit-release / orphan-queue counts) so post-mortems carry state. A raw
/// function pointer because obs/ includes this header, not vice versa.
inline std::string (*slots_exhausted_annotator)() = nullptr;

inline std::string slots_exhausted_message(std::size_t max_slots,
                                           std::size_t live,
                                           std::size_t leaked,
                                           std::size_t stealable) {
  std::string message =
      "r2d::reclaim: all " + std::to_string(max_slots) +
      " per-thread slots of this instance are claimed: " +
      std::to_string(live) + " by live threads, " + std::to_string(stealable) +
      " stealable (exited threads; enable R2D_SLOT_STEAL=1 to reclaim "
      "them), " +
      std::to_string(leaked) +
      " leaked (threads that died mid-operation or without their exit "
      "hook). Slots are leases released at thread exit, so only live "
      "threads should count against the cap; raise R2D_MAX_SLOTS if "
      "the live demand is real.";
  if (slots_exhausted_annotator != nullptr) {
    message += slots_exhausted_annotator();
  }
  return message;
}
}  // namespace detail

/// Thrown when a reclaimer/allocator instance has no per-thread slot left
/// for the calling thread. Since slots are leases (released at thread
/// exit, stolen from dead threads when R2D_SLOT_STEAL is on), this means
/// the *live* demand exceeded the cap — or stealing is disabled and dead
/// threads' slots are parked. The message reports the split so the remedy
/// (raise R2D_MAX_SLOTS, or enable R2D_SLOT_STEAL) is readable off the
/// exception — plus, when metrics are enabled, an obs snapshot suffix.
class SlotsExhausted : public std::runtime_error {
 public:
  SlotsExhausted(std::size_t max_slots, std::size_t live, std::size_t leaked,
                 std::size_t stealable)
      : std::runtime_error(
            detail::slots_exhausted_message(max_slots, live, leaked,
                                            stealable)) {}
};

namespace detail {

/// Per-instance slot-array size: the R2D_MAX_SLOTS knob (default 256),
/// read once per process and clamped to a sane range. Every reclaimer or
/// PoolAlloc instance constructed afterwards sizes its registry from it.
inline std::size_t max_slots() {
  static const std::size_t cached = [] {
    const std::uint64_t raw = util::env_u64("R2D_MAX_SLOTS", 256);
    return static_cast<std::size_t>(raw < 1 ? 1 : (raw > 65536 ? 65536 : raw));
  }();
  return cached;
}

/// R2D_SLOT_STEAL (default 1): whether claim_slot may reclaim slots whose
/// owner token is dead and whose state is quiesced, instead of throwing.
inline bool slot_steal_enabled() {
  static const bool cached = util::env_u64("R2D_SLOT_STEAL", 1) != 0;
  return cached;
}

inline std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

inline std::uint64_t thread_token() {
  static std::atomic<std::uint64_t> counter{1};
  thread_local std::uint64_t token =
      counter.fetch_add(1, std::memory_order_relaxed);
  return token;
}

/// Owner-word sentinel held while a slot is being cleansed (stolen,
/// released at exit, or retaken by a resurrected owner). Tokens start at 1
/// and never reach it. Any party moving a slot away from a claimed owner
/// must win CAS(owner: token -> kSlotStealing) first — that one word
/// arbitrates every racing transition.
inline constexpr std::uint64_t kSlotStealing = ~std::uint64_t{0};

/// What a lessor (reclaimer / pool allocator) exposes to the churn
/// registry: release whatever slot the given thread token holds on this
/// instance. Called at thread exit for instances still registered; must be
/// a no-op when the token holds nothing (its slot may already be stolen).
class Lessor {
 public:
  virtual void release_thread(std::uint64_t token) noexcept = 0;

 protected:
  ~Lessor() = default;
};

/// The calling thread's lease book: its token, a liveness flag mirrored
/// into the registry's live-token set, and the (instance id, lessor) pairs
/// it holds slots on. Owned by the thread (only the owner appends/reads
/// the vector); `live` is written under the registry mutex so stealers get
/// a happens-before edge to everything the thread did before abandoning.
struct ThreadLeases {
  std::uint64_t token = 0;
  std::atomic<bool> live{true};
  std::vector<std::pair<std::uint64_t, Lessor*>> leases;
};

/// Thread-local handle to this thread's lease book. Raw trivially-
/// destructible pointer so it stays readable during TLS teardown; nulled
/// by the exit hook when the book is freed.
inline thread_local ThreadLeases* tl_leases = nullptr;

/// Process-wide registry of live lessor instances and live thread tokens.
/// Leaked singleton (never destroyed) so threads exiting after main can
/// still walk it. All cold-path: claims on a fresh (thread, instance)
/// pair, thread exit, instance construction/destruction, steal scans.
class ChurnRegistry {
 public:
  static ChurnRegistry& get() {
    static ChurnRegistry* instance = new ChurnRegistry;
    return *instance;
  }

  void add_lessor(std::uint64_t id, Lessor* lessor) {
    std::lock_guard<std::mutex> lock(mu_);
    lessors_.emplace(id, lessor);
  }

  /// Instance destructors call this FIRST, before tearing anything down:
  /// the mutex serializes against exit walks mid-release on this instance.
  void remove_lessor(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    lessors_.erase(id);
  }

  /// Record, on the calling thread, that `token` is live and holds (or is
  /// about to claim) a slot on instance `id`. Must complete before the
  /// slot can be observed owned by `token`, or a stealer could reap the
  /// slot out from under the claimer. Returns true when the thread had
  /// been marked dead (abandoned) and was resurrected — the caller must
  /// then retake any previously owned slot through the arbitration CAS,
  /// because a stealer may already have sampled the token as dead.
  bool note_claim(std::uint64_t token, std::uint64_t id, Lessor* lessor) {
    ThreadLeases* tl = tl_leases;
    if (tl == nullptr) {
      tl = new ThreadLeases;
      tl->token = token;
      pthread_setspecific(key_, tl);
      tl_leases = tl;
      std::lock_guard<std::mutex> lock(mu_);
      live_.insert(token);
      tl->leases.emplace_back(id, lessor);
      return false;
    }
    bool has_lease = false;
    for (const auto& lease : tl->leases) {
      if (lease.first == id) {
        has_lease = true;
        break;
      }
    }
    if (tl->live.load(std::memory_order_relaxed) && has_lease) return false;
    std::lock_guard<std::mutex> lock(mu_);
    const bool resurrected = !tl->live.load(std::memory_order_relaxed);
    if (resurrected) {
      live_.insert(token);
      tl->live.store(true, std::memory_order_relaxed);
      // The exit hook may have already fired and freed the book's pthread
      // slot; re-arm it so this claim is released too (pthread re-runs
      // destructors for re-set keys, PTHREAD_DESTRUCTOR_ITERATIONS deep).
      if (pthread_getspecific(key_) == nullptr) pthread_setspecific(key_, tl);
    }
    if (!has_lease) tl->leases.emplace_back(id, lessor);
    return resurrected;
  }

  /// Is this token's thread still live? Steal candidates must answer no.
  /// Taken under the mutex so a false answer happens-after everything the
  /// thread published before it was marked dead.
  bool is_live(std::uint64_t token) {
    std::lock_guard<std::mutex> lock(mu_);
    return live_.count(token) != 0;
  }

  /// Mark the CALLING thread dead without releasing its leases — what a
  /// thread killed without running TLS destructors looks like to the rest
  /// of the process. Its slots become steal candidates once quiesced. The
  /// thread may come back (a "revenant"): its next claim resurrects it via
  /// note_claim and retakes or replaces its slots safely. Exists for the
  /// steal path's regression tests; real code never needs it.
  void abandon_current_thread() {
    ThreadLeases* tl = tl_leases;
    if (tl == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    live_.erase(tl->token);
    tl->live.store(false, std::memory_order_relaxed);
  }

 private:
  ChurnRegistry() { pthread_key_create(&key_, &key_destructor); }

  static void key_destructor(void* value) {
    auto* tl = static_cast<ThreadLeases*>(value);
    get().thread_exited(tl);
    tl_leases = nullptr;
    delete tl;
  }

  /// The exit walk: runs on the dying thread. Releases every lease whose
  /// instance is still registered; instances destroyed earlier were
  /// unregistered and are skipped (their ids are never reused).
  void thread_exited(ThreadLeases* tl) {
    std::lock_guard<std::mutex> lock(mu_);
    live_.erase(tl->token);
    tl->live.store(false, std::memory_order_relaxed);
    for (const auto& [id, lessor] : tl->leases) {
      auto it = lessors_.find(id);
      if (it != lessors_.end()) it->second->release_thread(tl->token);
    }
  }

  std::mutex mu_;
  std::unordered_map<std::uint64_t, Lessor*> lessors_;
  std::unordered_set<std::uint64_t> live_;
  pthread_key_t key_;
};

/// Win ownership of `slot` away from `expected_owner` (which may be the
/// calling thread's own token, when resurrecting). True means the caller
/// is now the unique cleanser and must store the new owner when done.
template <typename Slot>
bool acquire_for_cleanse(Slot& slot, std::uint64_t expected_owner) {
  return slot.owner.compare_exchange_strong(expected_owner, kSlotStealing,
                                            std::memory_order_acq_rel);
}

/// Claim-or-reuse a slot in `slots[0..max_slots)` for the calling thread.
/// `Slot` must expose `std::atomic<std::uint64_t> owner` (0 = free).
/// `hwm` tracks the number of slots ever claimed so scans stay short.
/// `quiesced(slot)` says whether a dead owner's slot holds no in-flight
/// operation state (e.g. epoch == idle) and may be cleansed; `cleanse`
/// transfers its parked resources (retired lists, magazines) back to the
/// instance. Both run only on slots won through the arbitration CAS.
template <typename Slot, typename Quiesced, typename Cleanse>
Slot* claim_slot(Slot* slots, std::size_t max_slots,
                 std::atomic<std::size_t>& hwm, std::uint64_t instance_id,
                 Lessor* lessor, Quiesced&& quiesced, Cleanse&& cleanse) {
  // Injected exhaustion: what every claim site must absorb — thrown at
  // entry, before any registry or slot state is touched, so unwinding
  // observes exactly the pre-call container state.
  if (R2D_HOOK_POINT(kSlotClaim)) [[unlikely]] {
    throw SlotsExhausted(max_slots, max_slots, 0, 0);
  }
  const std::uint64_t token = thread_token();
  ChurnRegistry& registry = ChurnRegistry::get();
  const bool resurrected = registry.note_claim(token, instance_id, lessor);

  // Reuse the thread's already-claimed slot. A resurrected thread must
  // retake it through the arbitration CAS — a stealer that sampled this
  // token as dead may be racing us for it, and only one side may win.
  const std::size_t seen = hwm.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < seen; ++i) {
    if (slots[i].owner.load(std::memory_order_relaxed) != token) continue;
    if (!resurrected) return &slots[i];
    if (acquire_for_cleanse(slots[i], token)) {
      slots[i].owner.store(token, std::memory_order_release);
      return &slots[i];
    }
    break;  // lost the retake; fall through and claim another slot
  }

  auto claim_free = [&]() -> Slot* {
    for (std::size_t i = 0; i < max_slots; ++i) {
      std::uint64_t expected = 0;
      if (slots[i].owner.load(std::memory_order_relaxed) == 0 &&
          slots[i].owner.compare_exchange_strong(expected, token,
                                                 std::memory_order_acq_rel)) {
        std::size_t cur = hwm.load(std::memory_order_relaxed);
        while (cur < i + 1 &&
               !hwm.compare_exchange_weak(cur, i + 1,
                                          std::memory_order_acq_rel)) {
        }
        return &slots[i];
      }
    }
    return nullptr;
  };
  if (Slot* s = claim_free()) return s;

  // Injected steal failure: skipping the pass models losing every
  // arbitration CAS; the claimer then reports exhaustion exactly as if
  // the dead slots were not quiesced.
  if (slot_steal_enabled() && !R2D_HOOK_POINT(kSlotSteal)) {
    // Steal pass: reclaim a slot whose owner's thread is gone and whose
    // state is quiesced. is_live under the registry mutex gives the edge
    // that makes the dead owner's parked state safe to read after the CAS.
    for (std::size_t i = 0; i < max_slots; ++i) {
      const std::uint64_t owner =
          slots[i].owner.load(std::memory_order_acquire);
      if (owner == 0 || owner == kSlotStealing || owner == token) continue;
      if (registry.is_live(owner)) continue;
      if (!quiesced(slots[i])) continue;
      if (!acquire_for_cleanse(slots[i], owner)) continue;
      cleanse(slots[i]);
      slots[i].owner.store(token, std::memory_order_release);
      return &slots[i];
    }
    // Exit walks may have freed slots while we scanned; one more pass
    // before giving up.
    if (Slot* s = claim_free()) return s;
  }

  // Diagnostic failure, not an opaque abort: report the live / stealable /
  // leaked split and the two knobs, and propagate out of the container
  // operation that needed the slot so callers can catch it at a clean
  // boundary. Regression-tested by tests/test_slot_exhaustion.
  std::size_t live = 0, leaked = 0, stealable = 0;
  for (std::size_t i = 0; i < max_slots; ++i) {
    const std::uint64_t owner = slots[i].owner.load(std::memory_order_acquire);
    if (owner == 0 || owner == kSlotStealing) continue;
    if (registry.is_live(owner)) {
      ++live;
    } else if (quiesced(slots[i])) {
      ++stealable;
    } else {
      ++leaked;
    }
  }
  throw SlotsExhausted(max_slots, live, leaked, stealable);
}

/// Claim-only variant for *process-lifetime static* pools (the elimination
/// stack's collision records): no registry participation, because the
/// caller releases the slot itself from a thread_local destructor — safe
/// precisely because the pool is never destroyed, so there is no
/// destruction order to arbitrate. A thread killed without running TLS
/// destructors parks its slot for good (sequence tags keep any reuse
/// safe), hence the throw reports every claimed slot as live.
template <typename Slot>
Slot* claim_slot(Slot* slots, std::size_t max_slots,
                 std::atomic<std::size_t>& hwm) {
  const std::uint64_t token = thread_token();
  const std::size_t seen = hwm.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < seen; ++i) {
    if (slots[i].owner.load(std::memory_order_relaxed) == token) {
      return &slots[i];
    }
  }
  for (std::size_t i = 0; i < max_slots; ++i) {
    std::uint64_t expected = 0;
    if (slots[i].owner.load(std::memory_order_relaxed) == 0 &&
        slots[i].owner.compare_exchange_strong(expected, token,
                                               std::memory_order_acq_rel)) {
      std::size_t cur = hwm.load(std::memory_order_relaxed);
      while (cur < i + 1 &&
             !hwm.compare_exchange_weak(cur, i + 1,
                                        std::memory_order_acq_rel)) {
      }
      return &slots[i];
    }
  }
  throw SlotsExhausted(max_slots, max_slots, 0, 0);
}

/// Thread-local (instance id -> slot) cache. Small ring with LRU-ish
/// eviction; a miss falls back to claim_slot (which reuses the thread's
/// already-claimed slot if it has one). Every hit revalidates that the
/// slot still belongs to this thread AND that this thread is still marked
/// live — a stolen, released, or abandoned slot must never be used through
/// the ring (DESIGN.md §13).
template <typename Slot, unsigned kWays = 8>
class SlotCache {
 public:
  Slot* lookup(std::uint64_t instance_id, std::uint64_t token) {
    // Last-hit fast path: back-to-back operations on one instance — the
    // per-op common case — pay the liveness flag, one compare, and one
    // owner load (the slot line the operation touches anyway), no scan.
    if (last_id_ == instance_id) {
      if (validate(last_slot_, token)) [[likely]] return last_slot_;
      purge(instance_id);
      return nullptr;
    }
    for (unsigned i = 0; i < kWays; ++i) {
      if (entries_[i].id == instance_id) {
        Slot* slot = entries_[i].slot;
        if (!validate(slot, token)) {
          entries_[i] = Entry{};
          return nullptr;
        }
        last_id_ = instance_id;
        last_slot_ = slot;
        return slot;
      }
    }
    return nullptr;
  }

  void insert(std::uint64_t instance_id, Slot* slot) {
    entries_[next_] = Entry{instance_id, slot};
    next_ = (next_ + 1) % kWays;
    last_id_ = instance_id;
    last_slot_ = slot;
  }

 private:
  static bool validate(Slot* slot, std::uint64_t token) {
    const ThreadLeases* tl = tl_leases;
    return tl != nullptr && tl->live.load(std::memory_order_relaxed) &&
           slot->owner.load(std::memory_order_acquire) == token;
  }

  void purge(std::uint64_t instance_id) {
    last_id_ = 0;
    last_slot_ = nullptr;
    for (unsigned i = 0; i < kWays; ++i) {
      if (entries_[i].id == instance_id) entries_[i] = Entry{};
    }
  }

  struct Entry {
    std::uint64_t id = 0;
    Slot* slot = nullptr;
  };
  Entry entries_[kWays];
  std::uint64_t last_id_ = 0;
  Slot* last_slot_ = nullptr;
  unsigned next_ = 0;
};

}  // namespace detail
}  // namespace r2d::reclaim
