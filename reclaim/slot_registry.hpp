// Per-thread slot assignment shared by the epoch and hazard reclaimers.
//
// Each reclaimer instance owns a fixed array of cache-line-sized slots; a
// thread claims one slot per instance on first use and caches the mapping
// in a small thread-local ring keyed by a process-unique instance id (so a
// destroyed instance's cache entry can never be mistaken for a live one,
// even if the allocator reuses the address).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/env.hpp"

namespace r2d::reclaim {

/// Thrown when a reclaimer/allocator instance has no free per-thread slot
/// left. Slots bind a thread to an instance for the *instance's* lifetime
/// — there is no slot leasing yet (see ROADMAP), so sustained thread churn
/// against one long-lived container exhausts the registry even though the
/// threads are long gone. The remedy is the knob the message names: raise
/// R2D_MAX_SLOTS, or reuse worker threads instead of churning them.
class SlotsExhausted : public std::runtime_error {
 public:
  explicit SlotsExhausted(std::size_t max_slots)
      : std::runtime_error(
            "r2d::reclaim: all " + std::to_string(max_slots) +
            " per-thread slots of this instance are claimed. Slots are "
            "bound for the instance's lifetime (no slot leases yet — "
            "ROADMAP), so thread churn counts against the cap even after "
            "the threads exit; raise R2D_MAX_SLOTS or reuse worker "
            "threads.") {}
};

namespace detail {

/// Per-instance slot-array size: the R2D_MAX_SLOTS knob (default 256),
/// read once per process and clamped to a sane range. Every reclaimer or
/// PoolAlloc instance constructed afterwards sizes its registry from it.
inline std::size_t max_slots() {
  static const std::size_t cached = [] {
    const std::uint64_t raw = util::env_u64("R2D_MAX_SLOTS", 256);
    return static_cast<std::size_t>(raw < 1 ? 1 : (raw > 65536 ? 65536 : raw));
  }();
  return cached;
}

inline std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

inline std::uint64_t thread_token() {
  static std::atomic<std::uint64_t> counter{1};
  thread_local std::uint64_t token =
      counter.fetch_add(1, std::memory_order_relaxed);
  return token;
}

/// Claim-or-reuse a slot in `slots[0..max_slots)` for the calling thread.
/// `Slot` must expose `std::atomic<std::uint64_t> owner` (0 = free).
/// `hwm` tracks the number of slots ever claimed so scans stay short.
template <typename Slot>
Slot* claim_slot(Slot* slots, std::size_t max_slots,
                 std::atomic<std::size_t>& hwm) {
  const std::uint64_t token = thread_token();
  const std::size_t seen = hwm.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < seen; ++i) {
    if (slots[i].owner.load(std::memory_order_relaxed) == token) {
      return &slots[i];
    }
  }
  for (std::size_t i = 0; i < max_slots; ++i) {
    std::uint64_t expected = 0;
    if (slots[i].owner.load(std::memory_order_relaxed) == 0 &&
        slots[i].owner.compare_exchange_strong(expected, token,
                                               std::memory_order_acq_rel)) {
      std::size_t cur = hwm.load(std::memory_order_relaxed);
      while (cur < i + 1 &&
             !hwm.compare_exchange_weak(cur, i + 1,
                                        std::memory_order_acq_rel)) {
      }
      return &slots[i];
    }
  }
  // Diagnostic failure, not an opaque abort: the exception names the knob
  // (R2D_MAX_SLOTS) and the churn limitation, and propagates out of the
  // container operation that needed the slot, so callers can catch it at
  // a clean boundary. Regression-tested by tests/test_slot_exhaustion.
  throw SlotsExhausted(max_slots);
}

/// Thread-local (instance id -> slot) cache. Small ring with LRU-ish
/// eviction; a miss falls back to claim_slot (which reuses the thread's
/// already-claimed slot if it has one).
template <typename Slot, unsigned kWays = 8>
class SlotCache {
 public:
  Slot* lookup(std::uint64_t instance_id) {
    // Last-hit fast path: back-to-back operations on one instance — the
    // per-op common case — pay one compare, no scan.
    if (last_id_ == instance_id) return last_slot_;
    for (unsigned i = 0; i < kWays; ++i) {
      if (entries_[i].id == instance_id) {
        last_id_ = instance_id;
        last_slot_ = entries_[i].slot;
        return last_slot_;
      }
    }
    return nullptr;
  }

  void insert(std::uint64_t instance_id, Slot* slot) {
    entries_[next_] = Entry{instance_id, slot};
    next_ = (next_ + 1) % kWays;
    last_id_ = instance_id;
    last_slot_ = slot;
  }

 private:
  struct Entry {
    std::uint64_t id = 0;
    Slot* slot = nullptr;
  };
  Entry entries_[kWays];
  std::uint64_t last_id_ = 0;
  Slot* last_slot_ = nullptr;
  unsigned next_ = 0;
};

}  // namespace detail
}  // namespace r2d::reclaim
