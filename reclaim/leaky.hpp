// LeakyReclaimer: the null memory-reclamation policy.
//
// Reclaimer policy contract (see DESIGN.md §5): a container owns one
// reclaimer instance and brackets every operation with
//
//   auto g = reclaimer.pin();          // enter critical section (RAII)
//   T* p = g.protect(head, slot);      // hazard-safe load of atomic<T*>
//   w = g.protect_word(head, unpack);  // same for a packed head word whose
//                                      // node pointer `unpack` extracts
//   wp = g.protect_pair(load, unpack); // same for a two-word (16-byte)
//                                      // head: `load` returns the word
//                                      // pair, `unpack` the two node
//                                      // pointers to shield (slots n, n+1)
//   g.protect_raw(p, slot);            // publish one extra raw pointer
//                                      // (caller revalidates reachability)
//   g.retire(p, alloc);                // defer release of an unlinked node
//                                      // back to its owning allocator
//   g.retire(p);                       // same, for plain new'd nodes
//
// Operations that never dereference a shared node — packed-head pushes and
// count probes read one atomic word — need no guard at all.
//
// `protect` may be called for up to kMaxProtected distinct slots per guard;
// `retire` must be called at most once per node, only after the node is
// unreachable from the structure. The allocator passed to retire must
// outlive the reclaimer (containers declare the allocator member first —
// see DESIGN.md §10 for the block-ownership pipeline). Guards must not
// outlive the reclaimer and must not nest per thread on the same instance
// (one pin per operation).
// Capacity: the epoch/hazard policies lease each thread a per-instance
// slot (R2D_MAX_SLOTS, default 256). Leases are released at thread exit
// and stealable from dead threads once quiesced (DESIGN.md §13), so the
// cap bounds *concurrent* threads, not lifetime distinct ones; exceeding
// live demand throws a diagnostic SlotsExhausted.
//
// The leaky policy performs no reclamation at all: protect is a plain
// acquire load and retire drops the node on the floor. It is the zero-cost
// baseline the E7 ablation measures the real schemes against, and is only
// safe because bench processes are short-lived.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace r2d::reclaim {

class LeakyReclaimer {
 public:
  static constexpr unsigned kMaxProtected = 4;

  class Guard {
   public:
    template <typename T>
    T* protect(const std::atomic<T*>& src, unsigned /*slot*/ = 0) {
      return src.load(std::memory_order_acquire);
    }

    template <typename Unpack>
    std::uint64_t protect_word(const std::atomic<std::uint64_t>& src,
                               Unpack /*unpack*/, unsigned /*slot*/ = 0) {
      return src.load(std::memory_order_acquire);
    }

    template <typename Load, typename Unpack>
    auto protect_pair(Load&& load, Unpack&& /*unpack*/,
                      unsigned /*first_slot*/ = 0) {
      return load();
    }

    void protect_raw(void* /*node*/, unsigned /*slot*/) {}

    template <typename T>
    void retire(T* /*node*/) {
      // Intentionally leaked.
    }

    template <typename T, typename Alloc>
    void retire(T* /*node*/, Alloc& /*alloc*/) {
      // Intentionally leaked — never returned to the allocator either.
    }
  };

  Guard pin() { return Guard{}; }

  std::size_t slot_hwm() const { return 0; }  ///< slotless: nothing leased
};

}  // namespace r2d::reclaim
