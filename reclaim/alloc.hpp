// Allocation policies: the substrate every container draws its nodes from.
//
// Containers take the allocator as a template-template policy next to the
// reclaimer and route *all* node lifetime through it:
//
//   Alloc<Node> alloc_;                       // declared BEFORE reclaimer_
//   Node* n = alloc_.acquire(args...);        // push path
//   guard.retire(n, alloc_);                  // pop path: reclaimer returns
//                                             // the block to alloc_ later
//   alloc_.release(n);                        // unshared teardown paths
//
// The member order is the destruction-safety contract (DESIGN.md §10): the
// reclaimer's destructor drains deferred retires into the allocator, so
// the allocator must be destroyed after it.
//
//   HeapAlloc — new/delete; the default, and the zero-state baseline E10
//               measures the pool against.
//   PoolAlloc — reclaim::Pool slabs + a per-thread magazine layer: acquire
//               and release are a pointer pop/push on a thread-owned LIFO
//               in steady state (no shared atomics at all); magazines
//               refill/flush by moving a whole batch to or from a sharded
//               depot in one tagged CAS.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "sched/hook.hpp"
#include "obs/metrics.hpp"
#include "reclaim/pool.hpp"
#include "reclaim/slot_registry.hpp"
#include "util/env.hpp"

namespace r2d::reclaim {

/// The default policy: plain heap allocation, no state. Containers
/// instantiate one per node type; [[no_unique_address]] makes it free.
template <typename T>
struct HeapAlloc {
  template <typename... Args>
  T* acquire(Args&&... args) {
    if (R2D_HOOK_POINT(kHeapAlloc)) [[unlikely]] throw std::bad_alloc{};
    return new T{std::forward<Args>(args)...};
  }
  void release(T* obj) { delete obj; }
  std::size_t slot_hwm() const { return 0; }  ///< stateless: no slots
};

/// Pool-backed policy with per-thread magazines.
//
// Each thread claims a cache-line-sized slot per instance (the reclaimers'
// claim_slot machinery: at most R2D_MAX_SLOTS distinct threads per
// instance — SlotsExhausted past that — cached through a thread-local
// ring). A slot owns up to two magazines — a
// working LIFO chain plus one full spare (Bonwick's two-magazine scheme),
// so alternating acquire/release never oscillates against the shared
// depot. Overflowing magazines are flushed whole — one tagged CAS splices
// the entire batch onto a depot shard; refills pop a full batch the same
// way. Blocks come from (and are finally freed by) the embedded
// reclaim::Pool's slabs, so nothing is lost when a thread dies with a
// populated magazine.
//
// Magazine size: R2D_MAGAZINE (default 32 blocks ≈ 2 KiB of cache-line
// blocks), read once per instance.
template <typename T>
class PoolAlloc : private detail::Lessor {
  static constexpr std::size_t kDepotShards = 8;
  static constexpr std::uint64_t kPtrMask = (std::uint64_t{1} << 48) - 1;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> owner{0};  // for detail::claim_slot
    // Owned exclusively by the claiming thread:
    void* mag = nullptr;      ///< working magazine: LIFO chain of blocks
    unsigned count = 0;       ///< blocks in `mag`
    void* spare = nullptr;    ///< full magazine of exactly mag_size_ blocks
  };

  struct alignas(64) DepotShard {
    /// Tagged head of a stack of *full magazines*, linked through the
    /// first block's second chain word.
    std::atomic<std::uint64_t> head{0};
  };

 public:
  PoolAlloc() { detail::ChurnRegistry::get().add_lessor(id_, this); }
  PoolAlloc(const PoolAlloc&) = delete;
  PoolAlloc& operator=(const PoolAlloc&) = delete;

  ~PoolAlloc() {
    // Unregister first so no thread-exit walk can race teardown. The rest
    // is trivial: magazines and depots hold only interior pointers into
    // pool_'s slabs, which pool_'s destructor frees wholesale.
    detail::ChurnRegistry::get().remove_lessor(id_);
  }

  /// Highest slot index ever claimed — the churn harness's bounded-lease
  /// gauge (EXPERIMENTS.md E15).
  std::size_t slot_hwm() const { return hwm_.load(std::memory_order_acquire); }

  template <typename... Args>
  T* acquire(Args&&... args) {
    void* block = take_block(local_slot());
    return ::new (block) T{std::forward<Args>(args)...};
  }

  void release(T* obj) {
    obj->~T();
    put_block(local_slot(), obj);
  }

  unsigned magazine_size() const { return mag_size_; }

 private:
  /// Release the slot `token` holds on this instance (thread-exit walk or
  /// post-abandon race, arbitrated by the owner CAS).
  void release_thread(std::uint64_t token) noexcept override {
    const std::size_t n = hwm_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      if (slots_[i].owner.load(std::memory_order_relaxed) != token) continue;
      if (detail::acquire_for_cleanse(slots_[i], token)) {
        obs::count<obs::Counter::kSlotExitReleases>();
        flush_slot(slots_[i]);
        slots_[i].owner.store(0, std::memory_order_release);
      }
      return;
    }
  }

  /// Flush both magazines so no block is stranded in a parked slot: the
  /// spare (always exactly full) splices onto the depot in one CAS; the
  /// working magazine is partial, and the depot's refill math assumes full
  /// batches, so its blocks drain to the pool's free lists one by one.
  /// Caller holds the arbitration CAS.
  void flush_slot(Slot& s) {
    if (s.spare != nullptr) {
      depot_push(&s, s.spare);
      s.spare = nullptr;
    }
    void* block = s.mag;
    while (block != nullptr) {
      void* next = Pool<T>::chain_next(block).load(std::memory_order_relaxed);
      pool_.free_block(block);
      block = next;
    }
    s.mag = nullptr;
    s.count = 0;
  }

  void* take_block(Slot* s) {
    // Forced magazine miss: go straight to the slab layer WITHOUT
    // touching the magazines (bypassing a populated magazine into the
    // depot-refill path would clobber `mag` and leak its chain).
    if (R2D_HOOK_POINT(kMagazineTake)) [[unlikely]] {
      return pool_.alloc_block();
    }
    void* block = s->mag;
    if (block != nullptr) [[likely]] {
      s->mag = Pool<T>::chain_next(block).load(std::memory_order_relaxed);
      --s->count;
      return block;
    }
    if (s->spare != nullptr) {
      block = s->spare;
      s->spare = nullptr;
      s->mag = Pool<T>::chain_next(block).load(std::memory_order_relaxed);
      s->count = mag_size_ - 1;
      return block;
    }
    // Forced depot miss: both magazines are empty here, so skipping the
    // scan safely lands on the slab path.
    if (R2D_HOOK_POINT(kDepotPop)) [[unlikely]] {
      return pool_.alloc_block();
    }
    if ((block = depot_pop(s)) != nullptr) {
      s->mag = Pool<T>::chain_next(block).load(std::memory_order_relaxed);
      s->count = mag_size_ - 1;
      return block;
    }
    return pool_.alloc_block();
  }

  void put_block(Slot* s, void* block) {
    if (s->count == mag_size_) [[unlikely]] {
      // Working magazine full: park it as the spare, or flush the
      // previous spare to the depot (one CAS moves the whole batch).
      if (s->spare == nullptr) {
        s->spare = s->mag;
      } else {
        depot_push(s, s->spare);
        s->spare = s->mag;
      }
      s->mag = nullptr;
      s->count = 0;
    }
    Pool<T>::chain_next(block).store(s->mag, std::memory_order_relaxed);
    s->mag = block;
    ++s->count;
  }

  /// Splice one full magazine onto this thread's depot shard: a single
  /// tagged CAS, independent of the batch size.
  void depot_push(Slot* s, void* mag_head) {
    obs::count<obs::Counter::kMagFlushes>();
    DepotShard& d = depot_[depot_index(s)];
    std::uint64_t head = d.head.load(std::memory_order_relaxed);
    while (true) {
      Pool<T>::chain_next2(mag_head).store(
          reinterpret_cast<void*>(head & kPtrMask),
          std::memory_order_relaxed);
      const std::uint64_t packed =
          (reinterpret_cast<std::uint64_t>(mag_head) & kPtrMask) |
          (((head >> 48) + 1) << 48);
      if (d.head.compare_exchange_weak(head, packed,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
        return;
      }
      obs::count<obs::Counter::kDepotCasRetries>();
    }
  }

  /// Pop one full magazine, scanning from this thread's shard. The
  /// chain_next2 read before the CAS may observe a stale magazine under
  /// concurrent pop-and-reuse; the tag then fails the CAS (the chain word
  /// is a constructed atomic in slab memory — see reclaim/pool.hpp).
  void* depot_pop(Slot* s) {
    const std::size_t start = depot_index(s);
    for (std::size_t k = 0; k < kDepotShards; ++k) {
      DepotShard& d = depot_[(start + k) % kDepotShards];
      std::uint64_t head = d.head.load(std::memory_order_acquire);
      while (true) {
        void* mag = reinterpret_cast<void*>(head & kPtrMask);
        if (mag == nullptr) break;
        const std::uint64_t next =
            (reinterpret_cast<std::uint64_t>(
                 Pool<T>::chain_next2(mag).load(std::memory_order_relaxed)) &
             kPtrMask) |
            (((head >> 48) + 1) << 48);
        if (d.head.compare_exchange_weak(head, next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          obs::count<obs::Counter::kMagRefills>();
          return mag;
        }
        obs::count<obs::Counter::kDepotCasRetries>();
      }
    }
    return nullptr;
  }

  std::size_t depot_index(Slot* s) const {
    return static_cast<std::size_t>(s - slots_.get()) % kDepotShards;
  }

  Slot* local_slot() {
    thread_local detail::SlotCache<Slot> cache;
    Slot* s = cache.lookup(id_, detail::thread_token());
    if (s == nullptr) {
      s = detail::claim_slot(
          slots_.get(), max_slots_, hwm_, id_,
          static_cast<detail::Lessor*>(this),
          [](const Slot&) {
            // Magazines hold no in-flight state — a dead owner's slot is
            // always quiesced; its blocks flow back through flush_slot.
            return true;
          },
          [this](Slot& slot) {
            obs::count<obs::Counter::kSlotSteals>();
            flush_slot(slot);
          });
      cache.insert(id_, s);
    }
    return s;
  }

  static unsigned magazine_size_from_env() {
    const std::uint64_t raw = util::env_u64("R2D_MAGAZINE", 32);
    return static_cast<unsigned>(raw < 1 ? 1 : (raw > 4096 ? 4096 : raw));
  }

  const std::uint64_t id_ = detail::next_instance_id();
  const unsigned mag_size_ = magazine_size_from_env();
  // R2D_MAX_SLOTS, read once per process; declared before slots_ (which
  // it sizes). claim_slot throws SlotsExhausted past this many threads.
  const std::size_t max_slots_ = detail::max_slots();
  Pool<T> pool_;
  DepotShard depot_[kDepotShards];
  std::atomic<std::size_t> hwm_{0};
  std::unique_ptr<Slot[]> slots_{new Slot[max_slots_]};
};

}  // namespace r2d::reclaim
