// Asymmetric store-load fencing for epoch reclamation (folly-style).
//
// EpochReclaimer::pin() must order its epoch announcement (a store) before
// the critical section's pointer loads — a store-load ordering that
// normally costs a seq_cst fence on *every* operation. With
// membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED) that cost moves to the rare
// epoch-advance side: the advancer's syscall executes a full memory
// barrier on every CPU currently running a thread of this process, which
// pairs with a compiler-only barrier on the pin side. Either every
// thread's (announce; load) pair is fully ordered at the advancer's
// barrier point, or the announcement is already visible to the advancer's
// slot scan — exactly what the symmetric fence guaranteed.
//
// Registration (MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED) happens once,
// lazily, on the first mode query. Kernels without membarrier (< 4.14,
// or non-Linux) and the R2D_MEMBARRIER=0 knob fall back to the symmetric
// per-pin fence; the knob is re-read per reclaimer construction so tests
// can exercise both paths in one process.
#pragma once

#include <atomic>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "util/env.hpp"

namespace r2d::reclaim::detail {

#if defined(__linux__) && defined(SYS_membarrier)
// Command values from <linux/membarrier.h>, inlined so old userspace
// headers still compile; the runtime query handles old kernels.
inline constexpr long kMembarrierCmdQuery = 0;
inline constexpr long kMembarrierCmdPrivateExpedited = 1 << 3;
inline constexpr long kMembarrierCmdRegisterPrivateExpedited = 1 << 4;

/// Kernel support probe + one-time process registration.
inline bool membarrier_supported() {
  static const bool supported = [] {
    const long cmds = ::syscall(SYS_membarrier, kMembarrierCmdQuery, 0, 0);
    if (cmds < 0 || (cmds & kMembarrierCmdPrivateExpedited) == 0 ||
        (cmds & kMembarrierCmdRegisterPrivateExpedited) == 0) {
      return false;
    }
    return ::syscall(SYS_membarrier, kMembarrierCmdRegisterPrivateExpedited,
                     0, 0) == 0;
  }();
  return supported;
}

/// The heavy half: a full barrier on every CPU running this process.
inline void membarrier_heavy() {
  ::syscall(SYS_membarrier, kMembarrierCmdPrivateExpedited, 0, 0);
}
#else
inline bool membarrier_supported() { return false; }
inline void membarrier_heavy() {}
#endif

/// Whether asymmetric fencing is active: kernel support AND the
/// R2D_MEMBARRIER knob (default on; 0 forces the symmetric fallback).
inline bool use_membarrier() {
  return util::env_u64("R2D_MEMBARRIER", 1) != 0 && membarrier_supported();
}

/// Fast-side half of the pair: compiler-only when the heavy side uses
/// membarrier, a real seq_cst fence otherwise.
inline void asymmetric_light_fence(bool membarrier_active) {
  if (membarrier_active) {
    std::atomic_signal_fence(std::memory_order_seq_cst);
  } else {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
}

/// Slow-side half, issued before scanning announcement slots.
inline void asymmetric_heavy_fence(bool membarrier_active) {
  if (membarrier_active) {
    membarrier_heavy();
  } else {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
}

}  // namespace r2d::reclaim::detail
