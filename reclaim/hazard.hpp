// HazardReclaimer: classic hazard pointers (Michael 2004).
//
// protect() publishes the pointer with a sequentially-consistent store and
// re-validates the source — the per-dereference cost the E7 ablation
// measures against EBR's per-operation cost. retire() batches nodes per
// thread; once a batch reaches kScanThreshold the thread scans all
// published hazards and frees every non-hazardous node.
//
// Policy contract: see reclaim/leaky.hpp. Bounded garbage: at most
// kScanThreshold + (#threads * kMaxProtected) nodes per thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sched/hook.hpp"
#include "obs/metrics.hpp"
#include "reclaim/slot_registry.hpp"

namespace r2d::reclaim {

class HazardReclaimer : private detail::Lessor {
  static constexpr std::size_t kScanThreshold = 128;

  struct Retired {
    void* node;
    void* ctx;  ///< owning allocator (nullptr: plain delete)
    void (*destroy)(void*, void*);
  };

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> owner{0};
    std::atomic<void*> hazard[4] = {};
    // Owned exclusively by the claiming thread:
    std::vector<Retired> retired;
  };

 public:
  static constexpr unsigned kMaxProtected = 4;

  HazardReclaimer() {
    detail::ChurnRegistry::get().add_lessor(id_, this);
  }
  HazardReclaimer(const HazardReclaimer&) = delete;
  HazardReclaimer& operator=(const HazardReclaimer&) = delete;

  ~HazardReclaimer() {
    // Unregister first so no thread-exit walk can race teardown.
    detail::ChurnRegistry::get().remove_lessor(id_);
    const std::size_t n = hwm_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      for (const Retired& r : slots_[i].retired) destroy_retired(r);
      slots_[i].retired.clear();
    }
    // Orphans from exited threads that no scan adopted: destruction is
    // quiesced by contract, so no hazard can still protect them.
    for (const Retired& r : orphans_) destroy_retired(r);
    orphans_.clear();
  }

  /// Highest slot index ever claimed — the churn harness's bounded-lease
  /// gauge (EXPERIMENTS.md E15).
  std::size_t slot_hwm() const { return hwm_.load(std::memory_order_acquire); }

  class Guard {
   public:
    Guard(HazardReclaimer* r, Slot* s) : r_(r), s_(s) {}
    Guard(Guard&& o) noexcept : r_(o.r_), s_(o.s_) { o.s_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;

    ~Guard() {
      if (s_ == nullptr) return;
      for (auto& h : s_->hazard) h.store(nullptr, std::memory_order_release);
    }

    template <typename T>
    T* protect(const std::atomic<T*>& src, unsigned slot = 0) {
      T* p = src.load(std::memory_order_acquire);
      while (true) {
        s_->hazard[slot].store(p, std::memory_order_seq_cst);
        T* q = src.load(std::memory_order_acquire);
        if (q == p) return p;
        p = q;
      }
    }

    /// Safe load of a packed head word: publishes the node pointer
    /// `unpack` extracts from it as the hazard, with the usual
    /// publish-and-revalidate loop on the whole word.
    template <typename Unpack>
    std::uint64_t protect_word(const std::atomic<std::uint64_t>& src,
                               Unpack unpack, unsigned slot = 0) {
      std::uint64_t w = src.load(std::memory_order_acquire);
      while (true) {
        s_->hazard[slot].store(unpack(w), std::memory_order_seq_cst);
        const std::uint64_t w2 = src.load(std::memory_order_acquire);
        if (w2 == w) return w;
        w = w2;
      }
    }

    /// Safe snapshot of a two-word (16-byte) head: `load` returns the word
    /// pair (already internally consistent — e.g. core::dwcas_snapshot),
    /// `unpack` the two node pointers to shield. Publishes both into
    /// slots first_slot / first_slot + 1 and revalidates the pair, the
    /// protect_word loop widened to two words. Tags inside the words make
    /// "unchanged" mean "no successful CAS in between", so both pointers
    /// are still reachable from the head when the loop exits.
    template <typename Load, typename Unpack>
    auto protect_pair(Load&& load, Unpack&& unpack, unsigned first_slot = 0) {
      auto w = load();
      while (true) {
        const auto ptrs = unpack(w);
        s_->hazard[first_slot].store(ptrs.first, std::memory_order_seq_cst);
        s_->hazard[first_slot + 1].store(ptrs.second,
                                         std::memory_order_seq_cst);
        const auto w2 = load();
        if (w2 == w) return w;
        w = w2;
      }
    }

    /// Publish one extra raw pointer (e.g. the old end node a deque
    /// stabilization bridges, or a freshly pushed node a helper may pop
    /// before its owner stabilizes). The caller must revalidate that the
    /// node is still reachable after publication before dereferencing —
    /// publication alone cannot shield memory that was already freed.
    void protect_raw(void* node, unsigned slot) {
      s_->hazard[slot].store(node, std::memory_order_seq_cst);
    }

    template <typename T>
    void retire(T* node) {
      r_->retire_at(s_, node, nullptr,
                    [](void* p, void*) { delete static_cast<T*>(p); });
    }

    /// Retire a node owned by an allocator policy: the deferred free
    /// returns the block to `alloc` (which must outlive this reclaimer)
    /// instead of heap-deleting it.
    template <typename T, typename Alloc>
    void retire(T* node, Alloc& alloc) {
      r_->retire_at(s_, node, &alloc, [](void* p, void* a) {
        static_cast<Alloc*>(a)->release(static_cast<T*>(p));
      });
    }

   private:
    HazardReclaimer* r_;
    Slot* s_;
  };

  Guard pin() {
    obs::count<obs::Counter::kHazardPins>();
    return Guard(this, local_slot());
  }

 private:
  /// Release the slot `token` holds on this instance (thread-exit walk or
  /// post-abandon race, arbitrated by the owner CAS).
  void release_thread(std::uint64_t token) noexcept override {
    const std::size_t n = hwm_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      if (slots_[i].owner.load(std::memory_order_relaxed) != token) continue;
      if (detail::acquire_for_cleanse(slots_[i], token)) {
        obs::count<obs::Counter::kSlotExitReleases>();
        cleanse_slot(slots_[i]);
        slots_[i].owner.store(0, std::memory_order_release);
      }
      return;
    }
  }

  /// Null the slot's protections and move its retirees to the orphan
  /// list; the next scan adopts them (re-checking live hazards before any
  /// free, as for its own retirees). Caller holds the arbitration CAS.
  void cleanse_slot(Slot& s) noexcept {
    for (auto& h : s.hazard) h.store(nullptr, std::memory_order_release);
    if (!s.retired.empty()) {
      std::lock_guard<std::mutex> lock(orphan_mu_);
      // Runs on the noexcept exit walk: reach capacity before moving
      // anything; if even that fails, leak the retirees visibly rather
      // than terminate (DESIGN.md §15).
      try {
        orphans_.reserve(orphans_.size() + s.retired.size());
        orphans_.insert(orphans_.end(), s.retired.begin(), s.retired.end());
      } catch (const std::bad_alloc&) {
        obs::count<obs::Counter::kRetireLeaks>(s.retired.size());
      }
      s.retired.clear();
      orphan_count_.store(orphans_.size(), std::memory_order_release);
    }
  }

  /// Destroy one retiree, absorbing resource failure: a pooled release
  /// can throw SlotsExhausted after the node's destructor has run —
  /// leak the block and keep going (DESIGN.md §15), counted.
  static void destroy_retired(const Retired& r) noexcept {
    try {
      r.destroy(r.node, r.ctx);
    } catch (...) {
      obs::count<obs::Counter::kRetireLeaks>();
    }
  }

  /// Never lets a resource exception escape: called after a pop has
  /// linearized, so a throw here would lose a delivered element.
  void retire_at(Slot* s, void* node, void* ctx,
                 void (*destroy)(void*, void*)) noexcept {
    try {
      s->retired.push_back(Retired{node, ctx, destroy});
    } catch (const std::bad_alloc&) {
      obs::count<obs::Counter::kRetireLeaks>();
      return;
    }
    if (s->retired.size() >= kScanThreshold) scan(s);
  }

  void scan(Slot* s) noexcept {
    // Injected deferral: a skipped scan only delays frees; the retired
    // list keeps growing until a later scan succeeds — exactly the
    // real-bad_alloc fallback below.
    if (R2D_HOOK_POINT(kHazardScan)) [[unlikely]] return;
    obs::count<obs::Counter::kHazardScans>();
    // Adopt orphaned retirees first: they get the same hazard re-check as
    // our own, so a node a live thread still protects survives the scan.
    if (orphan_count_.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> lock(orphan_mu_);
      if (!orphans_.empty()) {
        bool adopted = true;
        try {
          s->retired.reserve(s->retired.size() + orphans_.size());
        } catch (const std::bad_alloc&) {
          adopted = false;  // skip adoption; orphans stay queued
        }
        if (adopted) {
          obs::count<obs::Counter::kHazardOrphansAdopted>(orphans_.size());
          s->retired.insert(s->retired.end(), orphans_.begin(),
                            orphans_.end());
          orphans_.clear();
          orphan_count_.store(0, std::memory_order_release);
        }
      }
    }
    std::vector<void*> hazards;
    std::vector<Retired> keep;
    const std::size_t n = hwm_.load(std::memory_order_acquire);
    try {
      hazards.reserve(n * kMaxProtected);
      keep.reserve(s->retired.size());
    } catch (const std::bad_alloc&) {
      return;  // defer the whole scan; retirees stay parked in the slot
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (const auto& h : slots_[i].hazard) {
        void* p = h.load(std::memory_order_seq_cst);
        if (p != nullptr) hazards.push_back(p);
      }
    }
    std::sort(hazards.begin(), hazards.end());
    for (const Retired& r : s->retired) {
      if (std::binary_search(hazards.begin(), hazards.end(), r.node)) {
        keep.push_back(r);
      } else {
        destroy_retired(r);
      }
    }
    s->retired.swap(keep);
  }

  Slot* local_slot() {
    thread_local detail::SlotCache<Slot> cache;
    Slot* s = cache.lookup(id_, detail::thread_token());
    if (s == nullptr) {
      s = detail::claim_slot(
          slots_.get(), max_slots_, hwm_, id_,
          static_cast<detail::Lessor*>(this),
          [](const Slot& slot) {
            // Quiesced = no protection published: a thread that died
            // mid-protect leaks its slot rather than risking a freed node
            // it still shields.
            for (const auto& h : slot.hazard) {
              if (h.load(std::memory_order_acquire) != nullptr) return false;
            }
            return true;
          },
          [this](Slot& slot) {
            obs::count<obs::Counter::kSlotSteals>();
            cleanse_slot(slot);
          });
      cache.insert(id_, s);
    }
    return s;
  }

  const std::uint64_t id_ = detail::next_instance_id();
  // R2D_MAX_SLOTS, read once per process; declared before slots_ (which
  // it sizes). claim_slot throws SlotsExhausted past this many threads.
  const std::size_t max_slots_ = detail::max_slots();
  std::atomic<std::size_t> hwm_{0};
  std::unique_ptr<Slot[]> slots_{new Slot[max_slots_]};
  // Retirees handed over by exited threads, adopted by the next scan.
  std::mutex orphan_mu_;
  std::vector<Retired> orphans_;
  std::atomic<std::size_t> orphan_count_{0};
};

}  // namespace r2d::reclaim
