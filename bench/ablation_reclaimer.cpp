// E7: reclamation-scheme ablation — EBR (default) vs hazard pointers vs
// leak-only, on the 2D-stack and the Treiber baseline.
//
// Hazard pointers pay a sequentially-consistent publish per protected
// dereference (every pop); epochs pay two plain stores per operation and
// amortised advancement scans; leaky pays nothing and leaks. The gap
// between leaky and the others is the total cost of safe reclamation.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/crash_trace.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/leaky.hpp"

namespace {

using namespace r2d::bench;

template <template <typename, typename, template <typename> class> class
              StackT,
          typename Reclaimer>
Point measure_stack(const r2d::harness::Workload& w, unsigned repeats,
                    std::size_t width) {
  using Stack = StackT<Label, Reclaimer, r2d::reclaim::HeapAlloc>;
  return measure_with<Stack>(
      [width] {
        if constexpr (std::is_constructible_v<Stack, r2d::core::TwoDParams>) {
          r2d::core::TwoDParams p;
          p.width = width;
          p.depth = 8;
          p.shift = 4;
          return std::make_unique<Stack>(p);
        } else {
          return std::make_unique<Stack>();
        }
      },
      w, repeats);
}

}  // namespace

int main() {
  r2d::util::install_crash_tracer();
  const BenchEnv env = BenchEnv::load();

  r2d::util::Table table(
      {"stack", "reclaimer", "threads", "mops", "stddev"});
  std::cout << "=== E7: reclamation ablation ===\n";
  for (unsigned threads : {1u, 4u, 8u, 16u}) {
    if (threads > env.max_threads) continue;
    const auto w = env.workload(threads);
    const std::size_t width = 4 * threads;

    struct Row {
      const char* stack;
      const char* reclaimer;
      Point p;
    };
    std::vector<Row> rows;
    rows.push_back({"2D-stack", "epoch",
                    measure_stack<r2d::TwoDStack, r2d::reclaim::EpochReclaimer>(
                        w, env.repeats, width)});
    rows.push_back(
        {"2D-stack", "hazard",
         measure_stack<r2d::TwoDStack, r2d::reclaim::HazardReclaimer>(
             w, env.repeats, width)});
    rows.push_back(
        {"2D-stack", "leaky",
         measure_stack<r2d::TwoDStack, r2d::reclaim::LeakyReclaimer>(
             w, env.repeats, width)});
    rows.push_back(
        {"treiber", "epoch",
         measure_stack<r2d::stacks::TreiberStack,
                       r2d::reclaim::EpochReclaimer>(w, env.repeats, width)});
    rows.push_back(
        {"treiber", "hazard",
         measure_stack<r2d::stacks::TreiberStack,
                       r2d::reclaim::HazardReclaimer>(w, env.repeats, width)});
    for (const auto& row : rows) {
      table.add_row({row.stack, row.reclaimer, std::to_string(threads),
                     r2d::util::Table::num(row.p.mops),
                     r2d::util::Table::num(row.p.mops_stddev)});
    }
  }
  emit(table, env, "ablation_reclaimer");
  return 0;
}
