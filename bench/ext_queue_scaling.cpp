// EXT: 2D-Queue scaling — evidence for the paper's future-work claim.
//
// The conclusion promises the 2D design "generalizes ... to other
// concurrent data structures". This bench measures the 2D-Queue against
// its own width-1 configuration — which degenerates to a plain
// Michael-Scott queue with a strict FIFO window — over the thread sweep,
// plus the measured FIFO error distance. The stack's Figure-2 shape
// (strict collapses, windowed relaxation scales, error stays bounded)
// should transfer.
#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>
#include <memory>
#include <string>

#include "common.hpp"
#include "core/two_d_queue.hpp"
#include "util/crash_trace.hpp"

namespace {

using namespace r2d::bench;

/// Adapter: expose the queue through the push/pop shape the harness drives.
template <typename Queue>
struct AsStack {
  using value_type = typename Queue::value_type;
  Queue queue;

  explicit AsStack(r2d::core::TwoDParams p) : queue(std::move(p)) {}
  void push(value_type v) { queue.enqueue(std::move(v)); }
  std::optional<value_type> pop() { return queue.dequeue(); }
  bool empty() const { return queue.empty(); }
  std::uint64_t approx_size() const { return queue.approx_size(); }
};

r2d::core::TwoDParams queue_params(std::size_t width) {
  r2d::core::TwoDParams p;
  p.width = width;
  p.depth = 16;
  p.shift = 8;
  return p;
}

/// Queue quality must be measured against FIFO order (the stack harness's
/// oracle is LIFO), so this bench runs its own instrumented quality pass.
r2d::harness::QualityResult run_queue_quality(r2d::core::TwoDParams params,
                                              const r2d::harness::Workload& w) {
  r2d::TwoDQueue<Label> queue(params);
  r2d::quality::InstrumentedQueue<r2d::TwoDQueue<Label>> instrumented(queue);
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};
  std::barrier sync(static_cast<std::ptrdiff_t>(w.threads) + 1);
  for (unsigned t = 0; t < w.threads; ++t) {
    workers.emplace_back([&, t] {
      if (w.pin_threads) r2d::util::pin_worker(t);
      r2d::harness::LabelSequence labels(t);
      const std::uint64_t share =
          w.prefill / w.threads + (t < w.prefill % w.threads ? 1 : 0);
      for (std::uint64_t i = 0; i < share; ++i) instrumented.enqueue(labels());
      sync.arrive_and_wait();
      sync.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        if (r2d::harness::choose_push(w.push_ratio)) {
          instrumented.enqueue(labels());
        } else {
          instrumented.dequeue();
        }
      }
    });
  }
  sync.arrive_and_wait();
  sync.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(w.duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
  r2d::harness::QualityResult q;
  q.mean_error = instrumented.errors().mean();
  q.max_error = instrumented.errors().max();
  q.samples = instrumented.errors().count();
  q.unknown_labels = instrumented.unknown_labels();
  return q;
}

}  // namespace

int main() {
  r2d::util::install_crash_tracer();
  const BenchEnv env = BenchEnv::load();
  r2d::util::Table table({"threads", "config", "mops", "stddev", "mean_err",
                          "max_err"});
  std::cout << "=== EXT: 2D-Queue scaling (width 1 == strict MS queue) ===\n";
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    if (threads > env.max_threads) continue;
    const auto w = env.workload(threads);
    struct Config {
      const char* name;
      std::size_t width;
    };
    for (const Config cfg : {Config{"ms-queue (w=1)", 1},
                             Config{"2D-queue (w=4P)", 4 * threads}}) {
      const auto params = queue_params(cfg.width);
      std::vector<double> mops;
      for (unsigned rep = 0; rep < env.repeats; ++rep) {
        AsStack<r2d::TwoDQueue<Label>> adapter(params);
        mops.push_back(r2d::harness::run_throughput(adapter, w).mops);
      }
      const auto summary = r2d::util::summarize(std::move(mops));
      const auto quality = run_queue_quality(params, w);
      table.add_row({std::to_string(threads), cfg.name,
                     r2d::util::Table::num(summary.mean),
                     r2d::util::Table::num(summary.stddev),
                     r2d::util::Table::num(quality.mean_error),
                     r2d::util::Table::num(quality.max_error, 0)});
    }
  }
  emit(table, env, "ext_queue_scaling");
  return 0;
}
