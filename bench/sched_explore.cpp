// Deterministic-schedule exploration sweep (DESIGN.md §16): seeds x
// policies x {stack, queue, deque, bag} under the sched/ cooperative
// scheduler, reporting how much interleaving space each policy covers
// and whether any schedule violated its oracle — linearizability for
// the strict width-1 queue, the Theorem-1 k bound for the 2D-stack,
// the per-end bound for the 2D-deque, conservation for the 2D-bag.
//
// Each (structure, policy) cell runs R2D_SCHED_SWEEP_SEEDS seeded
// schedules and accumulates scheduling steps, oracle violations
// ("bugs" — expected 0 on a clean library) and perturbed runs (budget
// blowouts / escape-hatch firings — also expected 0 at these sizes).
// Any bug prints the one-line reproducer so the schedule replays
// bit-identically in tests/test_sched.
//
// Requires -DR2D_SCHED=1 to explore anything; in the default build the
// bench still compiles, reports the scheduler as compiled out, and
// writes an empty (but well-formed) BENCH_sched.json so the points file
// never goes stale silently.
//
// Knobs: R2D_SCHED_SWEEP_SEEDS (seeds per cell, default 16),
// R2D_BENCH_JSON (emit BENCH_sched.json).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/two_d_bag.hpp"
#include "core/two_d_deque.hpp"
#include "core/two_d_queue.hpp"
#include "core/two_d_stack.hpp"
#include "harness/quality.hpp"
#include "sched/dst.hpp"
#include "sched/history.hpp"
#include "util/table.hpp"

namespace {

using r2d::sched::History;
using r2d::sched::Op;
using r2d::sched::OpKind;
using r2d::sched::Semantics;

/// One scheduled run's verdict.
struct Outcome {
  std::uint64_t steps = 0;
  bool bug = false;
  bool perturbed = false;
};

/// One (structure, policy) sweep cell.
struct Cell {
  std::string structure;
  std::string policy;
  std::uint64_t schedules = 0;
  std::uint64_t steps = 0;
  std::uint64_t bugs = 0;
  std::uint64_t perturbed = 0;
};

/// Run `body(tid)` on `threads` threads under (spec, seed) and collect
/// the scheduler-side outcome; the caller layers the oracle verdict on.
template <typename Body>
Outcome run_schedule(const std::string& spec, std::uint64_t seed,
                     unsigned threads, Body&& body) {
  auto& sched = r2d::sched::Scheduler::get();
  sched.configure(spec, seed, 0);
  std::vector<std::function<void()>> bodies;
  for (unsigned t = 0; t < threads; ++t) {
    bodies.push_back([t, &body] { body(t); });
  }
  Outcome outcome;
  outcome.steps = sched.run(std::move(bodies));
  outcome.perturbed = sched.perturbed();
  return outcome;
}

Outcome explore_stack(const std::string& spec, std::uint64_t seed) {
  const r2d::core::TwoDParams params{4, 4, 2};
  r2d::TwoDStack<std::uint64_t> stack(params);
  History h(3);
  Outcome outcome = run_schedule(spec, seed, 3, [&](unsigned tid) {
    for (unsigned i = 0; i < 6; ++i) {
      const std::uint64_t v = tid * 1000 + i + 1;
      const auto inv = h.stamp();
      stack.push(v);
      h.push(tid, v, true, inv, h.stamp());
    }
    for (unsigned i = 0; i < 6; ++i) {
      const auto inv = h.stamp();
      const auto v = stack.pop();
      h.pop(tid, v, inv, h.stamp());
    }
  });
  const auto replayed = r2d::quality::replay(
      r2d::sched::to_quality_events(h.merged()), r2d::quality::Order::kLifo);
  outcome.bug = replayed.unknown_labels != 0 ||
                replayed.errors.max() > static_cast<double>(params.k_bound());
  return outcome;
}

Outcome explore_queue(const std::string& spec, std::uint64_t seed) {
  // Width 1 => strict FIFO (k_bound 0): every schedule must linearize.
  r2d::TwoDQueue<std::uint64_t> queue(r2d::core::TwoDParams{1, 4, 1});
  History h(3);
  Outcome outcome = run_schedule(spec, seed, 3, [&](unsigned tid) {
    for (unsigned i = 0; i < 2; ++i) {
      const std::uint64_t v = tid * 1000 + i + 1;
      const auto inv = h.stamp();
      queue.enqueue(v);
      h.push(tid, v, true, inv, h.stamp());
    }
    for (unsigned i = 0; i < 2; ++i) {
      const auto inv = h.stamp();
      const auto v = queue.dequeue();
      h.pop(tid, v, inv, h.stamp());
    }
  });
  outcome.bug = !r2d::sched::linearizable(h.merged(), Semantics::kFifo);
  return outcome;
}

Outcome explore_deque(const std::string& spec, std::uint64_t seed) {
  const r2d::core::TwoDParams params{4, 4, 2};
  r2d::TwoDDeque<std::uint64_t> deque(params);
  History h(4);
  Outcome outcome = run_schedule(spec, seed, 4, [&](unsigned tid) {
    const bool front = (tid % 2) == 0;
    for (unsigned i = 0; i < 5; ++i) {
      const std::uint64_t v = tid * 1000 + i + 1;
      const auto inv = h.stamp();
      if (front) {
        deque.push_front(v);
      } else {
        deque.push_back(v);
      }
      h.push(tid, v, true, inv, h.stamp(), front);
    }
    for (unsigned i = 0; i < 5; ++i) {
      const auto inv = h.stamp();
      const auto v = front ? deque.pop_front() : deque.pop_back();
      h.pop(tid, v, inv, h.stamp(), front);
    }
  });
  const auto replayed = r2d::quality::replay(
      r2d::sched::to_quality_events(h.merged()), r2d::quality::Order::kDeque);
  outcome.bug = replayed.unknown_labels != 0 ||
                replayed.errors.max() > static_cast<double>(params.k_bound());
  return outcome;
}

Outcome explore_bag(const std::string& spec, std::uint64_t seed) {
  r2d::TwoDBag<std::uint64_t> bag(r2d::core::TwoDParams{4, 4, 2});
  History h(3);
  Outcome outcome = run_schedule(spec, seed, 3, [&](unsigned tid) {
    for (unsigned i = 0; i < 8; ++i) {
      const std::uint64_t v = tid * 1000 + i + 1;
      const auto inv = h.stamp();
      bag.put(v);
      h.push(tid, v, true, inv, h.stamp());
    }
    for (unsigned i = 0; i < 4; ++i) {
      const auto inv = h.stamp();
      const auto v = bag.take();
      h.pop(tid, v, inv, h.stamp());
    }
  });
  std::map<std::uint64_t, int> balance;
  for (const Op& op : h.merged()) {
    if (!op.ok) continue;
    balance[op.value] += op.kind == OpKind::kPush ? 1 : -1;
  }
  while (auto v = bag.take()) balance[*v] -= 1;
  for (const auto& [value, count] : balance) {
    (void)value;
    if (count != 0) outcome.bug = true;
  }
  return outcome;
}

using Explorer = Outcome (*)(const std::string&, std::uint64_t);

void emit_sched_json(const std::vector<Cell>& cells) {
  const std::string path = r2d::util::env_str("R2D_BENCH_JSON", "");
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not write " << path << "\n";
    return;
  }
  out << "{\n";
  r2d::bench::write_provenance(out, "sched_explore");
  out << "  \"sched_compiled\": "
      << (r2d::sched::kCompiled ? "true" : "false") << ",\n"
      << "  \"points\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"structure\": \"" << c.structure
        << "\", \"policy\": \"" << c.policy
        << "\", \"schedules\": " << c.schedules << ", \"steps\": " << c.steps
        << ", \"bugs\": " << c.bugs << ", \"perturbed\": " << c.perturbed
        << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main() {
  std::vector<Cell> cells;
  if (!r2d::sched::kCompiled) {
    std::puts("sched_explore: scheduler compiled out (build with "
              "-DR2D_SCHED=1 to explore schedules)");
    emit_sched_json(cells);
    return 0;
  }

  const std::uint64_t seeds =
      r2d::util::env_u64("R2D_SCHED_SWEEP_SEEDS", 16);
  const std::vector<std::string> policies = {"random", "pct:1", "pct:3"};
  const std::vector<std::pair<std::string, Explorer>> suites = {
      {"2D-stack", &explore_stack},
      {"2D-queue", &explore_queue},
      {"2D-deque", &explore_deque},
      {"2D-bag", &explore_bag}};

  std::uint64_t total_schedules = 0;
  std::uint64_t total_bugs = 0;
  for (const auto& [structure, explore] : suites) {
    for (const std::string& policy : policies) {
      Cell cell;
      cell.structure = structure;
      cell.policy = policy;
      for (std::uint64_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 0x51ed5eed + s * 0x9e37;
        const Outcome outcome = explore(policy, seed);
        ++cell.schedules;
        cell.steps += outcome.steps;
        if (outcome.bug) {
          ++cell.bugs;
          std::fprintf(stderr,
                       "sched_explore: %s oracle violated; reproduce with: "
                       "%s\n",
                       structure.c_str(),
                       r2d::sched::Scheduler::get().reproducer().c_str());
        }
        if (outcome.perturbed) ++cell.perturbed;
      }
      total_schedules += cell.schedules;
      total_bugs += cell.bugs;
      cells.push_back(std::move(cell));
    }
  }

  r2d::util::Table table(
      {"structure", "policy", "schedules", "steps", "bugs", "perturbed"});
  for (const Cell& c : cells) {
    table.add_row({c.structure, c.policy, std::to_string(c.schedules),
                   std::to_string(c.steps), std::to_string(c.bugs),
                   std::to_string(c.perturbed)});
  }
  table.print();
  std::printf("sched_explore: %llu schedules, %llu bugs\n",
              static_cast<unsigned long long>(total_schedules),
              static_cast<unsigned long long>(total_bugs));
  emit_sched_json(cells);
  return total_bugs == 0 ? 0 : 1;
}
