// E3: per-operation microbenchmarks (google-benchmark) for every stack.
// Single-threaded push/pop cost isolates the constant factors (allocation,
// packed-head CAS, search) that the figure benches aggregate; the threaded
// variants show per-op degradation under contention.
//
// When R2D_BENCH_JSON is set, the per-structure items/s rates are also
// written as machine-readable JSON (see bench/common.hpp) — the perf
// trajectory scripts/ci.sh records as BENCH_micro.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gbench_common.hpp"
#include "core/two_d_stack.hpp"
#include "stacks/distributed_stack.hpp"
#include "stacks/elimination_stack.hpp"
#include "stacks/ksegment_stack.hpp"
#include "stacks/treiber_stack.hpp"

namespace {

using Label = std::uint64_t;

template <typename S>
std::unique_ptr<S> make_bench_stack(unsigned threads);

template <>
std::unique_ptr<r2d::stacks::TreiberStack<Label>> make_bench_stack(unsigned) {
  return std::make_unique<r2d::stacks::TreiberStack<Label>>();
}
template <>
std::unique_ptr<r2d::stacks::EliminationStack<Label>> make_bench_stack(
    unsigned threads) {
  r2d::stacks::EliminationParams p;
  p.collision_slots = std::max(1u, threads / 2);
  return std::make_unique<r2d::stacks::EliminationStack<Label>>(p);
}
template <>
std::unique_ptr<r2d::stacks::KSegmentStack<Label>> make_bench_stack(
    unsigned threads) {
  return std::make_unique<r2d::stacks::KSegmentStack<Label>>(
      std::max(8u, 4 * threads));
}
template <>
std::unique_ptr<r2d::stacks::RandomStack<Label>> make_bench_stack(
    unsigned threads) {
  return std::make_unique<r2d::stacks::RandomStack<Label>>(4 * threads);
}
template <>
std::unique_ptr<r2d::stacks::RandomC2Stack<Label>> make_bench_stack(
    unsigned threads) {
  return std::make_unique<r2d::stacks::RandomC2Stack<Label>>(4 * threads);
}
template <>
std::unique_ptr<r2d::stacks::KRobinStack<Label>> make_bench_stack(
    unsigned threads) {
  return std::make_unique<r2d::stacks::KRobinStack<Label>>(4 * threads);
}
template <>
std::unique_ptr<r2d::TwoDStack<Label>> make_bench_stack(unsigned threads) {
  r2d::core::TwoDParams p;
  p.width = 4 * std::max(1u, threads);
  p.depth = 8;
  p.shift = 4;
  return std::make_unique<r2d::TwoDStack<Label>>(p);
}

// Pool-policy A/B partners (reclaim/alloc.hpp): identical shapes on the
// PoolAlloc substrate, so the single/contended deltas against the heap
// rows price the allocation policy alone.
using TreiberPoolStack =
    r2d::stacks::TreiberStack<Label, r2d::reclaim::EpochReclaimer,
                              r2d::reclaim::PoolAlloc>;
using TwoDPoolStack = r2d::TwoDStack<Label, r2d::reclaim::EpochReclaimer,
                                     r2d::reclaim::PoolAlloc>;

template <>
std::unique_ptr<TreiberPoolStack> make_bench_stack(unsigned) {
  return std::make_unique<TreiberPoolStack>();
}
template <>
std::unique_ptr<TwoDPoolStack> make_bench_stack(unsigned threads) {
  r2d::core::TwoDParams p;
  p.width = 4 * std::max(1u, threads);
  p.depth = 8;
  p.shift = 4;
  return std::make_unique<TwoDPoolStack>(p);
}

/// Alternating push/pop on one thread: the uncontended round-trip cost.
template <typename S>
void BM_PushPopSingle(benchmark::State& state) {
  auto stack = make_bench_stack<S>(1);
  for (int i = 0; i < 64; ++i) stack->push(i);
  Label next = 1000;
  for (auto _ : state) {
    stack->push(next++);
    benchmark::DoNotOptimize(stack->pop());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

/// Same mix under benchmark-managed thread contention. The stack is shared
/// across threads (set up once by thread 0).
template <typename S>
void BM_PushPopContended(benchmark::State& state) {
  static std::unique_ptr<S> shared;
  if (state.thread_index() == 0) {
    shared = make_bench_stack<S>(static_cast<unsigned>(state.threads()));
    for (int i = 0; i < 4096; ++i) shared->push(i);
  }
  Label next = (static_cast<Label>(state.thread_index()) + 1) << 40;
  for (auto _ : state) {
    shared->push(next++);
    benchmark::DoNotOptimize(shared->pop());
  }
  state.SetItemsProcessed(state.iterations() * 2);
  if (state.thread_index() == 0) {
    state.SetLabel("threads=" + std::to_string(state.threads()));
  }
}

}  // namespace

#define R2D_MICRO(Type)                                                \
  BENCHMARK_TEMPLATE(BM_PushPopSingle, Type)->Name("single/" #Type);   \
  BENCHMARK_TEMPLATE(BM_PushPopContended, Type)                        \
      ->Name("contended/" #Type)                                       \
      ->Threads(4)                                                     \
      ->Threads(8)                                                     \
      ->UseRealTime();

using Treiber = r2d::stacks::TreiberStack<Label>;
using Elim = r2d::stacks::EliminationStack<Label>;
using KSeg = r2d::stacks::KSegmentStack<Label>;
using Rand = r2d::stacks::RandomStack<Label>;
using RandC2 = r2d::stacks::RandomC2Stack<Label>;
using KRobin = r2d::stacks::KRobinStack<Label>;
using TwoD = r2d::TwoDStack<Label>;
using TreiberPool = TreiberPoolStack;
using TwoDPool = TwoDPoolStack;

R2D_MICRO(Treiber)
R2D_MICRO(Elim)
R2D_MICRO(KSeg)
R2D_MICRO(Rand)
R2D_MICRO(RandC2)
R2D_MICRO(KRobin)
R2D_MICRO(TwoD)
R2D_MICRO(TreiberPool)
R2D_MICRO(TwoDPool)

int main(int argc, char** argv) {
  return r2d::bench::benchmark_main_with_json("micro_ops", argc, argv);
}
