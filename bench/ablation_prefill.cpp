// E11: prefill sensitivity.
//
// The paper initialises every stack with 32768 items "to avoid NULL returns
// that might arise from empty sub-stacks" (§4). This bench quantifies that
// choice: throughput and the empty-pop rate as the initial population
// shrinks toward zero. Near-empty relaxed stacks spend their time in the
// slow paths (full sweeps, down-shifts, segment unlinks), so the prefill is
// not cosmetic — it selects which regime the figures measure.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/crash_trace.hpp"

int main() {
  r2d::util::install_crash_tracer();
  using namespace r2d::bench;
  const BenchEnv env = BenchEnv::load();
  const unsigned threads = std::min(8u, env.max_threads);
  const std::vector<std::string> algos = {"treiber", "k-segment", "2D-stack"};

  r2d::util::Table table(
      {"prefill", "algorithm", "mops", "empty_pop_pct"});
  std::cout << "=== E11: prefill sensitivity, P = " << threads << " ===\n";
  for (const std::uint64_t prefill :
       {0ull, 256ull, 4096ull, 32768ull, 262144ull}) {
    for (const auto& algo : algos) {
      AlgoConfig cfg = fig2_config(algo, threads);
      auto w = env.workload(threads);
      w.prefill = prefill;
      const Point p = run_algorithm(cfg, w, env.repeats);
      // empty_pops accumulated over repeats; ops/sec * duration * repeats
      // approximates total ops for the percentage.
      const double total_ops =
          p.mops * 1e6 * (static_cast<double>(env.duration_ms) / 1000.0) *
          env.repeats;
      const double pct =
          total_ops > 0 ? 100.0 * static_cast<double>(p.empty_pops) / total_ops
                        : 0.0;
      table.add_row({std::to_string(prefill), algo,
                     r2d::util::Table::num(p.mops),
                     r2d::util::Table::num(pct, 1)});
    }
  }
  emit(table, env, "ablation_prefill");
  return 0;
}
