// The "million-user" open-loop dispatch scenario (EXPERIMENTS.md E14): the
// first bench in this repo where the load, not the structure, sets the
// pace. An arrival-rate-driven generator (harness/service/) offers tasks
// to a dispatch server whose run-queue is an r2d:: container, and the
// figure reports what a service owner would actually read off a dashboard:
// coordinated-omission-safe p50/p99/p999 response times against an SLO,
// the shed rate of the bounded admission queue, and the rank-error bound
// surfaced as admission-order unfairness (mean/max displacement).
//
// Sweep: scheduling core (2D-bag — the default, per the ROADMAP — then
// 2D-stack and 2D-queue) x arrival process (poisson, onoff) x offered
// load (0.5x and 1.0x of R2D_OFFERED_LOAD). Every row's conservation law
// (generated == admitted + shed + timed_out, admitted == completed) is
// checked and a violation fails the bench — the accounting is the point,
// not a best-effort statistic. Rows also carry the PR 9 degradation
// counters (retries, timed_out, degraded_entries, degraded), live when
// the R2D_RETRY_MAX / R2D_DEADLINE_US / R2D_DEGRADE_FACTOR knobs engage.
//
// After the sweep, a CHURN arm (EXPERIMENTS.md E15) reruns the default
// core in spawn-per-request mode — every dispatched request served by a
// fresh short-lived thread against one long-lived
// TwoDBag<Task, EpochReclaimer, PoolAlloc> — and asserts the slot-lease
// invariant: the container's slot high-water mark stays within the
// dispatcher count + O(1) no matter how many thousands of threads churn
// through. R2D_CHURN_ONLY=1 runs just this arm (the ci.sh smoke).
//
// Knobs: R2D_OFFERED_LOAD (base arrivals/s), R2D_ARRIVAL (reproducibility
// seed source for the processes via R2D_ARRIVAL_SEED; the *kinds* are
// always swept here), R2D_SLO_US, R2D_SHED_CAP, R2D_SERVICE_NS,
// R2D_DURATION_MS (schedule horizon), R2D_MAX_THREADS (worker cap),
// R2D_CHURN_ONLY, R2D_BENCH_JSON (emit BENCH_service.json), plus the
// degradation knobs R2D_RETRY_MAX, R2D_BACKOFF_NS, R2D_DEADLINE_US,
// R2D_DEGRADE_FACTOR, R2D_DEGRADE_WINDOW (harness/service/degrade.hpp).
// Single-threaded caveat: on a 1-core host the generator and workers
// time-share, so absolute latencies are inflated; relative container
// ordering is what E14 reads.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/two_d_bag.hpp"
#include "core/two_d_queue.hpp"
#include "core/two_d_stack.hpp"
#include "harness/service/server.hpp"
#include "reclaim/epoch.hpp"
#include "util/crash_trace.hpp"

namespace {

using namespace r2d::bench;
namespace service = r2d::harness::service;

/// One measured sweep point, table + JSON row.
struct ServiceRow {
  std::string structure;
  std::string arrival;
  double offered = 0.0;
  std::string mode = "reuse";  ///< worker mode: "reuse" | "spawn"
  service::ServiceResult result;
  std::string metrics;  ///< obs snapshot delta for this run (JSON object)
};

/// Run one sweep point with the obs counters scoped to it: the process
/// counters are global, so the delta around the run is this row's share.
template <typename Fn>
ServiceRow measured_row(const std::string& structure,
                        const std::string& arrival, double offered,
                        const std::string& mode, Fn&& run) {
  const r2d::obs::Snapshot before = r2d::obs::metrics().snapshot();
  ServiceRow row{structure, arrival, offered, mode, run()};
  row.metrics = metrics_json(r2d::obs::metrics().snapshot() - before);
  return row;
}

template <typename Queue>
service::ServiceResult run_one(const r2d::core::TwoDParams& params,
                               const service::ServiceConfig& config) {
  Queue queue(params);
  return service::run_service(queue, config);
}

service::ServiceResult run_core(const std::string& name,
                                const r2d::core::TwoDParams& params,
                                const service::ServiceConfig& config) {
  if (name == "2D-bag") {
    return run_one<r2d::TwoDBag<service::Task>>(params, config);
  }
  if (name == "2D-stack") {
    return run_one<r2d::TwoDStack<service::Task>>(params, config);
  }
  return run_one<r2d::TwoDQueue<service::Task>>(params, config);
}

/// BENCH_service.json: the service rows carry more than (threads, mops),
/// so this bench writes its own schema with the same provenance header as
/// bench::write_bench_json; ci.sh asserts one row per container core.
void emit_service_json(const std::vector<ServiceRow>& rows) {
  const std::string path = r2d::util::env_str("R2D_BENCH_JSON", "");
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not write " << path << "\n";
    return;
  }
  out << "{\n";
  write_provenance(out, "service_dispatch");
  out << "  \"points\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServiceRow& r = rows[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"structure\": \"" << r.structure
        << "\", \"arrival\": \"" << r.arrival
        << "\", \"offered_per_s\": " << r.offered
        << ", \"completed_per_s\": " << r.result.completed_rate()
        << ", \"p50_us\": " << r.result.p50_us()
        << ", \"p99_us\": " << r.result.p99_us()
        << ", \"p999_us\": " << r.result.p999_us()
        << ", \"shed_rate\": " << r.result.shed_rate()
        << ", \"slo_violation_rate\": " << r.result.slo_violation_rate()
        << ", \"mean_displacement\": " << r.result.mean_displacement()
        << ", \"max_displacement\": " << r.result.displacement_max
        << ", \"saturated\": " << r.result.response.saturated()
        << ", \"mode\": \"" << r.mode
        << "\", \"threads_spawned\": " << r.result.threads_spawned
        << ", \"slot_hwm\": " << r.result.slot_hwm
        << ", \"retries\": " << r.result.retries
        << ", \"timed_out\": " << r.result.timed_out
        << ", \"degraded_entries\": " << r.result.degraded_entries
        << ", \"degraded\": " << (r.result.degraded ? "true" : "false")
        << ", \"conserved\": " << (r.result.conserved() ? "true" : "false")
        << ", \"metrics\": " << (r.metrics.empty() ? "{}" : r.metrics)
        << "}";
  }
  out << "\n  ]\n}\n";
  if (out) {
    std::cout << "wrote " << path << "\n";
  } else {
    std::cerr << "could not write " << path << "\n";
  }
}

}  // namespace

int main() {
  r2d::util::install_crash_tracer();
  const BenchEnv env = BenchEnv::load();
  const unsigned workers = std::max(1u, std::min(4u, env.max_threads));

  // Base service shape from the Workload arrival knobs; the sweep below
  // overrides arrival kind and rate per point.
  r2d::harness::Workload w = env.workload(workers);
  const service::ServiceConfig base = service::ServiceConfig::from_workload(w);

  r2d::core::TwoDParams params;
  params.width = 4 * workers;
  params.depth = 16;
  params.shift = 8;

  std::cout << "=== open-loop service dispatch (workers=" << workers
            << ", schedule=" << base.duration_ms << " ms, cap="
            << base.shed_cap << ", SLO=" << base.slo_us
            << " us, service=" << base.service_ns
            << " ns; latencies from INTENDED arrival) ===\n";

  std::vector<ServiceRow> rows;
  bool all_conserved = true;
  r2d::util::Table table({"structure", "arrival", "mode", "offered/s",
                          "done/s", "shed%", "p50_us", "p99_us", "p999_us",
                          "slo%", "mean_disp", "max_disp"});
  auto record = [&](const ServiceRow& row) {
    const service::ServiceResult& r = row.result;
    if (!r.conserved()) {
      all_conserved = false;
      std::cerr << "CONSERVATION VIOLATION: " << row.structure << "/"
                << row.arrival << "@" << row.offered << ": generated="
                << r.generated << " admitted=" << r.admitted
                << " shed=" << r.shed << " timed_out=" << r.timed_out
                << " completed=" << r.completed << "\n";
    }
    table.add_row({row.structure, row.arrival, row.mode,
                   r2d::util::Table::num(row.offered, 0),
                   r2d::util::Table::num(r.completed_rate(), 0),
                   r2d::util::Table::num(100.0 * r.shed_rate(), 2),
                   r2d::util::Table::num(r.p50_us(), 1),
                   r2d::util::Table::num(r.p99_us(), 1),
                   r2d::util::Table::num(r.p999_us(), 1),
                   r2d::util::Table::num(100.0 * r.slo_violation_rate(), 2),
                   r2d::util::Table::num(r.mean_displacement(), 1),
                   std::to_string(r.displacement_max)});
    rows.push_back(row);
  };

  const bool churn_only = r2d::util::env_u64("R2D_CHURN_ONLY", 0) != 0;
  if (!churn_only) {
    for (const char* structure : {"2D-bag", "2D-stack", "2D-queue"}) {
      for (const service::ArrivalKind kind :
           {service::ArrivalKind::kPoisson, service::ArrivalKind::kOnOff}) {
        // 0.5x/1.0x bracket the nominal load; 4x is deliberate overload,
        // where the admission cap (not the container) must be what gives.
        for (const double load_factor : {0.5, 1.0, 4.0}) {
          service::ServiceConfig config = base;
          config.arrival.kind = kind;
          config.arrival.rate = base.arrival.rate * load_factor;
          record(measured_row(
              structure, service::to_string(kind), config.arrival.rate,
              config.spawn_per_request ? "spawn" : "reuse",
              [&] { return run_core(structure, params, config); }));
        }
      }
    }
  }

  // Churn arm (E15): spawn-per-request dispatch against one long-lived
  // fully-leased container — both the reclaimer's and the pool
  // allocator's slots turn over at request rate. The lease invariant is
  // asserted, not just reported: the slot high-water mark must stay
  // within the concurrent claimant count (dispatchers + generator-free
  // margin), or the run fails.
  bool churn_ok = true;
  {
    service::ServiceConfig config = base;
    config.arrival.kind = service::ArrivalKind::kPoisson;
    config.spawn_per_request = true;
    r2d::TwoDBag<service::Task, r2d::reclaim::EpochReclaimer,
                 r2d::reclaim::PoolAlloc>
        queue(params);
    ServiceRow row =
        measured_row("2D-bag", "poisson", config.arrival.rate, "spawn",
                     [&] { return service::run_service(queue, config); });
    record(row);
    const service::ServiceResult& r = row.result;
    std::cout << "churn arm: " << r.threads_spawned
              << " ephemeral worker threads over one container, slot HWM "
              << r.slot_hwm << " (dispatchers=" << config.workers << ")\n";
    if (r.slot_hwm > config.workers + 4) {
      std::cerr << "SLOT LEASE VIOLATION: HWM " << r.slot_hwm << " > "
                << config.workers << " dispatchers + 4\n";
      churn_ok = false;
    }
  }

  emit(table, env, "service_dispatch");
  emit_service_json(rows);

  if (!all_conserved) {
    std::cerr << "service_dispatch: conservation violated (see above)\n";
    return 1;
  }
  if (!churn_ok) {
    std::cerr << "service_dispatch: slot lease invariant violated\n";
    return 1;
  }
  return 0;
}
