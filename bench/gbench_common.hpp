// Shared google-benchmark glue for the benches that link it (micro_ops,
// ablation_allocation) — kept out of bench/common.hpp, which is included
// by benches that must build without google-benchmark.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common.hpp"

namespace r2d::bench {

/// Console output as usual, plus a capture of every per-iteration run's
/// items/s for the BENCH_*.json trajectory (see emit_json / scripts/ci.sh).
/// Each report batch also carries the obs counter delta accumulated since
/// the previous batch, so every JSON point lands with the engine metrics
/// of (approximately) its own run — the process-wide counters cannot be
/// split finer than a reporting batch.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    const obs::Snapshot now = obs::metrics().snapshot();
    const std::string metrics = metrics_json(now - last_);
    last_ = now;
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto it = run.counters.find("items_per_second");
      if (it == run.counters.end()) continue;
      points_.push_back({run.benchmark_name(),
                         static_cast<unsigned>(run.threads),
                         it->second / 1e6, metrics});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<JsonPoint>& points() const { return points_; }

 private:
  std::vector<JsonPoint> points_;
  obs::Snapshot last_;
};

/// The shared main(): run the registered benchmarks through the capturing
/// reporter and honor R2D_BENCH_JSON.
inline int benchmark_main_with_json(const std::string& bench, int argc,
                                    char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  emit_json(bench, reporter.points());
  return 0;
}

}  // namespace r2d::bench
