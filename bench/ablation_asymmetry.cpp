// E8: workload-asymmetry ablation.
//
// The paper's related-work section: "Elimination back-off mostly benefits
// symmetric workloads in which the numbers of push and pop operations are
// roughly equal; its performance deteriorates when workloads are
// asymmetric." This bench sweeps the push ratio and compares elimination
// against treiber and the 2D-stack, whose disjoint-access design should be
// insensitive to the mix.
#include <algorithm>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/crash_trace.hpp"

int main() {
  r2d::util::install_crash_tracer();
  using namespace r2d::bench;
  const BenchEnv env = BenchEnv::load();
  const unsigned threads = std::min(8u, env.max_threads);
  const std::vector<double> ratios = {0.5, 0.6, 0.7, 0.8, 0.9};
  const std::vector<std::string> algos = {"treiber", "elimination",
                                          "2D-stack"};

  r2d::util::Table table({"push_ratio", "algorithm", "mops", "stddev"});
  std::cout << "=== E8: workload asymmetry, P = " << threads << " ===\n";
  for (const double ratio : ratios) {
    for (const auto& algo : algos) {
      AlgoConfig cfg = fig2_config(algo, threads);
      auto w = env.workload(threads);
      w.push_ratio = ratio;
      const Point p = run_algorithm(cfg, w, env.repeats);
      table.add_row({r2d::util::Table::num(ratio, 1), algo,
                     r2d::util::Table::num(p.mops),
                     r2d::util::Table::num(p.mops_stddev)});
    }
  }
  emit(table, env, "ablation_asymmetry");
  return 0;
}
