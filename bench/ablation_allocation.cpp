// E10: allocation-substrate ablation (google-benchmark).
//
// The authors (like most lock-free stack evaluations) recycle nodes instead
// of calling malloc per operation. Our containers allocate with new/delete
// through the SMR layer; this bench measures what that choice costs by
// comparing raw heap new/delete against the lock-free Pool, single-threaded
// and contended, on stack-node-sized objects.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "reclaim/pool.hpp"

namespace {

struct NodeSized {
  void* next;
  std::uint64_t value;
};

void BM_HeapNewDelete(benchmark::State& state) {
  for (auto _ : state) {
    auto* n = new NodeSized{nullptr, 42};
    benchmark::DoNotOptimize(n);
    delete n;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PoolAcquireRelease(benchmark::State& state) {
  static r2d::reclaim::Pool<NodeSized>* pool = nullptr;
  if (state.thread_index() == 0) pool = new r2d::reclaim::Pool<NodeSized>();
  for (auto _ : state) {
    auto* n = pool->acquire(nullptr, std::uint64_t{42});
    benchmark::DoNotOptimize(n);
    pool->release(n);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    // Leak-free teardown once all threads are done with the iteration loop
    // is handled by benchmark's thread join; delete on last exit.
  }
}

/// Burst pattern closer to a stack under pop-heavy phases: allocate a batch,
/// then free it (defeats the single-hot-block fast path of both schemes).
template <int kBatch>
void BM_HeapBurst(benchmark::State& state) {
  NodeSized* batch[kBatch];
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) batch[i] = new NodeSized{nullptr, 1};
    benchmark::DoNotOptimize(batch[0]);
    for (int i = 0; i < kBatch; ++i) delete batch[i];
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

template <int kBatch>
void BM_PoolBurst(benchmark::State& state) {
  static r2d::reclaim::Pool<NodeSized>* pool = nullptr;
  if (state.thread_index() == 0) pool = new r2d::reclaim::Pool<NodeSized>();
  NodeSized* batch[kBatch];
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      batch[i] = pool->acquire(nullptr, std::uint64_t{1});
    }
    benchmark::DoNotOptimize(batch[0]);
    for (int i = 0; i < kBatch; ++i) pool->release(batch[i]);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

}  // namespace

BENCHMARK(BM_HeapNewDelete);
BENCHMARK(BM_HeapNewDelete)->Threads(8)->UseRealTime();
BENCHMARK(BM_PoolAcquireRelease);
BENCHMARK(BM_PoolAcquireRelease)->Threads(8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_HeapBurst, 64);
BENCHMARK_TEMPLATE(BM_HeapBurst, 64)->Threads(8)->UseRealTime();
BENCHMARK_TEMPLATE(BM_PoolBurst, 64);
BENCHMARK_TEMPLATE(BM_PoolBurst, 64)->Threads(8)->UseRealTime();

BENCHMARK_MAIN();
