// E10: allocation-substrate ablation (google-benchmark).
//
// The authors (like most lock-free stack/queue evaluations) recycle nodes
// instead of calling malloc per operation. This bench prices the library's
// allocation policies (reclaim/alloc.hpp) on stack-node-sized objects as a
// 4-way matrix: heap new/delete vs the bare sharded Pool vs the
// pool+magazine PoolAlloc containers actually mount, each solo and
// contended (8 threads). The burst variants defeat the single-hot-block
// fast path of every scheme — the pattern a pop-heavy stack phase
// produces.
//
// When R2D_BENCH_JSON is set the per-run items/s rates are also written as
// machine-readable JSON — the BENCH_alloc.json trajectory point
// scripts/ci.sh records from the Release perf stage.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "gbench_common.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/pool.hpp"

namespace {

struct NodeSized {
  void* next;
  std::uint64_t value;
};

/// Policy adapters so one template body covers the whole matrix.
struct HeapPolicy {
  using State = r2d::reclaim::HeapAlloc<NodeSized>;
};
struct PoolPolicy {
  using State = r2d::reclaim::Pool<NodeSized>;
};
struct MagazinePolicy {
  using State = r2d::reclaim::PoolAlloc<NodeSized>;
};

/// One allocator instance per benchmark run, installed by the Setup hook
/// (single-threaded, before worker spawn) and torn down after the join.
/// A process-lifetime shared instance would not survive long runs:
/// google-benchmark spawns a fresh thread set for every iteration-search
/// trial and repetition, and PoolAlloc binds each distinct thread to one
/// of 256 per-instance slots for the instance's lifetime.
template <typename Policy>
typename Policy::State*& run_state() {
  static typename Policy::State* state = nullptr;
  return state;
}

template <typename Policy>
void setup_state(const benchmark::State&) {
  run_state<Policy>() = new typename Policy::State();
}

template <typename Policy>
void teardown_state(const benchmark::State&) {
  delete run_state<Policy>();
  run_state<Policy>() = nullptr;
}

/// Alternating acquire/release: the steady-state per-op cost.
template <typename Policy>
void BM_AcquireRelease(benchmark::State& state) {
  auto& alloc = *run_state<Policy>();
  for (auto _ : state) {
    NodeSized* n = alloc.acquire(nullptr, std::uint64_t{42});
    benchmark::DoNotOptimize(n);
    alloc.release(n);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Burst pattern closer to a stack under pop-heavy phases: allocate a
/// batch, then free it. The batch (64) exceeds the default magazine (32),
/// so the magazine policy's depot splices are on the measured path.
template <typename Policy, int kBatch>
void BM_Burst(benchmark::State& state) {
  auto& alloc = *run_state<Policy>();
  NodeSized* batch[kBatch];
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      batch[i] = alloc.acquire(nullptr, std::uint64_t{1});
    }
    benchmark::DoNotOptimize(batch[0]);
    for (int i = 0; i < kBatch; ++i) alloc.release(batch[i]);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}

}  // namespace

#define R2D_ALLOC_MATRIX(Policy, name)                                \
  BENCHMARK_TEMPLATE(BM_AcquireRelease, Policy)                       \
      ->Name("solo/" name)                                            \
      ->Setup(setup_state<Policy>)                                    \
      ->Teardown(teardown_state<Policy>);                             \
  BENCHMARK_TEMPLATE(BM_AcquireRelease, Policy)                       \
      ->Name("contended/" name)                                       \
      ->Setup(setup_state<Policy>)                                    \
      ->Teardown(teardown_state<Policy>)                              \
      ->Threads(8)                                                    \
      ->UseRealTime();                                                \
  BENCHMARK_TEMPLATE(BM_Burst, Policy, 64)                            \
      ->Name("solo-burst/" name)                                      \
      ->Setup(setup_state<Policy>)                                    \
      ->Teardown(teardown_state<Policy>);                             \
  BENCHMARK_TEMPLATE(BM_Burst, Policy, 64)                            \
      ->Name("contended-burst/" name)                                 \
      ->Setup(setup_state<Policy>)                                    \
      ->Teardown(teardown_state<Policy>)                              \
      ->Threads(8)                                                    \
      ->UseRealTime();

R2D_ALLOC_MATRIX(HeapPolicy, "heap")
R2D_ALLOC_MATRIX(PoolPolicy, "pool")
R2D_ALLOC_MATRIX(MagazinePolicy, "pool+magazine")

int main(int argc, char** argv) {
  return r2d::bench::benchmark_main_with_json("ablation_allocation", argc,
                                              argv);
}
