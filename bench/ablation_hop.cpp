// E5: search-strategy ablation — the paper's hybrid (random hops, then a
// round-robin sweep) against the pure strategies.
//
// Random-only avoids contention but cannot certify a failed sweep cheaply;
// round-robin-only is bounded but herds threads onto consecutive sub-stacks
// (the paper explicitly randomises the post-CAS-failure hop "to reduce
// possible contention on consecutive sub-stacks"). The hybrid should match
// or beat both.
#include <algorithm>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/crash_trace.hpp"

int main() {
  r2d::util::install_crash_tracer();
  using namespace r2d::bench;
  const BenchEnv env = BenchEnv::load();

  struct Mode {
    const char* label;
    r2d::core::HopMode mode;
  };
  const std::vector<Mode> modes = {
      {"hybrid (paper)", r2d::core::HopMode::kHybrid},
      {"random-only", r2d::core::HopMode::kRandomOnly},
      {"round-robin-only", r2d::core::HopMode::kRoundRobinOnly},
  };

  r2d::util::Table table(
      {"threads", "hop_mode", "mops", "stddev", "mean_err"});
  std::cout << "=== E5: hop-strategy ablation (2D-stack, k per fig2) ===\n";
  for (unsigned threads : {2u, 4u, 8u, 16u}) {
    if (threads > env.max_threads) continue;
    for (const auto& m : modes) {
      AlgoConfig cfg = fig2_config("2D-stack", threads);
      cfg.hop_mode = m.mode;
      const Point p = run_algorithm(cfg, env.workload(threads), env.repeats);
      table.add_row({std::to_string(threads), m.label,
                     r2d::util::Table::num(p.mops),
                     r2d::util::Table::num(p.mops_stddev),
                     r2d::util::Table::num(p.mean_error)});
    }
  }
  emit(table, env, "ablation_hop");
  return 0;
}
