// E9: per-operation latency percentiles for every algorithm.
//
// Throughput plots hide tails; a relaxed design that wins on average can
// still stall individual operations (window shifts, segment maintenance,
// elimination waits). This bench reports p50/p99/p99.9 per algorithm under
// the Figure 2 workload so the tail story accompanies the mean story.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "common.hpp"
#include "util/crash_trace.hpp"
#include "harness/latency.hpp"

namespace {

using namespace r2d::bench;

template <typename Make>
void profile(const char* name, Make&& make, unsigned threads,
             const BenchEnv& env, r2d::util::Table& table) {
  auto stack = make();
  auto w = env.workload(threads);
  const auto r = r2d::harness::run_latency(*stack, w);
  table.add_row({name, std::to_string(threads),
                 r2d::util::Table::num(r.p50(), 0),
                 r2d::util::Table::num(r.p99(), 0),
                 r2d::util::Table::num(r.p999(), 0),
                 r2d::util::Table::num(static_cast<double>(r.histogram.max()),
                                       0),
                 std::to_string(r.saturated())});
}

}  // namespace

int main() {
  r2d::util::install_crash_tracer();
  const BenchEnv env = BenchEnv::load();
  r2d::util::Table table({"algorithm", "threads", "p50_ns", "p99_ns",
                          "p99.9_ns", "max_ns", "saturated"});
  std::cout << "=== E9: per-op latency percentiles ===\n";
  for (unsigned threads : {1u, 8u, 16u}) {
    if (threads > env.max_threads) continue;
    profile(
        "treiber",
        [] { return std::make_unique<r2d::stacks::TreiberStack<Label>>(); },
        threads, env, table);
    profile(
        "elimination",
        [threads] {
          r2d::stacks::EliminationParams p;
          p.collision_slots = std::max<std::size_t>(4, 2 * threads);
          p.spin_budget = 1024;
          return std::make_unique<r2d::stacks::EliminationStack<Label>>(p);
        },
        threads, env, table);
    profile(
        "k-segment",
        [threads] {
          return std::make_unique<r2d::stacks::KSegmentStack<Label>>(
              4 * threads);
        },
        threads, env, table);
    profile(
        "random",
        [threads] {
          return std::make_unique<r2d::stacks::RandomStack<Label>>(4 * threads);
        },
        threads, env, table);
    profile(
        "2D-stack",
        [threads] {
          r2d::core::TwoDParams p;
          p.width = 4 * std::max(1u, threads);
          p.depth = 16;
          p.shift = 8;
          return std::make_unique<r2d::TwoDStack<Label>>(p);
        },
        threads, env, table);
  }
  emit(table, env, "latency_profile");
  return 0;
}
