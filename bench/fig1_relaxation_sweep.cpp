// Figure 1 reproduction: throughput and observed accuracy as the k bound
// for relaxation increases, for the k-bounded algorithms (2D-stack,
// k-segment, k-robin) at P = 8 and P = 16.
//
// Paper shape to check (see EXPERIMENTS.md):
//   * 2D-stack dominates throughput at every relaxation level;
//   * all algorithms gain throughput with k, 2D-stack most steeply;
//   * observed error grows ~linearly with k for k-segment/k-robin, while
//     2D-stack keeps markedly lower error once it grows depth instead of
//     width (the horizontal -> vertical switch above width = 4P).
//
// Workload: 50/50 push-pop, no think time, prefill 32768 (paper §4).
#include <cstdint>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/crash_trace.hpp"

int main() {
  r2d::util::install_crash_tracer();
  using namespace r2d::bench;
  const BenchEnv env = BenchEnv::load();
  const std::vector<std::uint64_t> ks = {1,   4,    16,   64,   256,
                                         1024, 4096, 16384};
  const std::vector<std::string> algos = {"k-robin", "k-segment", "2D-stack"};

  std::vector<unsigned> thread_counts;
  for (unsigned threads : {8u, 16u}) {
    if (threads <= env.max_threads) thread_counts.push_back(threads);
  }
  if (thread_counts.empty()) {
    // Smoke settings (R2D_MAX_THREADS < 8): still produce the sweep at the
    // largest permitted concurrency instead of printing nothing.
    thread_counts.push_back(std::max(1u, env.max_threads));
  }

  for (unsigned threads : thread_counts) {
    r2d::util::Table table(
        {"k", "algorithm", "mops", "stddev", "mean_err", "max_err"});
    std::cout << "=== Figure 1: relaxation sweep, P = " << threads
              << " (duration " << env.duration_ms << " ms x " << env.repeats
              << " repeats) ===\n";
    {
      // Strict reference: the k -> 0 limit every relaxed point is judged
      // against.
      AlgoConfig cfg;
      cfg.name = "treiber";
      cfg.threads = threads;
      const Point p = run_algorithm(cfg, env.workload(threads), env.repeats);
      table.add_row({"0", "treiber (strict)", r2d::util::Table::num(p.mops),
                     r2d::util::Table::num(p.mops_stddev),
                     r2d::util::Table::num(p.mean_error),
                     r2d::util::Table::num(p.max_error, 0)});
    }
    for (const std::uint64_t k : ks) {
      for (const auto& algo : algos) {
        AlgoConfig cfg;
        cfg.name = algo;
        cfg.k = k;
        cfg.threads = threads;
        const Point p = run_algorithm(cfg, env.workload(threads), env.repeats);
        table.add_row({std::to_string(k), algo, r2d::util::Table::num(p.mops),
                       r2d::util::Table::num(p.mops_stddev),
                       r2d::util::Table::num(p.mean_error),
                       r2d::util::Table::num(p.max_error, 0)});
      }
    }
    emit(table, env, "fig1_p" + std::to_string(threads));
  }
  return 0;
}
