// EXT: 2D-Deque scaling — the second instance of the paper's future-work
// claim, now the paired A/B for the column-backend policy (EXPERIMENTS.md
// E12/E13).
//
// Two sections:
//
//   * Thread sweep: for each selected column backend (R2D_DEQUE_COLS =
//     locked | dwcas | both, default both) the strict width-1 baseline
//     plus the 2D shape (w = 4P) on both allocation policies (Heap/Pool)
//     — the locked-vs-dwcas rows at equal shape are the backend A/B the
//     CI perf stage records into BENCH_deque.json, and the heap-vs-pool
//     rows tie the deque into the E10 allocation story.
//
//   * Front-ratio sweep: fixed thread count, R2D_FRONT_RATIO overridden
//     across {0.1, 0.5, 0.9}, measuring the per-end rank error on each
//     backend — the check that the (2*shift + depth)*(width-1) per-end
//     design target survives losing the column lock.
//
// On hosts without a 16-byte CAS the dwcas rows transparently run the
// locked fallback; the header line says so and the row labels carry the
// backend that actually ran.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/two_d_deque.hpp"
#include "harness/runner.hpp"
#include "util/crash_trace.hpp"

namespace {

using namespace r2d::bench;

template <typename T>
using Locked = r2d::core::LockedDequeColumn<T>;
template <typename T>
using Dwcas = r2d::core::DwcasDequeColumn<T>;

r2d::core::TwoDParams deque_params(std::size_t width) {
  r2d::core::TwoDParams p;
  p.width = width;
  p.depth = 16;
  p.shift = 8;
  return p;
}

struct Row {
  double mops = 0.0;
  double stddev = 0.0;
  double mean_err = 0.0;
  double max_err = 0.0;
};

template <typename Deque>
Row measure(const r2d::core::TwoDParams& params,
            const r2d::harness::Workload& w, unsigned repeats) {
  Row row;
  std::vector<double> mops;
  mops.reserve(repeats);
  for (unsigned rep = 0; rep < repeats; ++rep) {
    Deque deque(params);
    mops.push_back(r2d::harness::run_throughput_deque(deque, w).mops);
  }
  const auto summary = r2d::util::summarize(std::move(mops));
  row.mops = summary.mean;
  row.stddev = summary.stddev;
  {
    Deque deque(params);
    const auto q = r2d::harness::run_quality_deque(deque, w);
    row.mean_err = q.mean_error;
    row.max_err = q.max_error;
    if (q.unknown_labels != 0) {
      std::cerr << "WARNING: quality oracle saw " << q.unknown_labels
                << " unknown labels (deque bug?)\n";
    }
  }
  return row;
}

/// Backend x allocator dispatch by name (monomorphised, like
/// run_algorithm_with).
Row measure_config(const std::string& backend, const std::string& alloc,
                   const r2d::core::TwoDParams& params,
                   const r2d::harness::Workload& w, unsigned repeats) {
  using Epoch = r2d::reclaim::EpochReclaimer;
  if (backend == "dwcas") {
    if (alloc == "pool") {
      return measure<
          r2d::TwoDDeque<Label, Epoch, r2d::reclaim::PoolAlloc, Dwcas>>(
          params, w, repeats);
    }
    return measure<
        r2d::TwoDDeque<Label, Epoch, r2d::reclaim::HeapAlloc, Dwcas>>(
        params, w, repeats);
  }
  if (alloc == "pool") {
    return measure<
        r2d::TwoDDeque<Label, Epoch, r2d::reclaim::PoolAlloc, Locked>>(
        params, w, repeats);
  }
  return measure<
      r2d::TwoDDeque<Label, Epoch, r2d::reclaim::HeapAlloc, Locked>>(
      params, w, repeats);
}

std::vector<std::string> selected_backends() {
  const std::string sel = r2d::util::env_str("R2D_DEQUE_COLS", "both");
  if (sel == "locked") return {"locked"};
  if (sel == "dwcas") return {"dwcas"};
  return {"locked", "dwcas"};
}

/// Row label component naming the backend that actually runs: on hosts
/// without a 16-byte CAS the dwcas rows execute the locked fallback, and
/// the label must say so (the JSON trajectory is compared across hosts).
std::string backend_label(const std::string& requested) {
  const std::string actual = requested == "dwcas"
                                 ? Dwcas<Label>::kBackendName
                                 : Locked<Label>::kBackendName;
  return requested == actual ? requested : requested + "->" + actual;
}

}  // namespace

int main() {
  r2d::util::install_crash_tracer();
  const BenchEnv env = BenchEnv::load();
  const auto backends = selected_backends();
  std::vector<JsonPoint> json;

  std::cout << "=== EXT: 2D-Deque scaling — column backend A/B (hardware "
               "16-byte CAS: "
            << (r2d::core::kHasDwcas ? "yes" : "no, dwcas rows run the "
                                               "locked fallback")
            << ") ===\n";

  r2d::util::Table table({"threads", "config", "mops", "stddev", "mean_err",
                          "max_err"});
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    if (threads > env.max_threads) continue;
    const auto w = env.workload(threads);
    struct Config {
      std::string alloc;
      std::size_t width;
    };
    for (const std::string& backend : backends) {
      for (const Config cfg : {Config{"heap", 1},
                               Config{"heap", 4 * threads},
                               Config{"pool", 4 * threads}}) {
        const auto params = deque_params(cfg.width);
        const Row row =
            measure_config(backend, cfg.alloc, params, w, env.repeats);
        const std::string name =
            (cfg.width == 1 ? "deque (w=1)[" : "2D-deque (w=4P)[") +
            backend_label(backend) + "," + cfg.alloc + "]";
        table.add_row({std::to_string(threads), name,
                       r2d::util::Table::num(row.mops),
                       r2d::util::Table::num(row.stddev),
                       r2d::util::Table::num(row.mean_err),
                       r2d::util::Table::num(row.max_err, 0)});
        json.push_back(JsonPoint{name, threads, row.mops});
      }
    }
  }
  emit(table, env, "ext_deque_scaling");

  // Per-end error bound vs. front/back mix, per backend (heap alloc): the
  // flow windows should hold the error near the per-end design target
  // regardless of which end the load favors — with or without the lock.
  const unsigned fr_threads = std::min(4u, env.max_threads);
  if (fr_threads == 0) {
    // R2D_MAX_THREADS=0 contract: empty tables, no crash.
    emit_json("ext_deque_scaling", json);
    return 0;
  }
  const auto fr_params = deque_params(4 * fr_threads);
  std::cout << "=== front-ratio sweep (threads=" << fr_threads
            << ", w=4P, per-end design target k="
            << (2 * fr_params.shift + fr_params.depth) *
                   (fr_params.width - 1)
            << ") ===\n";
  r2d::util::Table fr_table(
      {"front_ratio", "config", "mops", "mean_err", "max_err"});
  for (const double ratio : {0.1, 0.5, 0.9}) {
    auto w = env.workload(fr_threads);
    w.front_ratio = ratio;
    for (const std::string& backend : backends) {
      const Row row = measure_config(backend, "heap", fr_params, w, 1);
      const std::string name = "fr[" + backend_label(backend) + "]";
      fr_table.add_row({r2d::util::Table::num(ratio, 1), name,
                        r2d::util::Table::num(row.mops),
                        r2d::util::Table::num(row.mean_err),
                        r2d::util::Table::num(row.max_err, 0)});
      json.push_back(JsonPoint{"fr=" + r2d::util::Table::num(ratio, 1) +
                                   "[" + backend_label(backend) + "]",
                               fr_threads, row.mops});
    }
  }
  emit(fr_table, env, "ext_deque_frontratio");
  emit_json("ext_deque_scaling", json);
  return 0;
}
