// EXT: 2D-Deque scaling — the second instance of the paper's future-work
// claim, and the first container born on the shared window-sweep engine.
//
// Measures the 2D-Deque against its own width-1 configuration — which
// degenerates to a single strict sub-deque behind the same window
// machinery — over the thread sweep, plus the measured deque rank error
// (each pop's distance from the end it used, quality::Order::kDeque). The
// stack's Figure-2 shape (strict collapses, windowed relaxation scales,
// error stays bounded) should transfer to both ends.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/two_d_deque.hpp"
#include "harness/runner.hpp"
#include "util/crash_trace.hpp"

namespace {

using namespace r2d::bench;

r2d::core::TwoDParams deque_params(std::size_t width) {
  r2d::core::TwoDParams p;
  p.width = width;
  p.depth = 16;
  p.shift = 8;
  return p;
}

}  // namespace

int main() {
  r2d::util::install_crash_tracer();
  const BenchEnv env = BenchEnv::load();
  r2d::util::Table table({"threads", "config", "mops", "stddev", "mean_err",
                          "max_err"});
  std::vector<JsonPoint> json;
  std::cout << "=== EXT: 2D-Deque scaling (width 1 == strict sub-deque) ===\n";
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    if (threads > env.max_threads) continue;
    const auto w = env.workload(threads);
    struct Config {
      const char* name;
      std::size_t width;
    };
    for (const Config cfg : {Config{"deque (w=1)", 1},
                             Config{"2D-deque (w=4P)", 4 * threads}}) {
      const auto params = deque_params(cfg.width);
      std::vector<double> mops;
      for (unsigned rep = 0; rep < env.repeats; ++rep) {
        r2d::TwoDDeque<Label> deque(params);
        mops.push_back(r2d::harness::run_throughput_deque(deque, w).mops);
      }
      const auto summary = r2d::util::summarize(std::move(mops));
      r2d::harness::QualityResult quality;
      {
        r2d::TwoDDeque<Label> deque(params);
        quality = r2d::harness::run_quality_deque(deque, w);
        if (quality.unknown_labels != 0) {
          std::cerr << "WARNING: quality oracle saw " << quality.unknown_labels
                    << " unknown labels (deque bug?)\n";
        }
      }
      table.add_row({std::to_string(threads), cfg.name,
                     r2d::util::Table::num(summary.mean),
                     r2d::util::Table::num(summary.stddev),
                     r2d::util::Table::num(quality.mean_error),
                     r2d::util::Table::num(quality.max_error, 0)});
      json.push_back(JsonPoint{cfg.name, threads, summary.mean});
    }
  }
  emit(table, env, "ext_deque_scaling");
  emit_json("ext_deque_scaling", json);
  return 0;
}
