// Shared bench infrastructure: the algorithm registry mapping the paper's
// algorithm names to monomorphised throughput/quality runners, plus sweep
// and output helpers.
//
// Dispatch is by template instantiation behind a name -> lambda map, so the
// measured loops contain no virtual calls or type erasure.
#pragma once

#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/params.hpp"
#include "core/two_d_stack.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "obs/metrics.hpp"
#include "stacks/distributed_stack.hpp"
#include "stacks/elimination_stack.hpp"
#include "stacks/ksegment_stack.hpp"
#include "reclaim/alloc.hpp"
#include "reclaim/membarrier.hpp"
#include "stacks/treiber_stack.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace r2d::bench {

using Label = std::uint64_t;

/// One measured point: throughput (averaged over repeats) + quality.
struct Point {
  double mops = 0.0;
  double mops_stddev = 0.0;
  double mean_error = 0.0;
  double max_error = 0.0;
  std::uint64_t empty_pops = 0;
};

/// How an algorithm is shaped for a given (k, threads) configuration.
/// See DESIGN.md §4 for the k-mapping assumptions.
struct AlgoConfig {
  std::string name;          ///< paper name: 2D-stack, k-segment, ...
  std::uint64_t k = 0;       ///< requested relaxation bound (0 = strict)
  unsigned threads = 1;
  core::HopMode hop_mode = core::HopMode::kHybrid;
  std::uint64_t shift_override = 0;  ///< nonzero: force this shift (E6)
  std::size_t width_override = 0;    ///< nonzero: force this width (E4)
  std::uint64_t depth_override = 0;  ///< nonzero: force this depth (E4)
};

inline core::TwoDParams two_d_params_for(const AlgoConfig& cfg) {
  core::TwoDParams p = core::TwoDParams::for_k(cfg.k, cfg.threads);
  if (cfg.width_override != 0) p.width = cfg.width_override;
  if (cfg.depth_override != 0) {
    p.depth = cfg.depth_override;
    p.shift = std::max<std::uint64_t>(1, p.depth / 2);
  }
  if (cfg.shift_override != 0) p.shift = std::min(cfg.shift_override, p.depth);
  p.hop_mode = cfg.hop_mode;
  p.validate();
  return p;
}

/// k-robin width mapping: k ~ (width-1) * 2P (DESIGN.md §4).
inline std::size_t krobin_width_for(std::uint64_t k, unsigned threads) {
  const std::uint64_t per_stack = 2ull * std::max(1u, threads);
  return static_cast<std::size_t>(std::max<std::uint64_t>(1, k / per_stack + 1));
}

/// The paper's high-throughput configuration for Figure 2: every k-bounded
/// algorithm gets the same relaxation budget, chosen so the 2D-stack lands
/// on its empirically optimal shape (width = 4P — the paper's finding — and
/// depth 16 with shift = depth/2): k = (2*8 + 16)*(4P - 1) = 32*(4P - 1).
/// The unbounded designs (random, random-c2) use width = 4P; treiber and
/// elimination are strict.
inline AlgoConfig fig2_config(const std::string& name, unsigned threads) {
  AlgoConfig cfg;
  cfg.name = name;
  cfg.threads = threads;
  cfg.k = 32ull * (4ull * std::max(1u, threads) - 1);
  return cfg;
}

template <typename Stack, typename Make>
Point measure_with(Make&& make_stack, const harness::Workload& w,
                   unsigned repeats) {
  std::vector<double> mops;
  mops.reserve(repeats);
  Point point;
  for (unsigned rep = 0; rep < repeats; ++rep) {
    auto stack = make_stack();
    const auto r = harness::run_throughput(*stack, w);
    mops.push_back(r.mops);
    point.empty_pops += r.empty_pops;
  }
  const auto s = util::summarize(std::move(mops));
  point.mops = s.mean;
  point.mops_stddev = s.stddev;
  {
    auto stack = make_stack();
    const auto q = harness::run_quality(*stack, w);
    point.mean_error = q.mean_error;
    point.max_error = q.max_error;
    if (q.unknown_labels != 0) {
      std::cerr << "WARNING: quality oracle saw " << q.unknown_labels
                << " unknown labels (stack bug?)\n";
    }
  }
  return point;
}

/// R2D_ALLOC=pool swaps every run_algorithm-built container onto the
/// pool+magazine allocation policy (reclaim::PoolAlloc); the default heap
/// policy is the other arm of the E10 / micro A/B comparison.
inline bool use_pool_alloc() {
  static const bool pool = util::env_str("R2D_ALLOC", "heap") == "pool";
  return pool;
}

/// run_algorithm monomorphised over the allocation policy.
template <template <typename> class Alloc>
Point run_algorithm_with(const AlgoConfig& cfg, const harness::Workload& w,
                         unsigned repeats) {
  using Epoch = reclaim::EpochReclaimer;
  const unsigned threads = std::max(1u, cfg.threads);
  if (cfg.name == "treiber") {
    using Stack = stacks::TreiberStack<Label, Epoch, Alloc>;
    return measure_with<Stack>([] { return std::make_unique<Stack>(); }, w,
                               repeats);
  }
  if (cfg.name == "elimination") {
    using Stack = stacks::EliminationStack<Label, Epoch, Alloc>;
    return measure_with<Stack>(
        [threads] {
          // Empirically tuned on this host (see EXPERIMENTS.md E3 notes):
          // a wide collision array and patient waiting maximise collisions.
          stacks::EliminationParams p;
          p.collision_slots = std::max<std::size_t>(4, 2 * threads);
          p.spin_budget = 1024;
          p.cas_attempts = 1;
          return std::make_unique<Stack>(p);
        },
        w, repeats);
  }
  if (cfg.name == "k-segment") {
    using Stack = stacks::KSegmentStack<Label, Epoch, Alloc>;
    const std::size_t k = std::max<std::uint64_t>(1, cfg.k);
    return measure_with<Stack>([k] { return std::make_unique<Stack>(k); }, w,
                               repeats);
  }
  if (cfg.name == "random") {
    using Stack = stacks::RandomStack<Label, Epoch, Alloc>;
    const std::size_t width = std::max<std::size_t>(1, 4 * threads);
    return measure_with<Stack>(
        [width] { return std::make_unique<Stack>(width); }, w, repeats);
  }
  if (cfg.name == "random-c2") {
    using Stack = stacks::RandomC2Stack<Label, Epoch, Alloc>;
    const std::size_t width = std::max<std::size_t>(1, 4 * threads);
    return measure_with<Stack>(
        [width] { return std::make_unique<Stack>(width); }, w, repeats);
  }
  if (cfg.name == "k-robin") {
    using Stack = stacks::KRobinStack<Label, Epoch, Alloc>;
    const std::size_t width = krobin_width_for(cfg.k, threads);
    return measure_with<Stack>(
        [width] { return std::make_unique<Stack>(width); }, w, repeats);
  }
  if (cfg.name == "2D-stack") {
    using Stack = TwoDStack<Label, Epoch, Alloc>;
    const auto params = two_d_params_for(cfg);
    return measure_with<Stack>(
        [params] { return std::make_unique<Stack>(params); }, w, repeats);
  }
  std::cerr << "unknown algorithm: " << cfg.name << "\n";
  return {};
}

/// Run the named algorithm under the given workload. Supported names:
/// treiber, elimination, k-segment, random, random-c2, k-robin, 2D-stack.
/// The allocation substrate follows R2D_ALLOC (heap | pool).
inline Point run_algorithm(const AlgoConfig& cfg, const harness::Workload& w,
                           unsigned repeats) {
  if (use_pool_alloc()) {
    return run_algorithm_with<reclaim::PoolAlloc>(cfg, w, repeats);
  }
  return run_algorithm_with<reclaim::HeapAlloc>(cfg, w, repeats);
}

/// Common environment knobs for all benches.
struct BenchEnv {
  std::uint64_t duration_ms;
  unsigned repeats;
  unsigned max_threads;
  std::uint64_t prefill;
  std::string csv_prefix;

  static BenchEnv load() {
    BenchEnv e;
    e.duration_ms = util::env_u64("R2D_DURATION_MS", 300);
    e.repeats = static_cast<unsigned>(util::env_u64("R2D_REPEATS", 3));
    e.max_threads = static_cast<unsigned>(util::env_u64("R2D_MAX_THREADS", 16));
    e.prefill = util::env_u64("R2D_PREFILL", 32768);
    e.csv_prefix = util::env_str("R2D_CSV", "");
    return e;
  }

  harness::Workload workload(unsigned threads) const {
    harness::Workload w;
    w.threads = threads;
    w.duration_ms = duration_ms;
    w.prefill = prefill;
    return w;
  }
};

/// One structure's measured rate, for the machine-readable perf
/// trajectory (BENCH_*.json).
struct JsonPoint {
  std::string structure;
  unsigned threads = 1;
  double mops = 0.0;
  /// Pre-rendered obs snapshot-delta JSON object for this point
  /// (obs::append_json); empty when no metrics were captured.
  std::string metrics;
};

/// Compile-time build shape, for run-to-run comparability: optimization
/// level is what CMake chose, but the A/B-relevant axes (asserts,
/// sanitizer, obs) are all visible as macros.
inline std::string build_flags() {
  std::string flags;
#ifdef NDEBUG
  flags += "release";
#else
  flags += "assert";
#endif
#if R2D_OBS
  flags += ",obs";
#else
  flags += ",noobs";
#endif
#if defined(__SANITIZE_ADDRESS__)
  flags += ",asan";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  flags += ",asan";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  flags += ",tsan";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  flags += ",tsan";
#endif
#endif
  return flags;
}

inline std::string host_name() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

/// The shared provenance header every BENCH_*.json carries — one writer so
/// the throughput benches and the service bench cannot drift apart. Emits
/// the leading fields of a JSON object (caller opened the brace):
/// bench, git sha (R2D_GIT_SHA, set by scripts/ci.sh), hostname, host
/// core count, compile-time build shape, and the active epoch fence mode.
inline void write_provenance(std::ostream& out, const std::string& bench) {
  out << "  \"bench\": \"" << bench << "\",\n"
      << "  \"git_sha\": \"" << util::env_str("R2D_GIT_SHA", "unknown")
      << "\",\n"
      << "  \"hostname\": \"" << host_name() << "\",\n"
      << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"build_flags\": \"" << build_flags() << "\",\n"
      << "  \"membarrier\": "
      << (reclaim::detail::use_membarrier() ? "true" : "false") << ",\n";
}

/// Render an obs snapshot (usually a delta over one measured run) as the
/// JSON object bench rows embed under "metrics".
inline std::string metrics_json(const obs::Snapshot& s) {
  std::ostringstream os;
  obs::append_json(os, s);
  return os.str();
}

/// Write the bench points as JSON to `path`, with enough provenance to
/// compare runs across commits and hosts (write_provenance). Schema:
///   {"bench": ..., "git_sha": ..., "hostname": ..., "host_cores": N,
///    "build_flags": ..., "membarrier": bool,
///    "points": [{"structure": ..., "threads": N, "mops": X,
///                "metrics": {...}}, ...]}
inline bool write_bench_json(const std::string& path, const std::string& bench,
                             const std::vector<JsonPoint>& points) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  write_provenance(out, bench);
  out << "  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    {\"structure\": \""
        << points[i].structure << "\", \"threads\": " << points[i].threads
        << ", \"mops\": " << points[i].mops;
    if (!points[i].metrics.empty()) {
      out << ", \"metrics\": " << points[i].metrics;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return static_cast<bool>(out);
}

/// Honor the R2D_BENCH_JSON knob: when set, write the points there.
inline void emit_json(const std::string& bench,
                      const std::vector<JsonPoint>& points) {
  const std::string path = util::env_str("R2D_BENCH_JSON", "");
  if (path.empty()) return;
  if (write_bench_json(path, bench, points)) {
    std::cout << "wrote " << path << "\n";
  } else {
    std::cerr << "could not write " << path << "\n";
  }
}

inline void emit(const util::Table& table, const BenchEnv& env,
                 const std::string& tag) {
  table.print();
  if (!env.csv_prefix.empty()) {
    const std::string path = env.csv_prefix + tag + ".csv";
    if (table.write_csv(path)) {
      std::cout << "wrote " << path << "\n";
    } else {
      std::cerr << "could not write " << path << "\n";
    }
  }
  std::cout << "\n";
}

}  // namespace r2d::bench
