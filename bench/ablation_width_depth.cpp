// E4: width vs depth at (approximately) fixed k.
//
// Theorem 1 allows the same relaxation budget k to be spent horizontally
// (many sub-stacks, depth 1) or vertically (few sub-stacks, deep windows).
// The paper's Figure 1 discussion claims horizontal buys throughput until
// width ~ 4P and vertical is the cheaper way to grow k beyond that, with a
// smaller quality penalty. This bench walks the (width, depth) iso-k curve
// and prints both metrics so that claim is directly inspectable.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/crash_trace.hpp"

int main() {
  r2d::util::install_crash_tracer();
  using namespace r2d::bench;
  const BenchEnv env = BenchEnv::load();
  const unsigned threads = std::min(8u, env.max_threads);
  const std::uint64_t k_target = 2048;

  // Iso-k shapes: (2*shift + depth)*(width-1) ~ k with shift = depth/2.
  struct ShapeChoice {
    std::size_t width;
    std::uint64_t depth;
  };
  std::vector<ShapeChoice> shapes;
  for (std::size_t width : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const std::uint64_t span = width - 1;
    const std::uint64_t depth =
        std::max<std::uint64_t>(1, k_target / (2 * span));
    shapes.push_back({width, depth});
  }

  r2d::util::Table table({"width", "depth", "shift", "k_bound", "mops",
                          "mean_err", "max_err"});
  std::cout << "=== E4: width vs depth at iso-k ~ " << k_target
            << ", P = " << threads << " ===\n";
  for (const auto& shape : shapes) {
    AlgoConfig cfg;
    cfg.name = "2D-stack";
    cfg.k = k_target;
    cfg.threads = threads;
    cfg.width_override = shape.width;
    cfg.depth_override = shape.depth;
    const auto params = two_d_params_for(cfg);
    const Point p = run_algorithm(cfg, env.workload(threads), env.repeats);
    table.add_row({std::to_string(params.width), std::to_string(params.depth),
                   std::to_string(params.shift),
                   std::to_string(params.k_bound()),
                   r2d::util::Table::num(p.mops),
                   r2d::util::Table::num(p.mean_error),
                   r2d::util::Table::num(p.max_error, 0)});
  }
  emit(table, env, "ablation_width_depth");
  return 0;
}
