// E6: window shift-size ablation.
//
// shift controls how far the window jumps when a sweep fails: small shifts
// move the band often (more global CAS traffic, tighter k by Theorem 1);
// shift = depth moves it rarely but spends the whole band each time. The
// paper requires shift <= depth and Theorem 1 charges 2*shift to the bound;
// this bench quantifies the throughput/quality trade along that axis.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/crash_trace.hpp"

int main() {
  r2d::util::install_crash_tracer();
  using namespace r2d::bench;
  const BenchEnv env = BenchEnv::load();
  const unsigned threads = std::min(8u, env.max_threads);
  const std::uint64_t depth = 32;
  const std::size_t width = 4 * threads;

  r2d::util::Table table(
      {"shift", "k_bound", "mops", "stddev", "mean_err", "max_err"});
  std::cout << "=== E6: shift ablation (width " << width << ", depth "
            << depth << ", P = " << threads << ") ===\n";
  for (std::uint64_t shift : {1ull, 4ull, 8ull, 16ull, 32ull}) {
    AlgoConfig cfg;
    cfg.name = "2D-stack";
    cfg.threads = threads;
    cfg.width_override = width;
    cfg.depth_override = depth;
    cfg.shift_override = shift;
    const auto params = two_d_params_for(cfg);
    const Point p = run_algorithm(cfg, env.workload(threads), env.repeats);
    table.add_row({std::to_string(shift), std::to_string(params.k_bound()),
                   r2d::util::Table::num(p.mops),
                   r2d::util::Table::num(p.mops_stddev),
                   r2d::util::Table::num(p.mean_error),
                   r2d::util::Table::num(p.max_error, 0)});
  }
  emit(table, env, "ablation_shift");
  return 0;
}
