// Figure 2 reproduction: throughput and observed accuracy as concurrency
// increases (P = 1..16), all seven algorithms in their high-throughput
// configurations. Threads 1-8 model the paper's intra-socket regime, 9-16
// inter-socket (see DESIGN.md substitutions).
//
// Paper shape to check (see EXPERIMENTS.md):
//   * treiber and elimination flatten or collapse as P grows;
//   * the distributed designs scale; 2D-stack scales best and keeps
//     climbing across the whole range;
//   * random / random-c2 / k-segment keep roughly constant error (fixed
//     sub-structure count); k-robin and 2D-stack trade some error for
//     throughput as P (and hence their width) grows.
#include <cstdint>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/crash_trace.hpp"

int main() {
  r2d::util::install_crash_tracer();
  using namespace r2d::bench;
  const BenchEnv env = BenchEnv::load();
  const std::vector<std::string> algos = {"treiber",   "elimination",
                                          "k-segment", "random",
                                          "random-c2", "k-robin",
                                          "2D-stack"};
  std::vector<unsigned> thread_counts;
  for (unsigned t : {1u, 2u, 4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
    if (t <= env.max_threads) thread_counts.push_back(t);
  }

  r2d::util::Table table({"threads", "algorithm", "mops", "stddev",
                          "mean_err", "max_err"});
  std::vector<JsonPoint> json_points;
  std::cout << "=== Figure 2: thread sweep, 1.." << env.max_threads
            << " threads (duration " << env.duration_ms << " ms x "
            << env.repeats << " repeats) ===\n"
            << "(threads 1-8 ~ intra-socket, 9-16 ~ inter-socket; see "
               "DESIGN.md)\n";
  for (const unsigned threads : thread_counts) {
    for (const auto& algo : algos) {
      const AlgoConfig cfg = fig2_config(algo, threads);
      const Point p = run_algorithm(cfg, env.workload(threads), env.repeats);
      table.add_row({std::to_string(threads), algo,
                     r2d::util::Table::num(p.mops),
                     r2d::util::Table::num(p.mops_stddev),
                     r2d::util::Table::num(p.mean_error),
                     r2d::util::Table::num(p.max_error, 0)});
      json_points.push_back({algo, threads, p.mops});
    }
  }
  emit(table, env, "fig2");
  emit_json("fig2_thread_sweep", json_points);
  return 0;
}
