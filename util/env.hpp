// Environment-variable configuration knobs (the R2D_* namespace).
//
// Every bench and the CI script configure themselves through these; see the
// README's "Environment knobs" section for the full catalogue.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace r2d::util {

/// Read an unsigned integer knob; returns `fallback` when unset or
/// unparseable. Accepts decimal and 0x-prefixed hex; rejects negatives
/// (which strtoull would otherwise wrap to huge magnitudes).
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const char* scan = raw;
  while (*scan == ' ' || *scan == '\t') ++scan;
  if (*scan == '-') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 0);
  if (end == raw || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<std::uint64_t>(v);
}

/// Read a string knob; returns `fallback` when unset.
inline std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

/// Read a floating-point knob; returns `fallback` when unset or unparseable.
inline double env_f64(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || (end != nullptr && *end != '\0')) return fallback;
  return v;
}

}  // namespace r2d::util
