// Environment-variable configuration knobs (the R2D_* namespace).
//
// Every bench and the CI script configure themselves through these; see the
// README's "Environment knobs" section for the full catalogue.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace r2d::util {

/// Strict u64 parse shared by every integer knob: decimal or 0x-prefixed
/// hex, optional surrounding whitespace, nothing else. Returns false
/// (leaving `out` untouched) on empty input, negatives (which strtoull
/// would wrap to huge magnitudes), or any trailing garbage — so "0x1e7c"
/// with a dropped digit or a pasted-in stray character is a parse
/// *failure*, never a silently different number.
inline bool parse_u64_strict(const char* s, std::uint64_t& out) {
  if (s == nullptr) return false;
  const char* scan = s;
  while (*scan == ' ' || *scan == '\t') ++scan;
  if (*scan == '\0' || *scan == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(scan, &end, 0);
  if (end == scan) return false;
  while (*end == ' ' || *end == '\t') ++end;
  if (*end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

/// Read an unsigned integer knob; returns `fallback` when unset or
/// unparseable. Accepts decimal and 0x-prefixed hex; rejects negatives
/// and trailing garbage (via parse_u64_strict).
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::uint64_t v = fallback;
  return parse_u64_strict(raw, v) ? v : fallback;
}

/// Read an unsigned integer knob that must never be silently mis-read
/// (seeds, reproducer lines): unset or empty returns `fallback`, but a
/// malformed value aborts the process with a message naming the knob.
/// A typo'd `R2D_SCHED_SEED=0x…` must fail loudly, not replay seed 0.
inline std::uint64_t env_u64_strict(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::uint64_t v = 0;
  if (!parse_u64_strict(raw, v)) {
    std::fprintf(stderr,
                 "r2d: invalid %s='%s' (want decimal or 0x-hex, no trailing "
                 "garbage)\n",
                 name, raw);
    std::abort();
  }
  return v;
}

/// Read a string knob; returns `fallback` when unset.
inline std::string env_str(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

/// Read a floating-point knob; returns `fallback` when unset or unparseable.
inline double env_f64(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || (end != nullptr && *end != '\0')) return fallback;
  return v;
}

}  // namespace r2d::util
