// Column-aligned console tables with optional CSV export.
//
// Every bench prints one Table per figure/ablation and, when R2D_CSV is
// set, mirrors it to `<prefix><tag>.csv` for plotting.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace r2d::util {

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) {
    cells.resize(columns_.size());
    rows_.push_back(std::move(cells));
  }

  /// Format a number with fixed precision (default 3 digits).
  static std::string num(double v, int precision = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      width[c] = columns_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(os, columns_, width);
    std::string rule;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      rule.append(width[c] + (c + 1 < columns_.size() ? 2 : 0), '-');
    }
    os << rule << "\n";
    for (const auto& row : rows_) print_row(os, row, width);
  }

  /// Write the table as CSV. Returns false if the file cannot be opened.
  bool write_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    write_csv_line(out, columns_);
    for (const auto& row : rows_) write_csv_line(out, row);
    return static_cast<bool>(out);
  }

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
  }

  static void write_csv_line(std::ostream& os,
                             const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      // Cells are bench-generated identifiers/numbers; quote only if needed.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (const char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << "\n";
  }

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace r2d::util
