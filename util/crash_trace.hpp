// Fatal-signal backtraces for the benches.
//
// Lock-free bugs tend to surface as SIGSEGV deep inside a measured loop;
// a symbolized backtrace on stderr turns a silent CI failure into a
// actionable report. Uses the async-signal-unsafe backtrace_symbols_fd only
// on the way down, which is the conventional trade-off.
#pragma once

#include <csignal>
#include <cstdio>
#include <cstdlib>

#if defined(__linux__) || defined(__APPLE__)
#include <execinfo.h>
#include <unistd.h>
#define R2D_HAS_BACKTRACE 1
#else
#define R2D_HAS_BACKTRACE 0
#endif

namespace r2d::util {

namespace detail {

/// Installed by obs::Metrics<true>::get() (obs/metrics.hpp): dumps the
/// metrics snapshot + shift-trace rings to `fd` on the way down. A raw
/// function pointer so this header needs nothing from obs/ (which includes
/// the reclaim headers and must stay above us in the include DAG).
inline void (*metrics_crash_hook)(int fd) = nullptr;

inline void crash_handler(int sig) {
  // Restore default disposition first so a fault inside the handler (or the
  // re-raise below) terminates instead of recursing.
  std::signal(sig, SIG_DFL);
#if R2D_HAS_BACKTRACE
  void* frames[64];
  const int n = backtrace(frames, 64);
  const char msg[] = "\n=== r2d crash tracer: fatal signal, backtrace ===\n";
  ssize_t ignored = write(STDERR_FILENO, msg, sizeof(msg) - 1);
  (void)ignored;
  backtrace_symbols_fd(frames, n, STDERR_FILENO);
#endif
  // Post-mortem state, not just a stack: counters + the window-shift trace
  // ring (when metrics are compiled in and enabled).
  if (metrics_crash_hook != nullptr) metrics_crash_hook(STDERR_FILENO);
  std::raise(sig);
}

}  // namespace detail

/// Install handlers for the fatal signals a broken lock-free structure
/// raises. Idempotent; safe to call from every main().
inline void install_crash_tracer() {
  for (const int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGILL, SIGFPE}) {
    std::signal(sig, &detail::crash_handler);
  }
}

}  // namespace r2d::util
