// Worker-thread CPU pinning.
//
// The paper's figures distinguish intra- vs inter-socket regimes, which only
// reproduces with a stable thread->core mapping. Pinning is opt-in via
// Workload::pin_threads (R2D_PIN=1) because oversubscribed CI boxes behave
// worse pinned than free.
#pragma once

#include <algorithm>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#define R2D_HAS_AFFINITY 1
#else
#define R2D_HAS_AFFINITY 0
#endif

namespace r2d::util {

/// Pin the calling thread to logical CPU `worker % hardware_concurrency`.
/// Returns true on success; a no-op (false) on unsupported platforms.
inline bool pin_worker(unsigned worker) {
#if R2D_HAS_AFFINITY
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(worker % ncpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)worker;
  return false;
#endif
}

}  // namespace r2d::util
