// Small summary statistics for repeated measurements.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace r2d::util {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1), 0 for n < 2
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

inline Summary summarize(std::vector<double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0.0;
  for (const double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double sq = 0.0;
    for (const double x : xs) sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(xs.size() - 1));
  }
  return s;
}

}  // namespace r2d::util
